// Ablation — broker load balancing across replicated backends
// (Section III: the API model "can only work in a speculative manner";
// brokers "accurately distribute the workload").
//
// Three backend replicas, one of them 3x slower (a ServiceProfile with
// multiplier 3 and ±10% jitter — an older box). Speculative policies
// (random, round-robin) keep feeding the slow replica at the same rate; the
// broker's stateful policies shift load away: least-outstanding and weighted
// from in-flight counts, ewma and p2c from the observed response times the
// broker's completion path feeds back.
//
// Usage: ablation_balance [requests=600] [concurrency=30]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/ab_client.h"
#include "wl/query_gen.h"
#include "util/rng.h"

using namespace sbroker;

namespace {

double run_once(core::BalancePolicy policy, uint64_t requests, size_t concurrency) {
  sim::Simulation sim;
  db::Database db;
  util::Rng rng(3);
  db::load_benchmark_table(db, rng, 5000, 50);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 1e9};
  broker_cfg.enable_cache = false;
  broker_cfg.balance = policy;
  srv::BrokerHost host(sim, "balanced-broker", broker_cfg);

  for (int i = 0; i < 3; ++i) {
    srv::DbBackendConfig backend_cfg;
    backend_cfg.capacity = 4;
    backend_cfg.link_seed = util::derive_seed(100, static_cast<uint64_t>(i));
    backend_cfg.cost.fixed_seconds = 0.010;
    backend_cfg.cost.per_repeat_seconds = 0.005;
    if (i == 2) {
      // Replica 2 is 3x slower per access, with service-time jitter.
      backend_cfg.profile.multiplier = 3.0;
      backend_cfg.profile.jitter = 0.1;
    }
    double weight = i == 2 ? 1.0 : 3.0;
    host.broker().add_backend(std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg),
                              weight);
  }

  wl::QueryGenerator gen(5000);
  util::Rng query_rng(9);
  wl::AbClient client(sim, wl::AbConfig{concurrency, requests},
                      [&](uint64_t seq, std::function<void()> done) {
                        http::BrokerRequest req;
                        req.request_id = seq + 1;
                        req.qos_level = 2;
                        req.payload = gen.next_point_query(query_rng);
                        host.submit(req, [done](const http::BrokerReply&) { done(); });
                      });
  client.start();
  sim.run();
  return client.response_times().mean() * 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  uint64_t requests = static_cast<uint64_t>(cfg.get_int("requests", 600));
  size_t concurrency = static_cast<size_t>(cfg.get_int("concurrency", 30));

  std::printf("Ablation — balancing policies over 3 replicas (one 3x slower)\n\n");
  util::TablePrinter table({"policy", "mean_ms"});
  for (auto policy : {core::BalancePolicy::kRandom, core::BalancePolicy::kRoundRobin,
                      core::BalancePolicy::kLeastOutstanding,
                      core::BalancePolicy::kWeighted, core::BalancePolicy::kEwma,
                      core::BalancePolicy::kP2c}) {
    table.add_row({core::balance_policy_name(policy),
                   util::TablePrinter::fmt(run_once(policy, requests, concurrency), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: the stateful policies (least-outstanding, weighted,\n"
              "ewma, p2c) beat the speculative (random / round-robin) policies\n"
              "the API model is limited to.\n");
  return 0;
}
