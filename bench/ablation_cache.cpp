// Ablation — result caching at the broker (Section III, "Caching of query
// results"; the movie-schedule scenario).
//
// A movie site stores schedules in a database; at peak time a Zipf-skewed
// stream of clients asks for the same few blockbusters. Without a broker
// cache every request pays a backend access; with it, popular schedules are
// answered locally. We sweep the popularity skew and report mean response
// time, backend calls, and cache hit ratio.
//
// Usage: ablation_cache [requests=600] [concurrency=20] [movies=50]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/ab_client.h"
#include "wl/query_gen.h"

using namespace sbroker;

namespace {

struct RunResult {
  double mean_ms = 0;
  uint64_t backend_calls = 0;
  double hit_ratio = 0;
};

RunResult run_once(bool enable_cache, double theta, uint64_t requests,
                   size_t concurrency, int64_t movies) {
  sim::Simulation sim;
  db::Database db;
  util::Rng rng(11);
  db::load_movie_schedule(db, rng, movies, 12, 5);

  srv::DbBackendConfig backend_cfg;
  backend_cfg.capacity = 5;
  backend_cfg.link = sim::lan_profile();
  auto backend = std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 1e9};
  broker_cfg.enable_cache = enable_cache;
  broker_cfg.cache_capacity = 256;
  broker_cfg.cache_ttl = 60.0;  // schedules change rarely within a run
  srv::BrokerHost host(sim, "movie-broker", broker_cfg);
  host.broker().add_backend(backend);

  wl::QueryGenerator gen(static_cast<uint64_t>(movies),
                         theta > 0 ? wl::QueryGenerator::Popularity::kZipf
                                   : wl::QueryGenerator::Popularity::kUniform,
                         theta);
  util::Rng query_rng(23);
  wl::AbClient client(sim, wl::AbConfig{concurrency, requests},
                      [&](uint64_t seq, std::function<void()> done) {
                        http::BrokerRequest req;
                        req.request_id = seq + 1;
                        req.qos_level = 2;
                        req.payload = gen.next_movie_query(query_rng, movies);
                        host.submit(req, [done](const http::BrokerReply&) { done(); });
                      });
  client.start();
  sim.run();

  RunResult r;
  r.mean_ms = client.response_times().mean() * 1000.0;
  r.backend_calls = backend->calls();
  r.hit_ratio = host.broker().cache().hit_ratio();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  uint64_t requests = static_cast<uint64_t>(cfg.get_int("requests", 600));
  size_t concurrency = static_cast<size_t>(cfg.get_int("concurrency", 20));
  int64_t movies = cfg.get_int("movies", 400);

  std::printf("Ablation — broker result cache (movie-schedule site, Zipf popularity)\n\n");
  util::TablePrinter table({"zipf_theta", "cache", "mean_ms", "backend_calls", "hit_ratio"});
  for (double theta : {0.0, 0.6, 0.9, 1.2}) {
    for (bool cache : {false, true}) {
      RunResult r = run_once(cache, theta, requests, concurrency, movies);
      table.add_row({util::TablePrinter::fmt(theta, 1), cache ? "on" : "off",
                     util::TablePrinter::fmt(r.mean_ms, 2),
                     std::to_string(r.backend_calls),
                     util::TablePrinter::fmt(r.hit_ratio, 3)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: with skew, cache-on cuts backend calls and mean latency; at\n"
              "theta=0 (uniform over %lld keys) the cache barely helps.\n",
              static_cast<long long>(movies));
  return 0;
}
