// Ablation — centralized vs distributed deployment (Section IV).
//
// The centralized model's listener thread shares the Web server's CPU:
// every broker load report steals front-end cycles ("the listener thread
// ... could be overwhelmed with update messages, which may erode away
// computing power from the Web server processes"). We model the front-end
// as a single-CPU station serving cheap requests; in centralized mode the
// listener's report processing competes for the same CPU. Sweep brokers x
// update rate and report achieved front-end throughput, plus the admission
// accuracy benefit centralized mode buys (requests rejected before any
// front-end work when a backend is hot).
//
// Usage: ablation_centralized [duration=30] [request_cost_us=500] [report_cost_us=50]
#include <cstdio>
#include <functional>
#include <memory>

#include "core/centralized.h"
#include "sim/simulation.h"
#include "sim/station.h"
#include "util/config.h"
#include "util/table_printer.h"

using namespace sbroker;

namespace {

struct RunResult {
  uint64_t served = 0;
  uint64_t reports = 0;
  double listener_share = 0;  ///< fraction of CPU consumed by reports
};

RunResult run_centralized(size_t brokers, double update_hz, double duration,
                          double request_cost, double report_cost,
                          double request_rate) {
  sim::Simulation sim;
  // One CPU: requests and report processing serialize through it.
  sim::BoundedStation cpu(sim, 1);
  core::CentralizedController controller(core::QosRules{3, 20.0});
  controller.register_profile("/app", core::ResourceProfile{{"svc0"}});

  RunResult result;

  // Broker load-report streams.
  for (size_t b = 0; b < brokers; ++b) {
    auto report = std::make_shared<std::function<void()>>();
    *report = [&, b, report]() {
      if (sim.now() >= duration) return;
      cpu.submit(report_cost, [&, b]() {
        controller.on_load_report("svc" + std::to_string(b), 1.0, sim.now());
      });
      sim.after(1.0 / update_hz, *report);
    };
    sim.after(0.0, *report);
  }

  // Open-loop request arrivals.
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival]() {
    if (sim.now() >= duration) return;
    if (controller.admit("/app", 2, sim.now()) ==
        core::CentralizedController::Verdict::kAdmit) {
      // Only completions inside the window count: once listener work pushes
      // utilization past 1, the backlog grows and served drops.
      cpu.submit(request_cost, [&, duration]() {
        if (sim.now() <= duration) ++result.served;
      });
    }
    sim.after(1.0 / request_rate, *arrival);
  };
  sim.after(0.0, *arrival);

  sim.run();
  result.reports = controller.reports_processed();
  result.listener_share =
      static_cast<double>(result.reports) * report_cost / duration;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 30.0);
  double request_cost = cfg.get_double("request_cost_us", 500.0) * 1e-6;
  double report_cost = cfg.get_double("report_cost_us", 50.0) * 1e-6;
  double request_rate = 1800.0;  // arrivals/s — 0.9 CPU utilization baseline

  std::printf("Ablation — centralized listener overhead vs broker count / update rate\n");
  std::printf("(1 CPU front end, %.0f req/s offered, request %.0fus, report %.0fus)\n\n",
              request_rate, request_cost * 1e6, report_cost * 1e6);

  util::TablePrinter table(
      {"brokers", "update_hz", "served", "reports", "listener_cpu_share"});
  // Distributed baseline: no reports at all.
  RunResult base = run_centralized(0, 1.0, duration, request_cost, report_cost,
                                   request_rate);
  table.add_row({"0 (distributed)", "-", std::to_string(base.served), "0", "0.000"});
  for (size_t brokers : {4u, 16u, 64u}) {
    for (double hz : {1.0, 10.0, 100.0}) {
      RunResult r = run_centralized(brokers, hz, duration, request_cost, report_cost,
                                    request_rate);
      table.add_row({std::to_string(brokers), util::TablePrinter::fmt(hz, 0),
                     std::to_string(r.served), std::to_string(r.reports),
                     util::TablePrinter::fmt(r.listener_share, 3)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: served throughput falls as brokers x update rate grows —\n"
              "the paper's scalability argument for the distributed model.\n");
  return 0;
}
