// Ablation — persistent, multiplexed connections vs the API model's
// per-access connect/teardown (Section III: "DB brokers maintain persistent
// connection thus saving the cost of connection setup").
//
// The effect scales with connection setup cost, so we sweep it from LAN-ish
// (10 ms) to WAN/TLS-ish (120 ms, the loosely coupled case with
// authentication). API mode pays setup per access; broker mode pays it only
// when the pool opens a new physical connection.
//
// Usage: ablation_connpool [requests=300] [concurrency=20]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/ab_client.h"
#include "wl/query_gen.h"

using namespace sbroker;

namespace {

double run_once(bool pooled, double setup_cost, uint64_t requests, size_t concurrency) {
  sim::Simulation sim;
  db::Database db;
  util::Rng rng(3);
  db::load_benchmark_table(db, rng, 5000, 50);

  srv::DbBackendConfig backend_cfg;
  backend_cfg.capacity = 10;
  backend_cfg.connection_setup = setup_cost;
  backend_cfg.link = sim::wan_profile();  // loosely coupled backend
  backend_cfg.link_seed = 77;
  auto backend = std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 1e9};
  broker_cfg.enable_cache = false;
  broker_cfg.pool = pooled ? core::PoolConfig{4, 64, true}
                           : core::PoolConfig{concurrency, 1, false};
  srv::BrokerHost host(sim, "wan-broker", broker_cfg);
  host.broker().add_backend(backend);

  wl::QueryGenerator gen(5000);
  util::Rng query_rng(5);
  wl::AbClient client(sim, wl::AbConfig{concurrency, requests},
                      [&](uint64_t seq, std::function<void()> done) {
                        http::BrokerRequest req;
                        req.request_id = seq + 1;
                        req.qos_level = 2;
                        req.payload = gen.next_point_query(query_rng);
                        host.submit(req, [done](const http::BrokerReply&) { done(); });
                      });
  client.start();
  sim.run();
  return client.response_times().mean() * 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  uint64_t requests = static_cast<uint64_t>(cfg.get_int("requests", 300));
  size_t concurrency = static_cast<size_t>(cfg.get_int("concurrency", 20));

  std::printf("Ablation — persistent pooled connections vs per-access setup (WAN backend)\n\n");
  util::TablePrinter table({"setup_ms", "api_mean_ms", "pooled_mean_ms", "speedup"});
  for (double setup : {0.010, 0.040, 0.080, 0.120}) {
    double api = run_once(false, setup, requests, concurrency);
    double pooled = run_once(true, setup, requests, concurrency);
    table.add_row({util::TablePrinter::fmt(setup * 1000, 0),
                   util::TablePrinter::fmt(api, 2),
                   util::TablePrinter::fmt(pooled, 2),
                   util::TablePrinter::fmt(api / pooled, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: speedup grows with connection setup cost; the API model pays\n"
              "setup on every access, the broker only on pool growth.\n");
  return 0;
}
