// Ablation — fidelity variation via QoS-aware query rewriting.
//
// "It is observed that by varying response fidelity in different QoS levels,
// service brokers can improve responsiveness and scalability" (Section I).
// Clients issue category queries that return ~400 rows each; under WARM/HOT
// load the broker rewrites low-class queries with a LIMIT cap, cutting the
// backend's per-query work. We sweep the client count and compare mean
// response time and throughput with rewriting off vs on.
//
// Usage: ablation_fidelity [duration=60]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/query_gen.h"
#include "wl/webstone_client.h"

using namespace sbroker;

namespace {

struct RunResult {
  double mean_ms = 0;
  uint64_t completed = 0;
  uint64_t rewrites = 0;
};

RunResult run_once(bool rewrite, size_t clients, double duration) {
  sim::Simulation sim;
  db::Database db;
  util::Rng rng(3);
  db::load_benchmark_table(db, rng, 42000, 100);

  srv::DbBackendConfig backend_cfg;
  backend_cfg.capacity = 5;
  // Returned rows dominate the cost so a LIMIT cap buys real capacity.
  backend_cfg.cost.per_row_returned = 0.0002;
  auto backend = std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 40.0};
  broker_cfg.enable_cache = false;
  broker_cfg.serve_stale_on_drop = false;
  broker_cfg.hotspot.warm_threshold = 8.0;
  broker_cfg.hotspot.hot_threshold = 20.0;
  broker_cfg.rewrite.enabled = rewrite;
  broker_cfg.rewrite.warm_limit = 50;
  broker_cfg.rewrite.hot_limit = 10;
  srv::BrokerHost host(sim, "fidelity-broker", broker_cfg);
  host.broker().add_backend(backend);

  wl::QueryGenerator gen(42000);
  util::Rng query_rng(11);
  uint64_t next_id = 1;

  wl::WebStoneConfig wcfg;
  wcfg.clients = clients;
  wcfg.duration = duration;
  wcfg.think_time = 0.2;
  wcfg.qos_level = 1;  // the class the rules degrade first
  wl::WebStoneClients population(sim, wcfg, [&](int level, std::function<void()> done) {
    http::BrokerRequest req;
    req.request_id = next_id++;
    req.qos_level = static_cast<uint8_t>(level);
    // ~420 rows per category on the 42k table.
    req.payload = gen.next_category_query(query_rng, 100, 100000);
    host.submit(req, [done](const http::BrokerReply&) { done(); });
  });
  population.start();
  sim.run();

  RunResult r;
  r.mean_ms = population.response_times().mean() * 1000.0;
  r.completed = population.completed();
  r.rewrites = host.broker().rewriter().rewrites();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 60.0);

  std::printf("Ablation — fidelity variation (LIMIT rewriting) under rising load\n\n");
  util::TablePrinter table(
      {"clients", "off_mean_ms", "off_served", "on_mean_ms", "on_served", "rewrites"});
  for (size_t clients : {5u, 10u, 20u, 40u}) {
    RunResult off = run_once(false, clients, duration);
    RunResult on = run_once(true, clients, duration);
    table.add_row({std::to_string(clients), util::TablePrinter::fmt(off.mean_ms, 1),
                   std::to_string(off.completed), util::TablePrinter::fmt(on.mean_ms, 1),
                   std::to_string(on.completed), std::to_string(on.rewrites)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: identical at light load (no rewriting); under load the\n"
              "rewriting column serves more requests at lower latency by returning\n"
              "result prefixes — responsiveness bought with fidelity.\n");
  return 0;
}
