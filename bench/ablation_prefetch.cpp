// Ablation — prefetching periodic content (Section III: "a news provider
// website periodically updates the online headlines. Service brokers can be
// synchronized to prefetch them when the server load is not high").
//
// A WAN news backend serves /headlines. Clients poll it steadily. Without
// prefetch, every cache expiry sends a client across the WAN; with the
// broker prefetching on the update period, clients are served locally.
//
// Usage: ablation_prefetch [duration=120] [clients=10]
#include <cstdio>

#include "srv/broker_host.h"
#include "srv/cgi_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/webstone_client.h"

using namespace sbroker;

namespace {

struct RunResult {
  double mean_ms = 0;
  double p99_ms = 0;
  uint64_t backend_calls = 0;
};

RunResult run_once(bool prefetch, double duration, size_t clients) {
  sim::Simulation sim;
  srv::CgiBackendConfig backend_cfg;
  backend_cfg.processing_time = 0.050;  // render headlines
  backend_cfg.capacity = 5;
  backend_cfg.link = sim::wan_profile();  // loosely coupled provider
  auto backend = std::make_shared<srv::SimCgiBackend>(sim, "news", backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 1e9};
  broker_cfg.enable_cache = true;
  broker_cfg.cache_ttl = 10.0;  // headlines refresh period
  broker_cfg.prefetch_idle_threshold = 4.0;
  srv::BrokerHost host(sim, "news-broker", broker_cfg);
  host.broker().add_backend(backend);
  if (prefetch) {
    host.broker().prefetcher().add("/headlines", "/headlines", 9.0);
    host.kick();
  }

  wl::WebStoneConfig wcfg;
  wcfg.clients = clients;
  wcfg.duration = duration;
  wcfg.think_time = 1.0;
  wcfg.qos_level = 2;
  uint64_t next_id = 1;
  wl::WebStoneClients population(sim, wcfg, [&](int level, std::function<void()> done) {
    http::BrokerRequest req;
    req.request_id = next_id++;
    req.qos_level = static_cast<uint8_t>(level);
    req.payload = "/headlines";
    host.submit(req, [done](const http::BrokerReply&) { done(); });
  });
  population.start();
  // run_until, not run(): the periodic prefetch schedule never drains the
  // event queue on its own.
  sim.run_until(duration + 30.0);

  RunResult r;
  r.mean_ms = population.response_times().mean() * 1000.0;
  r.p99_ms = population.response_times().p99() * 1000.0;
  r.backend_calls = backend->calls();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 120.0);
  size_t clients = static_cast<size_t>(cfg.get_int("clients", 10));

  std::printf("Ablation — prefetching periodic headlines from a WAN provider\n\n");
  util::TablePrinter table({"prefetch", "mean_ms", "p99_ms", "backend_calls"});
  for (bool prefetch : {false, true}) {
    RunResult r = run_once(prefetch, duration, clients);
    table.add_row({prefetch ? "on" : "off", util::TablePrinter::fmt(r.mean_ms, 2),
                   util::TablePrinter::fmt(r.p99_ms, 2),
                   std::to_string(r.backend_calls)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: prefetch-on serves clients from the local cache (sub-ms),\n"
              "with a constant background refresh instead of client-visible WAN trips.\n");
  return 0;
}
