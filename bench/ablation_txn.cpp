// Ablation — transaction step escalation (Section III: "gradually increase
// the priority of the subsequent accesses that belong to the same
// transaction" so a purchase deep in its flow survives overload).
//
// Transactions of 3 sequential accesses run through one overloaded broker
// alongside heavy background traffic. With escalation off, every access
// competes at base class 1 and deep transactions die as often as new ones;
// with escalation on, later steps are promoted and started transactions
// finish far more often.
//
// Usage: ablation_txn [duration=200] [txn_clients=6] [background_clients=24]
#include <cstdio>

#include "srv/broker_host.h"
#include "srv/cgi_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/webstone_client.h"

using namespace sbroker;

namespace {

struct RunResult {
  uint64_t started = 0;
  uint64_t completed = 0;
  double completion_ratio() const {
    return started == 0 ? 0 : static_cast<double>(completed) / static_cast<double>(started);
  }
};

RunResult run_once(bool escalate, double duration, size_t txn_clients,
                   size_t background_clients) {
  sim::Simulation sim;
  srv::CgiBackendConfig backend_cfg;
  backend_cfg.processing_time = 0.5;
  backend_cfg.capacity = 5;
  auto backend = std::make_shared<srv::SimCgiBackend>(sim, "vendor", backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 30.0};
  broker_cfg.enable_cache = false;
  broker_cfg.serve_stale_on_drop = false;
  broker_cfg.txn = core::TxnConfig{escalate ? 1 : 0, 60.0};
  srv::BrokerHost host(sim, "vendor-broker", broker_cfg);
  host.broker().add_backend(backend);

  RunResult result;
  uint64_t next_request = 1;
  uint64_t next_txn = 1;

  // Background load: class-1 single accesses keeping the broker's
  // outstanding count hovering around the class-1 bound, so fresh class-1
  // work races for admission while escalated classes clear easily.
  wl::WebStoneConfig bg_cfg;
  bg_cfg.clients = background_clients;
  bg_cfg.duration = duration;
  bg_cfg.qos_level = 1;
  bg_cfg.think_time = 0.1;
  bg_cfg.rng_seed = 17;
  wl::WebStoneClients background(sim, bg_cfg, [&](int level, std::function<void()> done) {
    http::BrokerRequest req;
    req.request_id = next_request++;
    req.qos_level = static_cast<uint8_t>(level);
    req.payload = "/browse";
    host.submit(req, [done](const http::BrokerReply&) { done(); });
  });

  // Transactional clients: 3-step purchases at base class 1.
  std::function<void(uint64_t, int, std::function<void(bool)>)> step =
      [&](uint64_t txn_id, int step_no, std::function<void(bool)> finish) {
        http::BrokerRequest req;
        req.request_id = next_request++;
        req.qos_level = 1;
        req.txn_id = txn_id;
        req.txn_step = static_cast<uint8_t>(step_no);
        req.payload = "/purchase-step" + std::to_string(step_no);
        host.submit(req, [&, txn_id, step_no, finish](const http::BrokerReply& reply) {
          if (reply.fidelity != http::Fidelity::kFull) {
            finish(false);  // transaction aborted
            return;
          }
          if (step_no == 3) {
            finish(true);
          } else {
            // Inter-step think time (compare vendors, fill the cart). Without
            // it the next step would launch exactly when this one completed —
            // the one instant the outstanding count is below the gate — and
            // admission would never bind on steps 2 and 3.
            sim.after(0.4, [&, txn_id, step_no, finish]() {
              step(txn_id, step_no + 1, finish);
            });
          }
        });
      };

  wl::WebStoneConfig txn_cfg;
  txn_cfg.clients = txn_clients;
  txn_cfg.duration = duration;
  txn_cfg.qos_level = 1;
  txn_cfg.rng_seed = 29;
  txn_cfg.think_time = 0.5;
  wl::WebStoneClients purchasers(sim, txn_cfg, [&](int, std::function<void()> done) {
    uint64_t txn_id = next_txn++;
    ++result.started;
    step(txn_id, 1, [&, done](bool ok) {
      if (ok) ++result.completed;
      host.broker().transactions().complete(txn_id);
      done();
    });
  });

  background.start();
  purchasers.start();
  sim.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 200.0);
  size_t txn_clients = static_cast<size_t>(cfg.get_int("txn_clients", 6));
  size_t background = static_cast<size_t>(cfg.get_int("background_clients", 32));

  std::printf("Ablation — transaction step escalation under overload\n\n");
  util::TablePrinter table({"escalation", "txns_started", "txns_completed", "ratio"});
  for (bool escalate : {false, true}) {
    RunResult r = run_once(escalate, duration, txn_clients, background);
    table.add_row({escalate ? "on" : "off", std::to_string(r.started),
                   std::to_string(r.completed),
                   util::TablePrinter::fmt(r.completion_ratio(), 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected: escalation raises the fraction of started purchases that\n"
              "complete all 3 steps — overload sheds step-1 work instead of aborting\n"
              "transactions that already invested two steps.\n");
  return 0;
}
