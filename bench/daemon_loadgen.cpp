// Closed-loop multi-connection load generator for the sharded broker daemon.
//
// Drives a ShardedBrokerDaemon over real TCP sockets: M client threads, each
// with one persistent wire-protocol connection, issue requests back-to-back
// for a fixed wall-clock window. The sweep is the cross product of shard
// counts and backend-channel modes: pipeline=0 uses the stop-and-wait
// HttpBackend (one outstanding request per connection), pipeline=1 the
// PipelinedBackend (few persistent connections, many in-flight exchanges
// each, coalesced writes). Comparing connections_opened and req/s between
// the modes is the wire-level check of the paper's "a single connection ...
// can be multiplexed to serve multiple applications" claim.
//
//   $ daemon_loadgen shards=1,2,4 pipeline=0,1 clients=64 seconds=2 cache=0
//
// key=value parameters (util::Config):
//   shards    comma list of shard counts to sweep     (default "1,2,4")
//   pipeline  comma list of channel modes, 0 and/or 1 (default "0,1")
//   clients   concurrent closed-loop connections      (default 8)
//   seconds   measurement window per run              (default 2.0)
//   keys      distinct request targets (cache keyspace, default 512)
//   threshold admission threshold (QoS rules)         (default 64)
//   cache     1 = result cache on; 0 off, so every request rides the
//             broker->backend channel under test       (default 1)
//   fallback  1 = force the round-robin acceptor path (default 0)
//   timeout   per-request deadline in ms; 0 = none    (default 0)
//   stallpct  percent of the keyspace routed to a never-replying backend
//             route (half-open stall injection). Requires timeout>0, or
//             stalled requests would block their closed-loop client forever
//             (default 0)
//   attempts  broker attempt budget (lifecycle.max_attempts; >1 enables
//             retry-with-backoff against the channel)   (default 1)
//   dup       comma list of fractions (0..1) of requests routed to the
//             single hottest key, swept like shards/pipeline, modelling
//             flash-crowd repetition. With a short ttl the hot key's misses
//             collide and the single-flight layer collapses them:
//             backend_calls drops well below requests and
//             coalesced_waiters climbs                  (default "0")
//   ttl       result-cache TTL in seconds               (default 3600)
//   grace     stale-while-revalidate grace window, seconds past expiry
//             during which stale values are served while one background
//             refresh runs (0 = off)                    (default 0)
//   jitter    fractional per-key TTL jitter, e.g. 0.1 = +-10% (default 0)
//   negttl    negative-cache TTL for backend errors, seconds (default 0)
//   coalesce  1 = single-flight miss coalescing on      (default 1)
//   check     1 = verify conservation (issued == completed, issued ==
//             forwarded + dropped + cached + errors) and zero client
//             failures after every run; exit 1 on violation — this is the
//             ctest smoke mode that keeps the bench binary honest
//   obs       1 = broker latency histograms + flight recorder on; 0 = the
//             compiled-in-but-idle baseline the overhead experiment
//             compares against                         (default 1)
//   scrape    1 = hit the admin plane: /healthz and /metrics mid-window
//             (they must serve while the broker is loaded), /statusz after
//             the window; broker-side per-class p50/p95/p99 land in the
//             JSON next to the client-side numbers. With check=1 the
//             scrape must succeed and the broker-side total p50 must not
//             exceed the client-side p50 (the broker measures a strict
//             subset of what the client times)         (default 1)
//   proto     comma list of client protocols to sweep, from:
//               wire  legacy SBRK codec (http/wire.h), the historic default
//               bin   compact binary frames (net/frame.h) on the same port —
//                     served by the arena fast path + coalesced flushes
//               http  HTTP/1.1 keep-alive, sniffed on the same main port
//             (default "wire", so existing smokes measure what they always
//             measured)
//   iouring   1 = opt shard reactors into the io_uring write backend (no-op
//             without -DSBROKER_IOURING=ON or kernel support) (default 0)
//   policy    comma list of balancer policies swept per combination, from
//             random, round-robin (rr), least-outstanding (least), weighted,
//             ewma, p2c (see core/balance.h)   (default "least-outstanding",
//             the broker's own default, so existing smokes are unchanged)
//   replicas  backend replicas in the fake pool, each its own HTTP server
//             with its own port                        (default 1)
//   svc       per-request service time in ms at every replica; each replica
//             is a serial (capacity-1) server, so queueing delay is real and
//             responses stay in arrival order (HTTP/1.1 pipelining needs
//             in-order responses). 0 = reply immediately (default 0)
//   svcjitter fractional service-time jitter, e.g. 0.1 = ±10% (default 0.1;
//             only matters with svc>0)
//   skew      comma list of slow-replica multipliers swept per combination:
//             the LAST replica serves svc*skew ms per request, modelling a
//             degraded box in an otherwise uniform pool. skew>1 requires
//             replicas>=2 and svc>0                    (default "1")
//   degrade   seconds into each run before the slow replica's skew kicks in
//             (0 = slow from the start)                (default 0)
//             With check=1, every run must satisfy pick conservation
//             (Σ per-replica balancer picks == backend calls), and at
//             skew>=4 the ewma/p2c runs must route a smaller share of picks
//             to the slow replica than the round-robin run of the same
//             combination.
//   overload  comma list of overload-control specs swept per combination,
//             from: static (the paper's fixed admission threshold), aimd
//             (feedback-driven threshold, see core/overload.h), aimd+lifo /
//             static+lifo (per-class queues flip to LIFO while the
//             controller declares overload)
//             (default "static", the historic behavior)
//   window    broker dispatch window (max batches in flight to backends);
//             0 = unbounded. Flash-crowd runs need window>0 so admitted
//             work queues in the QoS scheduler, where the LIFO discipline
//             and deadline shedding can act on it        (default 0)
//   oeval     overload-controller feedback interval, seconds, applied to
//             every spec that wants feedback            (default 0.05)
//   crowd     flash-crowd multiplier: at t=ramp the client count steps
//             from `clients` to clients*crowd via fresh connections (the
//             paper's flash-crowd arrival shape). Splits the run into a
//             pre phase [0,ramp) and a crowd phase [ramp,end), each with
//             its own goodput/drop/p99 in the JSON. A reply is "good" if
//             it carried useful fidelity (not busy, not error) AND met the
//             client deadline. crowd>1 requires timeout>0 and burst=1.
//             With check=1 and a static run present, every non-static
//             run's crowd-phase goodput must be >= the static run's for
//             the same combination                       (default 1)
//   ramp      seconds into each run at which the crowd joins
//             (default seconds/3; only meaningful with crowd>1)
//   backoff   ms a client sleeps after a busy/error reply before retrying
//             (the closed-loop user reading the "system is busy" page).
//             Without it a drop is instant and the rejected crowd re-offers
//             at wire speed, so on a small host the drop storm itself
//             starves the backend — real browsers do not do that. The sleep
//             is part of the logical request: latency is stamped once at the
//             first attempt and the eventual useful reply reports first
//             attempt + backoff + retry, not just the last leg (default 0)
//   arrivals  comma list of arrival processes swept per combination, from:
//               closed   the historic closed-loop clients (think-time zero,
//                        next request the moment the previous completes)
//               poisson / bursty / diurnal
//                        open-loop schedules (wl::ArrivalSchedule): requests
//                        are *due* at scheduled times whether or not the
//                        system keeps up. Latency is measured from each
//                        request's intended send time, so a stalled broker
//                        shows up in the tail instead of silently shedding
//                        offered load — the coordinated-omission fix. The
//                        biased from-actual-send view is reported alongside.
//             Open modes require rate>0, crowd=1, burst=1, backoff=0
//             (default "closed")
//   rate      total offered load for open-loop modes, requests/second,
//             split evenly across the client threads (each runs its own
//             deterministic schedule seeded from seed+thread; superposed
//             Poisson streams are again Poisson)       (default 0)
//   seed      run seed for the open-loop schedules and the link shim's
//             jitter streams (util::derive_seed fans it out) (default 1)
//   duty      bursty: on-fraction of each period       (default 0.3)
//   period    bursty/diurnal cycle length, seconds     (default 1.0)
//   floor     diurnal: trough rate as fraction of peak (default 0.2)
//   link      degrade the daemon->backend channel through a userspace
//             netem-style TCP proxy (net/netem_proxy.h), one per replica:
//               none   direct connection (the historic wiring)
//               wan    ~40 ms ± 20 ms jitter
//               cell   ~50 ms ± 30 ms + looping cellular bandwidth trace
//                      (sags to dial-up-class throughput mid-cycle)
//               custom:<lat_ms>:<jitter_ms>:<kbps>
//             (default none)
//   out       JSON result file; "" = stdout only      (default BENCH_daemon.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/balance.h"
#include "core/overload.h"
#include "net/http_server.h"
#include "net/http_client.h"
#include "net/netem_proxy.h"
#include "net/pipelined_backend.h"
#include "net/reactor.h"
#include "net/sharded_daemon.h"
#include "sim/link.h"
#include "srv/service_profile.h"
#include "wl/arrival.h"
#include "util/config.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace sbroker;

namespace {

struct BrokerPercentiles {
  uint64_t count = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // seconds
};

/// Per-phase accounting for flash-crowd runs (crowd>1): pre = [0, ramp),
/// crowd = [ramp, end of window). "Useful" counts replies with a usable
/// fidelity (full/cached/degraded — not busy, not error); "good" counts
/// useful replies that also met the client deadline, the goodput basis.
struct PhaseStats {
  double duration = 0.0;
  uint64_t replies = 0;
  uint64_t useful = 0;
  uint64_t good = 0;
  double goodput = 0.0;  // good replies per second of phase time
  double p99_ms = 0.0;   // p99 latency over useful replies
};

struct RunResult {
  size_t shards = 0;
  bool pipelined = false;
  bool kernel_accept_sharding = false;
  std::string proto;  // client protocol this run was driven with
  net::WireStats wire;  // main-port protocol mix + flush coalescing
  double dup = 0.0;  // hot-key fraction this run was driven with
  std::string policy;  // balancer policy this run was driven with
  double skew = 1.0;   // slow-replica service-time multiplier
  size_t replicas = 1;
  // Per-replica picker state from the post-run shard snapshots: picks summed
  // across shards, EWMA the max across shards (each shard has its own view).
  std::vector<uint64_t> replica_picks;
  std::vector<double> replica_ewma_ms;
  uint64_t picks_total = 0;
  double slow_share = 0.0;  // last replica's share of picks (replicas > 1)
  uint64_t requests = 0;   // replies received by clients
  uint64_t failures = 0;   // timeouts / io errors
  double seconds = 0.0;
  double rps = 0.0;
  util::Histogram latency;  // seconds
  double hit_ratio = 0.0;
  core::BrokerMetrics metrics;  // metrics.transport carries the channel stats
  // Admin-plane scrape results (scrape=1): broker-side latency percentiles
  // for the "total" stage, overall and per QoS class.
  bool admin_live = false;  // /healthz + /metrics answered mid-window
  bool scraped = false;     // /statusz fetched and parsed post-window
  BrokerPercentiles broker_total;
  std::vector<BrokerPercentiles> broker_class;
  // Overload-control view of the run (the overload=/window=/crowd=/ramp=
  // dimensions): the spec driven, the post-run mean effective admission
  // threshold across shards, and per-phase goodput when crowd>1.
  std::string overload;
  size_t window = 0;
  size_t crowd = 1;
  double ramp = 0.0;
  double admission_threshold = 0.0;
  bool overload_mode = false;  // any shard still in declared overload
  bool phased = false;         // crowd>1: pre/crowd_phase are meaningful
  PhaseStats pre;
  PhaseStats crowd_phase;
  // Open-loop view of the run (the arrivals=/rate= dimensions): schedule
  // accounting and the biased from-actual-send latency kept next to the
  // coordinated-omission-corrected r.latency.
  std::string arrivals = "closed";
  bool open_loop = false;
  double offered_rate = 0.0;   // requests/second the schedule offered
  uint64_t scheduled = 0;      // arrivals the schedules produced in-window
  uint64_t sent = 0;           // arrivals actually put on the wire
  uint64_t queued_behind = 0;  // arrivals sent >1ms late (sender was busy)
  double max_lag = 0.0;        // worst send lag behind schedule, seconds
  util::Histogram service_latency;  // from actual send (the biased view)
  // Link-degradation shim (the link= dimension).
  std::string link = "none";
  double proxy_max_delay = 0.0;  // worst single-chunk delay applied, seconds
  uint64_t proxy_bytes = 0;
};

/// Anti-stampede knobs swept through to the broker config (see the dup=,
/// ttl=, grace=, jitter=, negttl=, coalesce= parameters above).
struct CacheKnobs {
  double dup = 0.0;
  double ttl = 3600.0;  // no expiry inside the window by default
  double grace = 0.0;
  double jitter = 0.0;
  double negttl = 0.0;
  bool coalesce = true;
};

/// Replica-selection knobs swept through to the broker + fake backend pool
/// (the policy=, replicas=, svc=, svcjitter=, skew=, degrade= parameters).
struct ReplicaKnobs {
  core::BalancePolicy policy = core::BalancePolicy::kLeastOutstanding;
  size_t replicas = 1;
  double svc_ms = 0.0;
  double svc_jitter = 0.1;
  double skew = 1.0;
  double degrade = 0.0;
};

/// Overload-control knobs swept through to the broker config (the
/// overload=, window=, crowd=, ramp= parameters). One per overload= token;
/// window/crowd/ramp are shared across the sweep.
struct OverloadKnobs {
  std::string spec = "static";
  core::OverloadConfig config;
  size_t window = 0;
  size_t crowd = 1;        // client multiplier during the crowd phase
  double ramp = 0.0;       // seconds into the run at which the crowd joins
  double backoff_ms = 0.0; // client sleep after a busy/error reply
};

/// Arrival-process knobs swept through to the client threads (the arrivals=,
/// rate=, seed=, duty=, period=, floor= parameters). kind empty = the
/// historic closed loop.
struct ArrivalKnobs {
  std::string name = "closed";
  std::optional<wl::ArrivalKind> kind;
  double rate = 0.0;  // total offered requests/second, split across clients
  uint64_t seed = 1;
  double duty = 0.3;
  double period = 1.0;
  double floor_frac = 0.2;
};

/// Backend-link degradation (the link= parameter): when set, every replica
/// sits behind its own NetemProxy applying this profile.
struct LinkKnobs {
  std::string name = "none";
  std::optional<sim::Link::Params> profile;
};

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Heterogeneous fake-backend pool: one HTTP server per replica, all on one
/// reactor thread. Each replica is a serial (capacity-1) server — requests
/// queue behind a busy-until cursor and the reply fires from a reactor timer
/// — so a slow replica shows real queueing delay, and responses leave in
/// arrival order, which HTTP/1.1 pipelining (PipelinedBackend's FIFO
/// matching) requires. The LAST replica carries the skew multiplier.
/// Targets under /stall- are swallowed: the response is parked forever,
/// modelling a backend that accepts work and goes mute.
class BackendPool {
 public:
  explicit BackendPool(const ReplicaKnobs& rk) {
    double start = monotonic_seconds();
    for (size_t i = 0; i < rk.replicas; ++i) {
      srv::ServiceProfile profile;
      profile.base = rk.svc_ms * 1e-3;
      profile.jitter = rk.svc_jitter;
      if (rk.replicas > 1 && i + 1 == rk.replicas) {
        profile.multiplier = rk.skew;
        profile.degrade_after = rk.degrade;
      }
      auto rng = std::make_shared<util::Rng>(util::derive_seed(0xb0c0, i));
      auto busy_until = std::make_shared<double>(0.0);
      auto parked = parked_;
      servers_.push_back(std::make_unique<net::HttpServer>(
          reactor_, 0,
          [this, profile, rng, busy_until, parked, start](
              const http::Request& req, net::HttpServer::Responder respond) {
            if (req.target.rfind("/stall-", 0) == 0) {
              parked->push_back(std::move(respond));
              return;
            }
            http::Response resp =
                http::make_response(200, "body of " + req.target);
            double now = monotonic_seconds();
            double svc = profile.sample(0.0, now - start, *rng);
            if (svc <= 0.0) {
              respond(std::move(resp));
              return;
            }
            double begin = std::max(now, *busy_until);
            *busy_until = begin + svc;  // strictly increasing: replies in order
            reactor_.add_timer(*busy_until - now, [respond, resp]() {
              respond(resp);
            });
          }));
    }
    thread_ = std::thread([this] { reactor_.run(); });
  }
  ~BackendPool() {
    reactor_.stop();
    thread_.join();
  }
  uint16_t port(size_t replica) const { return servers_[replica]->port(); }

 private:
  net::Reactor reactor_;
  std::vector<std::unique_ptr<net::HttpServer>> servers_;
  std::shared_ptr<std::vector<net::HttpServer::Responder>> parked_ =
      std::make_shared<std::vector<net::HttpServer::Responder>>();
  std::thread thread_;
};

/// Parses the /statusz JSON into broker-side latency percentiles.
bool parse_statusz(const std::string& body, RunResult& r) {
  std::optional<util::JsonValue> doc = util::JsonValue::parse(body);
  if (!doc || !doc->is_object()) return false;
  const util::JsonValue& total = (*doc)["stages"]["total"];
  if (total.is_null()) return false;
  r.broker_total.count = static_cast<uint64_t>(total["count"].as_int());
  r.broker_total.p50 = total["p50"].as_double();
  r.broker_total.p95 = total["p95"].as_double();
  r.broker_total.p99 = total["p99"].as_double();
  for (const util::JsonValue& cls : (*doc)["classes"].items()) {
    const util::JsonValue& lat = cls["latency"]["total"];
    BrokerPercentiles pct;
    pct.count = static_cast<uint64_t>(lat["count"].as_int());
    pct.p50 = lat["p50"].as_double();
    pct.p95 = lat["p95"].as_double();
    pct.p99 = lat["p99"].as_double();
    r.broker_class.push_back(pct);
  }
  return true;
}

RunResult run_one(size_t shards, bool pipelined, size_t clients, double seconds,
                  uint64_t keys, double threshold, bool cache, bool fallback,
                  uint32_t timeout_ms, uint64_t stallpct, int attempts,
                  bool obs_on, bool scrape, const CacheKnobs& knobs,
                  const std::string& proto, size_t burst, bool iouring,
                  const ReplicaKnobs& rk, const OverloadKnobs& ok,
                  const ArrivalKnobs& ak, const LinkKnobs& lk) {
  BackendPool backends(rk);
  // link=: interpose a netem-style proxy per replica; the daemon's backend
  // channels then ride the degraded path while the loadgen-facing side stays
  // clean. Jitter streams decorrelate per replica via derive_seed.
  std::vector<std::unique_ptr<net::NetemProxy>> proxies;
  if (lk.profile) {
    for (size_t i = 0; i < rk.replicas; ++i) {
      proxies.push_back(std::make_unique<net::NetemProxy>(
          backends.port(i), *lk.profile,
          util::derive_seed(ak.seed, 0x10000 + i)));
    }
  }
  net::ShardedBrokerDaemonConfig cfg;
  cfg.broker.rng_seed = util::derive_seed(ak.seed, 0x5eed);
  cfg.broker.rules = core::QosRules{3, threshold};
  cfg.broker.overload = ok.config;
  cfg.broker.dispatch_window = ok.window;
  cfg.broker.enable_cache = cache;
  cfg.broker.cache_capacity = 4096;
  cfg.broker.cache_ttl = knobs.ttl;
  cfg.broker.single_flight = knobs.coalesce;
  cfg.broker.cache_tuning.swr_grace = knobs.grace;
  cfg.broker.cache_tuning.ttl_jitter = knobs.jitter;
  cfg.broker.cache_tuning.negative_ttl = knobs.negttl;
  cfg.broker.lifecycle.max_attempts = attempts;
  cfg.broker.obs.histograms = obs_on;
  cfg.broker.obs.trace = obs_on;
  cfg.broker.balance = rk.policy;
  cfg.shards = shards;
  cfg.enable_udp = false;
  cfg.force_acceptor_fallback = fallback;
  cfg.io_uring = iouring;
  net::ShardedBrokerDaemon daemon("loadgen-broker", cfg);
  core::PoolConfig pool = cfg.broker.pool;
  for (size_t i = 0; i < rk.replicas; ++i) {
    uint16_t backend_port =
        proxies.empty() ? backends.port(i) : proxies[i]->port();
    daemon.add_backend([backend_port, pipelined, pool](net::Reactor& reactor,
                                                       size_t) -> std::shared_ptr<core::Backend> {
      if (pipelined) {
        // Same caps as the broker's ConnectionPool, so the wire enforces the
        // bounds the core accounting already promised.
        return std::make_shared<net::PipelinedBackend>(
            reactor, backend_port, net::PipelinedBackend::Config::from_pool(pool));
      }
      return std::make_shared<net::HttpBackend>(reactor, backend_port);
    });
  }
  daemon.start();

  std::atomic<bool> stop_flag{false};
  size_t total_clients = clients * std::max<size_t>(1, ok.crowd);
  std::vector<uint64_t> counts(total_clients, 0);
  std::vector<uint64_t> failures(total_clients, 0);
  std::vector<std::vector<double>> latencies(total_clients);
  // Open-loop accounting (arrivals != closed): per-thread schedule counters
  // and the biased from-actual-send latencies kept next to the corrected
  // ones above.
  bool open_loop = ak.kind.has_value();
  std::vector<uint64_t> scheduled_counts(total_clients, 0);
  std::vector<uint64_t> sent_counts(total_clients, 0);
  std::vector<uint64_t> queued_counts(total_clients, 0);
  std::vector<double> lag_max(total_clients, 0.0);
  std::vector<std::vector<double>> service_lats(total_clients);
  // Flash-crowd phase records: reply completion time relative to t0, its
  // latency, and the useful/good classification (only kept with crowd>1).
  struct ReplyRec {
    float t = 0.0f;
    float lat = 0.0f;
    bool useful = false;
    bool good = false;
  };
  std::vector<std::vector<ReplyRec>> records(total_clients);
  std::vector<std::thread> threads;
  threads.reserve(total_clients);

  double t0 = monotonic_seconds();
  for (size_t c = 0; c < total_clients; ++c) {
    threads.emplace_back([&, c]() {
      if (c >= clients) {
        // Crowd client: sleeps until t0+ramp, then joins with a fresh
        // connection — the step arrival the flash-crowd runs measure
        // overload-control recovery from.
        while (!stop_flag.load(std::memory_order_relaxed)) {
          double wait = t0 + ok.ramp - monotonic_seconds();
          if (wait <= 0.0) break;
          std::this_thread::sleep_for(
              std::chrono::duration<double>(std::min(wait, 0.01)));
        }
        if (stop_flag.load(std::memory_order_relaxed)) return;
      }
      // One persistent connection of the selected protocol per thread; all
      // three speak to the same sniffed main port.
      std::unique_ptr<net::BrokerClient> wire_client;
      std::unique_ptr<net::FrameClient> bin_client;
      std::unique_ptr<net::HttpKeepAliveClient> http_client;
      if (proto == "bin") {
        bin_client = std::make_unique<net::FrameClient>(daemon.port());
      } else if (proto == "http") {
        http_client = std::make_unique<net::HttpKeepAliveClient>(daemon.port());
      } else {
        wire_client = std::make_unique<net::BrokerClient>(daemon.port());
      }
      // Per-thread LCG so every sweep runs the identical trace per thread.
      uint64_t rng = 0x9e3779b97f4a7c15ULL + c;
      uint64_t id = c << 32;
      latencies[c].reserve(1 << 16);
      // Draws the next target off the per-thread trace: the dup= hot-key
      // bias, the QoS class, and the stallpct mute-route mapping, shared by
      // both loop shapes.
      auto next_payload = [&](uint8_t& qos) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        uint64_t key = (rng >> 33) % keys;
        // dup: this fraction of requests targets the single hottest key —
        // the flash-crowd shape the single-flight layer exists for.
        if (knobs.dup > 0.0) {
          rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
          if (static_cast<double>(rng >> 40) / 16777216.0 < knobs.dup) key = 0;
        }
        qos = static_cast<uint8_t>(1 + key % 3);
        // The bottom stallpct% of the keyspace maps to the backend's mute
        // route: the exchange stalls half-open and only the deadline (via
        // the broker's cancel token) resolves it.
        bool stalled = keys > 0 && (key * 100) / keys < stallpct;
        return (stalled ? "/stall-" : "/object-") + std::to_string(key);
      };
      // Useful = the reply carried a usable result (full/cached/degraded
      // fidelity, or HTTP 200) — busy notices and errors are completed but
      // not useful, the distinction goodput accounting rests on.
      struct CallOutcome {
        bool got_reply = false;
        bool matched = false;
        bool useful = false;
      };
      auto call_once = [&](uint64_t rid, const std::string& payload,
                           uint8_t qos) {
        CallOutcome o;
        if (bin_client) {
          auto reply = bin_client->call(rid, payload, qos, timeout_ms);
          o.got_reply = reply.has_value();
          o.matched = reply && reply->request_id == rid;
          o.useful = o.matched && reply->fidelity != http::Fidelity::kBusy &&
                     reply->fidelity != http::Fidelity::kError;
        } else if (http_client) {
          http::Request hreq;
          hreq.target = payload;
          hreq.set_qos_level(qos);
          if (timeout_ms > 0) {
            hreq.headers.set(std::string(http::kDeadlineHeader),
                             std::to_string(timeout_ms));
          }
          auto resp = http_client->call(hreq);
          o.got_reply = resp.has_value();
          o.matched = o.got_reply;  // HTTP/1.1: responses arrive in order
          o.useful = o.got_reply && resp->status == 200;
        } else {
          http::BrokerRequest req;
          req.request_id = rid;
          req.qos_level = qos;
          req.service = "web";
          req.deadline_ms = timeout_ms;
          req.payload = payload;
          auto reply = wire_client->call(req);
          o.got_reply = reply.has_value();
          o.matched = reply && reply->request_id == rid;
          o.useful = o.matched && reply->fidelity != http::Fidelity::kBusy &&
                     reply->fidelity != http::Fidelity::kError;
        }
        return o;
      };

      if (open_loop) {
        // Open loop: requests are *due* at schedule times whether or not the
        // broker keeps up. Latency is measured from the intended send time,
        // so a request that had to wait for its (serial) sender reports the
        // wait — the coordinated-omission fix. The schedule is a pure
        // function of (config, seed): every sweep offers the identical
        // trace.
        wl::ArrivalConfig acfg;
        acfg.kind = *ak.kind;
        acfg.rate = ak.rate / static_cast<double>(clients);
        acfg.duty = ak.duty;
        acfg.period = ak.period;
        acfg.floor_frac = ak.floor_frac;
        wl::ArrivalSchedule schedule(acfg, util::derive_seed(ak.seed, c));
        service_lats[c].reserve(1 << 14);
        // Safety valve for a wedged run: anything still unsent by then stays
        // scheduled-but-unsent and fails the check gate loudly.
        double hard_stop = t0 + seconds + std::max(5.0, 2.0 * seconds);
        for (;;) {
          double offset = schedule.next();
          if (offset >= seconds) break;  // window's schedule fully consumed
          ++scheduled_counts[c];
          double intended = t0 + offset;
          for (;;) {
            double now = monotonic_seconds();
            if (now >= intended) break;
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::min(intended - now, 0.002)));
          }
          double send_at = monotonic_seconds();
          if (send_at > hard_stop) break;
          if (send_at - intended > 0.001) {
            ++queued_counts[c];
            lag_max[c] = std::max(lag_max[c], send_at - intended);
          }
          uint8_t qos = 1;
          std::string payload = next_payload(qos);
          uint64_t rid = ++id;
          ++sent_counts[c];
          CallOutcome o = call_once(rid, payload, qos);
          double end = monotonic_seconds();
          if (o.matched) {
            ++counts[c];
            latencies[c].push_back(end - intended);    // corrected
            service_lats[c].push_back(end - send_at);  // the biased view
          } else {
            ++failures[c];
            if (!o.got_reply) break;  // connection is gone; stop this client
          }
        }
        return;
      }

      std::vector<std::string> batch;  // proto=bin burst>1 only
      // Closed loop. `start` stamps once per *logical* request: after a busy
      // reply with backoff the client sleeps and retries the same target
      // WITHOUT re-stamping, so the eventual useful reply reports first
      // attempt + backoff + retry. Re-stamping after the sleep (the old
      // behavior) hid the entire backoff from p50/p99.
      bool retry_pending = false;
      double start = 0.0;
      uint8_t qos = 1;
      std::string payload;
      while (!stop_flag.load(std::memory_order_relaxed)) {
        if (!retry_pending) {
          payload = next_payload(qos);
          start = monotonic_seconds();
        }
        retry_pending = false;
        if (bin_client && burst > 1) {
          // Pipelined burst: `burst` frames in one send, replies collected
          // after — the shape that exercises the cycle-end write coalescing.
          batch.assign(burst, payload);
          uint64_t first_id = id + 1;
          id += burst;
          auto replies = bin_client->call_burst(first_id, batch, qos, timeout_ms);
          double elapsed = monotonic_seconds() - start;
          counts[c] += replies.size();
          if (replies.size() == burst) {
            latencies[c].push_back(elapsed);
          } else {
            failures[c] += burst - replies.size();
            break;  // connection is gone; stop this client
          }
          continue;
        }
        uint64_t rid = ++id;
        CallOutcome o = call_once(rid, payload, qos);
        double elapsed = monotonic_seconds() - start;
        if (o.matched) {
          ++counts[c];
          // A busy reply about to be retried is not the end of the logical
          // request — its latency lands on the eventual useful reply.
          bool will_retry = !o.useful && ok.backoff_ms > 0.0;
          if (!will_retry) latencies[c].push_back(elapsed);
          if (ok.crowd > 1) {
            // Good = useful and within the client deadline (5ms wire slack).
            bool good = o.useful && (timeout_ms == 0 ||
                                     elapsed <= timeout_ms * 1e-3 + 0.005);
            records[c].push_back({static_cast<float>(start + elapsed - t0),
                                  static_cast<float>(elapsed), o.useful, good});
          }
          if (will_retry) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ok.backoff_ms * 1e-3));
            retry_pending = true;
          }
        } else {
          ++failures[c];
          if (!o.got_reply) break;  // connection is gone; stop this client
        }
      }
    });
  }

  RunResult r;
  if (scrape) {
    // Mid-window: the admin plane must answer while every client is
    // hammering the broker — it runs on its own reactor thread precisely so
    // scrapes do not queue behind admission work.
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2));
    http::Request probe;
    probe.target = "/healthz";
    auto health = net::http_fetch(daemon.admin_port(), probe);
    probe.target = "/metrics";
    auto metrics_page = net::http_fetch(daemon.admin_port(), probe);
    r.admin_live = health && health->status == 200 && metrics_page &&
                   metrics_page->status == 200 &&
                   metrics_page->body.find("sbroker_requests_total") !=
                       std::string::npos;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2));
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  stop_flag.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  double wall = monotonic_seconds() - t0;

  if (scrape) {
    // Post-window, daemon still running: the broker-side view of the run.
    http::Request probe;
    probe.target = "/statusz";
    auto statusz = net::http_fetch(daemon.admin_port(), probe);
    if (statusz && statusz->status == 200) {
      r.scraped = parse_statusz(statusz->body, r);
    }
  }

  r.shards = shards;
  r.pipelined = pipelined;
  r.kernel_accept_sharding = daemon.kernel_accept_sharding();
  r.proto = proto;
  r.wire = daemon.aggregate_wire_stats();
  r.dup = knobs.dup;
  r.policy = core::balance_policy_name(rk.policy);
  r.skew = rk.skew;
  r.replicas = rk.replicas;
  r.seconds = wall;
  r.overload = ok.spec;
  r.window = ok.window;
  r.crowd = ok.crowd;
  r.ramp = ok.ramp;
  r.arrivals = ak.name;
  r.open_loop = open_loop;
  r.offered_rate = ak.rate;
  r.link = lk.name;
  for (const auto& proxy : proxies) {
    r.proxy_max_delay = std::max(r.proxy_max_delay, proxy->max_delay());
    r.proxy_bytes += proxy->bytes_relayed();
  }
  for (size_t c = 0; c < total_clients; ++c) {
    r.requests += counts[c];
    r.failures += failures[c];
    for (double s : latencies[c]) r.latency.add(s);
    r.scheduled += scheduled_counts[c];
    r.sent += sent_counts[c];
    r.queued_behind += queued_counts[c];
    r.max_lag = std::max(r.max_lag, lag_max[c]);
    for (double s : service_lats[c]) r.service_latency.add(s);
  }
  if (ok.crowd > 1) {
    r.phased = true;
    r.pre.duration = std::min(ok.ramp, wall);
    r.crowd_phase.duration = std::max(0.0, wall - ok.ramp);
    util::Histogram pre_lat, crowd_lat;
    for (const auto& recs : records) {
      for (const ReplyRec& rec : recs) {
        bool in_pre = rec.t < ok.ramp;
        PhaseStats& ph = in_pre ? r.pre : r.crowd_phase;
        ++ph.replies;
        if (rec.useful) {
          ++ph.useful;
          (in_pre ? pre_lat : crowd_lat).add(rec.lat);
        }
        if (rec.good) ++ph.good;
      }
    }
    if (r.pre.duration > 0.0) {
      r.pre.goodput = static_cast<double>(r.pre.good) / r.pre.duration;
    }
    if (r.crowd_phase.duration > 0.0) {
      r.crowd_phase.goodput =
          static_cast<double>(r.crowd_phase.good) / r.crowd_phase.duration;
    }
    r.pre.p99_ms = pre_lat.p99() * 1e3;
    r.crowd_phase.p99_ms = crowd_lat.p99() * 1e3;
  }
  r.rps = wall > 0 ? static_cast<double>(r.requests) / wall : 0.0;
  r.hit_ratio = daemon.shared_cache().hit_ratio();
  // One consistent post-run snapshot per shard: both the folded metrics and
  // the per-replica picker state come from it, so the pick-conservation gate
  // (Σ picks == backend calls) compares numbers read at the same instant.
  std::vector<net::ShardStatus> status = daemon.shard_status();
  int num_levels = 1;
  for (const net::ShardStatus& s : status) {
    num_levels = std::max(num_levels, s.metrics.num_levels());
  }
  core::BrokerMetrics folded(num_levels);
  for (const net::ShardStatus& s : status) folded.merge(s.metrics);
  r.metrics = std::move(folded);
  double threshold_sum = 0.0;
  for (const net::ShardStatus& s : status) {
    threshold_sum += s.admission_threshold;
    r.overload_mode = r.overload_mode || s.overload_mode;
  }
  if (!status.empty()) {
    r.admission_threshold = threshold_sum / static_cast<double>(status.size());
  }
  r.replica_picks.assign(rk.replicas, 0);
  r.replica_ewma_ms.assign(rk.replicas, 0.0);
  for (const net::ShardStatus& s : status) {
    for (const net::ReplicaStatus& rep : s.replicas) {
      if (rep.index >= rk.replicas) continue;
      r.replica_picks[rep.index] += rep.picks;
      r.replica_ewma_ms[rep.index] =
          std::max(r.replica_ewma_ms[rep.index], rep.ewma_ms);
    }
  }
  for (uint64_t p : r.replica_picks) r.picks_total += p;
  if (rk.replicas > 1 && r.picks_total > 0) {
    r.slow_share = static_cast<double>(r.replica_picks[rk.replicas - 1]) /
                   static_cast<double>(r.picks_total);
  }
  daemon.stop();
  return r;
}

/// Parses a comma list of fractions in [0,1]; empty result means a parse
/// error (the dup= sweep dimension).
std::vector<double> parse_fraction_list(const std::string& list) {
  std::vector<double> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(pos, comma - pos);
    try {
      size_t consumed = 0;
      double f = std::stod(token, &consumed);
      if (consumed != token.size() || f < 0.0 || f > 1.0) {
        throw std::invalid_argument(token);
      }
      values.push_back(f);
    } catch (const std::exception&) {
      return {};
    }
    pos = comma + 1;
  }
  return values;
}

/// Parses a comma list of unsigned values; empty result means a parse error.
std::vector<size_t> parse_list(const std::string& list, size_t min_value) {
  std::vector<size_t> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(pos, comma - pos);
    try {
      size_t consumed = 0;
      size_t n = std::stoul(token, &consumed);
      if (consumed != token.size() || n < min_value) {
        throw std::invalid_argument(token);
      }
      values.push_back(n);
    } catch (const std::exception&) {
      return {};
    }
    pos = comma + 1;
  }
  return values;
}

/// Parses a comma list of doubles >= min_value; empty means a parse error
/// (the skew= sweep dimension).
std::vector<double> parse_double_list(const std::string& list,
                                      double min_value) {
  std::vector<double> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(pos, comma - pos);
    try {
      size_t consumed = 0;
      double f = std::stod(token, &consumed);
      if (consumed != token.size() || f < min_value) {
        throw std::invalid_argument(token);
      }
      values.push_back(f);
    } catch (const std::exception&) {
      return {};
    }
    pos = comma + 1;
  }
  return values;
}

/// Parses the policy= comma list; empty result means a parse error.
std::vector<core::BalancePolicy> parse_policy_list(const std::string& list) {
  std::vector<core::BalancePolicy> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    auto policy = core::parse_balance_policy(list.substr(pos, comma - pos));
    if (!policy) return {};
    values.push_back(*policy);
    pos = comma + 1;
  }
  return values;
}

/// Parses the proto= comma list; empty result means a parse error.
std::vector<std::string> parse_proto_list(const std::string& list) {
  std::vector<std::string> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(pos, comma - pos);
    if (token != "wire" && token != "bin" && token != "http") return {};
    values.push_back(std::move(token));
    pos = comma + 1;
  }
  return values;
}

/// Parses the overload= comma list into controller configs on top of the
/// shared base; empty result means a parse error.
std::vector<OverloadKnobs> parse_overload_list(
    const std::string& list, const core::OverloadConfig& base) {
  std::vector<OverloadKnobs> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(pos, comma - pos);
    auto config = core::parse_overload_spec(token, base);
    if (!config) return {};
    OverloadKnobs ok;
    ok.spec = std::move(token);
    ok.config = *config;
    values.push_back(std::move(ok));
    pos = comma + 1;
  }
  return values;
}

/// Parses the arrivals= comma list; empty result means a parse error.
std::vector<ArrivalKnobs> parse_arrival_list(const std::string& list) {
  std::vector<ArrivalKnobs> values;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string token = list.substr(pos, comma - pos);
    ArrivalKnobs ak;
    ak.name = token;
    if (token != "closed") {
      auto kind = wl::ArrivalSchedule::parse_kind(token);
      if (!kind) return {};
      ak.kind = *kind;
    }
    values.push_back(std::move(ak));
    pos = comma + 1;
  }
  return values;
}

/// Parses link= (none | wan | cell | custom:<lat_ms>:<jitter_ms>:<kbps>)
/// into a shim profile. Returns false on a parse error.
bool parse_link_spec(const std::string& spec, LinkKnobs& lk) {
  lk.name = spec;
  if (spec == "none") return true;
  if (spec == "wan") {
    lk.profile = sim::wan_profile();
    return true;
  }
  if (spec == "cell") {
    lk.profile = sim::cellular_profile();
    return true;
  }
  if (spec.rfind("custom:", 0) == 0) {
    double v[3];
    size_t pos = 7;
    for (int i = 0; i < 3; ++i) {
      size_t end = (i == 2) ? spec.size() : spec.find(':', pos);
      if (end == std::string::npos) return false;
      std::string token = spec.substr(pos, end - pos);
      try {
        size_t consumed = 0;
        v[i] = std::stod(token, &consumed);
        if (consumed != token.size() || v[i] < 0.0) return false;
      } catch (const std::exception&) {
        return false;
      }
      pos = end + 1;
    }
    sim::Link::Params p;
    p.latency = v[0] * 1e-3;
    p.jitter = v[1] * 1e-3;
    p.bytes_per_second = v[2] * 125.0;  // kbit/s -> bytes/s
    lk.profile = p;
    return true;
  }
  return false;
}

/// The bench smoke invariants: every request issued at some shard was
/// answered exactly once, partitioned cleanly into the four outcomes, and
/// every client got every reply it waited for.
bool conservation_holds(const RunResult& r) {
  core::BrokerMetrics::ClassCounters total = r.metrics.total();
  bool ok = true;
  if (r.failures != 0) {
    std::fprintf(stderr, "conservation: %llu client-side failures\n",
                 static_cast<unsigned long long>(r.failures));
    ok = false;
  }
  if (total.issued != r.requests) {
    std::fprintf(stderr, "conservation: issued %llu != client replies %llu\n",
                 static_cast<unsigned long long>(total.issued),
                 static_cast<unsigned long long>(r.requests));
    ok = false;
  }
  if (total.completed != total.issued) {
    std::fprintf(stderr, "conservation: completed %llu != issued %llu\n",
                 static_cast<unsigned long long>(total.completed),
                 static_cast<unsigned long long>(total.issued));
    ok = false;
  }
  if (total.forwarded + total.dropped + total.cache_hits + total.errors !=
      total.issued) {
    std::fprintf(stderr,
                 "conservation: forwarded %llu + dropped %llu + cached %llu + "
                 "errors %llu != issued %llu\n",
                 static_cast<unsigned long long>(total.forwarded),
                 static_cast<unsigned long long>(total.dropped),
                 static_cast<unsigned long long>(total.cache_hits),
                 static_cast<unsigned long long>(total.errors),
                 static_cast<unsigned long long>(total.issued));
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  std::string shard_list = cfg.get_string("shards", "1,2,4");
  std::string pipeline_list = cfg.get_string("pipeline", "0,1");
  size_t clients = static_cast<size_t>(cfg.get_int("clients", 8));
  double seconds = cfg.get_double("seconds", 2.0);
  uint64_t keys = static_cast<uint64_t>(cfg.get_int("keys", 512));
  double threshold = cfg.get_double("threshold", 64.0);
  bool cache = cfg.get_bool("cache", true);
  bool fallback = cfg.get_bool("fallback", false);
  bool check = cfg.get_bool("check", false);
  uint32_t timeout_ms = static_cast<uint32_t>(cfg.get_int("timeout", 0));
  uint64_t stallpct = static_cast<uint64_t>(cfg.get_int("stallpct", 0));
  int attempts = static_cast<int>(cfg.get_int("attempts", 1));
  bool obs_on = cfg.get_bool("obs", true);
  bool scrape = cfg.get_bool("scrape", true);
  CacheKnobs knobs;
  std::string dup_list = cfg.get_string("dup", "0");
  knobs.ttl = cfg.get_double("ttl", 3600.0);
  knobs.grace = cfg.get_double("grace", 0.0);
  knobs.jitter = cfg.get_double("jitter", 0.0);
  knobs.negttl = cfg.get_double("negttl", 0.0);
  knobs.coalesce = cfg.get_bool("coalesce", true);
  std::string proto_list = cfg.get_string("proto", "wire");
  size_t burst = static_cast<size_t>(cfg.get_int("burst", 1));
  bool iouring = cfg.get_bool("iouring", false);
  std::string policy_list = cfg.get_string("policy", "least-outstanding");
  std::string skew_list = cfg.get_string("skew", "1");
  ReplicaKnobs rk;
  rk.replicas = static_cast<size_t>(cfg.get_int("replicas", 1));
  rk.svc_ms = cfg.get_double("svc", 0.0);
  rk.svc_jitter = cfg.get_double("svcjitter", 0.1);
  rk.degrade = cfg.get_double("degrade", 0.0);
  std::string overload_list = cfg.get_string("overload", "static");
  size_t window = static_cast<size_t>(cfg.get_int("window", 0));
  double oeval = cfg.get_double("oeval", 0.05);
  size_t crowd_mult = static_cast<size_t>(cfg.get_int("crowd", 1));
  double ramp = cfg.get_double("ramp", seconds / 3.0);
  double backoff = cfg.get_double("backoff", 0.0);
  std::string arrivals_list = cfg.get_string("arrivals", "closed");
  double rate = cfg.get_double("rate", 0.0);
  uint64_t run_seed = static_cast<uint64_t>(cfg.get_int("seed", 1));
  double duty = cfg.get_double("duty", 0.3);
  double arr_period = cfg.get_double("period", 1.0);
  double floor_frac = cfg.get_double("floor", 0.2);
  std::string link_spec = cfg.get_string("link", "none");
  std::string out = cfg.get_string("out", "BENCH_daemon.json");

  std::vector<size_t> sweep = parse_list(shard_list, 1);
  if (sweep.empty()) {
    std::fprintf(stderr,
                 "error: shards=%s is not a comma list of positive counts "
                 "(e.g. shards=1,2,4)\n", shard_list.c_str());
    return 1;
  }
  std::vector<size_t> modes = parse_list(pipeline_list, 0);
  for (size_t m : modes) {
    if (m > 1) modes.clear();
  }
  if (modes.empty()) {
    std::fprintf(stderr, "error: pipeline=%s must be a comma list of 0/1\n",
                 pipeline_list.c_str());
    return 1;
  }
  if (clients == 0 || seconds <= 0.0 || keys == 0) {
    std::fprintf(stderr, "error: need clients>=1, seconds>0, keys>=1\n");
    return 1;
  }
  if (stallpct > 100) {
    std::fprintf(stderr, "error: stallpct=%llu must be 0..100\n",
                 static_cast<unsigned long long>(stallpct));
    return 1;
  }
  if (stallpct > 0 && timeout_ms == 0) {
    std::fprintf(stderr,
                 "error: stallpct>0 needs timeout>0 — a stalled request with "
                 "no deadline blocks its closed-loop client forever\n");
    return 1;
  }
  if (attempts < 1) {
    std::fprintf(stderr, "error: attempts must be >= 1\n");
    return 1;
  }
  std::vector<double> dups = parse_fraction_list(dup_list);
  if (dups.empty()) {
    std::fprintf(stderr,
                 "error: dup=%s must be a comma list of fractions in 0..1 "
                 "(e.g. dup=0,0.5,0.8)\n", dup_list.c_str());
    return 1;
  }
  if (knobs.ttl <= 0.0 || knobs.grace < 0.0 || knobs.jitter < 0.0 ||
      knobs.negttl < 0.0) {
    std::fprintf(stderr, "error: need ttl>0, grace>=0, jitter>=0, negttl>=0\n");
    return 1;
  }
  std::vector<std::string> protos = parse_proto_list(proto_list);
  if (protos.empty()) {
    std::fprintf(stderr,
                 "error: proto=%s must be a comma list drawn from "
                 "wire,bin,http\n", proto_list.c_str());
    return 1;
  }
  if (burst < 1) {
    std::fprintf(stderr, "error: burst must be >= 1\n");
    return 1;
  }
  if (burst > 1 &&
      (protos.size() != 1 || protos[0] != "bin")) {
    std::fprintf(stderr, "error: burst>1 requires proto=bin (frame pipelining)\n");
    return 1;
  }
  std::vector<core::BalancePolicy> policies = parse_policy_list(policy_list);
  if (policies.empty()) {
    std::fprintf(stderr,
                 "error: policy=%s must be a comma list drawn from random,"
                 "round-robin,least-outstanding,weighted,ewma,p2c\n",
                 policy_list.c_str());
    return 1;
  }
  std::vector<double> skews = parse_double_list(skew_list, 1.0);
  if (skews.empty()) {
    std::fprintf(stderr,
                 "error: skew=%s must be a comma list of multipliers >= 1\n",
                 skew_list.c_str());
    return 1;
  }
  if (rk.replicas < 1 || rk.svc_ms < 0.0 || rk.svc_jitter < 0.0 ||
      rk.degrade < 0.0) {
    std::fprintf(stderr,
                 "error: need replicas>=1, svc>=0, svcjitter>=0, degrade>=0\n");
    return 1;
  }
  double max_skew = *std::max_element(skews.begin(), skews.end());
  if (max_skew > 1.0 && (rk.replicas < 2 || rk.svc_ms <= 0.0)) {
    std::fprintf(stderr,
                 "error: skew>1 needs replicas>=2 and svc>0 — with a single "
                 "replica or zero service time there is nothing to skew\n");
    return 1;
  }
  if (oeval <= 0.0) {
    std::fprintf(stderr, "error: oeval must be > 0\n");
    return 1;
  }
  core::OverloadConfig overload_base;
  overload_base.eval_interval = oeval;
  std::vector<OverloadKnobs> overloads =
      parse_overload_list(overload_list, overload_base);
  if (overloads.empty()) {
    std::fprintf(stderr,
                 "error: overload=%s must be a comma list drawn from "
                 "static,aimd,aimd+lifo,static+lifo\n", overload_list.c_str());
    return 1;
  }
  if (crowd_mult < 1) {
    std::fprintf(stderr, "error: crowd must be >= 1\n");
    return 1;
  }
  if (crowd_mult > 1 && timeout_ms == 0) {
    std::fprintf(stderr,
                 "error: crowd>1 needs timeout>0 — goodput is defined against "
                 "the client deadline\n");
    return 1;
  }
  if (crowd_mult > 1 && burst > 1) {
    std::fprintf(stderr, "error: crowd>1 requires burst=1\n");
    return 1;
  }
  if (crowd_mult > 1 && (ramp <= 0.0 || ramp >= seconds)) {
    std::fprintf(stderr,
                 "error: ramp=%.3g must fall strictly inside the %.3gs "
                 "window for crowd>1\n", ramp, seconds);
    return 1;
  }
  if (backoff < 0.0) {
    std::fprintf(stderr, "error: backoff must be >= 0\n");
    return 1;
  }
  std::vector<ArrivalKnobs> arrival_sweep = parse_arrival_list(arrivals_list);
  if (arrival_sweep.empty()) {
    std::fprintf(stderr,
                 "error: arrivals=%s must be a comma list drawn from "
                 "closed,poisson,bursty,diurnal\n", arrivals_list.c_str());
    return 1;
  }
  bool any_open = false;
  for (ArrivalKnobs& ak : arrival_sweep) {
    ak.rate = rate;
    ak.seed = run_seed;
    ak.duty = duty;
    ak.period = arr_period;
    ak.floor_frac = floor_frac;
    any_open = any_open || ak.kind.has_value();
  }
  if (any_open) {
    if (rate <= 0.0) {
      std::fprintf(stderr,
                   "error: open-loop arrivals need rate>0 (total offered "
                   "requests/second)\n");
      return 1;
    }
    if (duty <= 0.0 || duty > 1.0 || arr_period <= 0.0 || floor_frac < 0.0 ||
        floor_frac > 1.0) {
      std::fprintf(stderr,
                   "error: need 0<duty<=1, period>0, 0<=floor<=1\n");
      return 1;
    }
    if (crowd_mult > 1 || burst > 1 || backoff > 0.0) {
      std::fprintf(stderr,
                   "error: open-loop arrivals require crowd=1, burst=1, "
                   "backoff=0 — the schedule itself shapes the load\n");
      return 1;
    }
  }
  LinkKnobs lk_knobs;
  if (!parse_link_spec(link_spec, lk_knobs)) {
    std::fprintf(stderr,
                 "error: link=%s must be none, wan, cell, or "
                 "custom:<lat_ms>:<jitter_ms>:<kbps>\n", link_spec.c_str());
    return 1;
  }
  for (OverloadKnobs& ok : overloads) {
    ok.window = window;
    ok.crowd = crowd_mult;
    ok.ramp = ramp;
    ok.backoff_ms = backoff;
  }

  unsigned cpus = std::thread::hardware_concurrency();
  std::printf(
      "daemon_loadgen: %zu clients, %.1fs per run, %llu keys, cache=%d, "
      "timeout=%ums, stallpct=%llu, attempts=%d, obs=%d, scrape=%d, "
      "dup=%s, ttl=%.3g, grace=%.3g, jitter=%.3g, negttl=%.3g, "
      "coalesce=%d, proto=%s, burst=%zu, iouring=%d, policy=%s, "
      "replicas=%zu, svc=%.3gms, svcjitter=%.3g, skew=%s, degrade=%.3g, "
      "overload=%s, window=%zu, oeval=%.3g, crowd=%zu, ramp=%.3g, "
      "backoff=%.3g, arrivals=%s, rate=%.3g, seed=%llu, link=%s, %u cpus\n",
      clients, seconds, static_cast<unsigned long long>(keys), cache ? 1 : 0,
      timeout_ms, static_cast<unsigned long long>(stallpct), attempts,
      obs_on ? 1 : 0, scrape ? 1 : 0, dup_list.c_str(), knobs.ttl, knobs.grace,
      knobs.jitter, knobs.negttl, knobs.coalesce ? 1 : 0, proto_list.c_str(),
      burst, iouring ? 1 : 0, policy_list.c_str(), rk.replicas, rk.svc_ms,
      rk.svc_jitter, skew_list.c_str(), rk.degrade, overload_list.c_str(),
      window, oeval, crowd_mult, ramp, backoff, arrivals_list.c_str(), rate,
      static_cast<unsigned long long>(run_seed), link_spec.c_str(), cpus);
  std::printf("%-5s %-5s %-9s %-11s %-4s %-7s %-9s %-8s %10s %10s %9s %9s %9s %9s %10s %8s %8s %9s %9s %9s %7s\n",
              "proto", "dup", "policy", "overload", "skew", "shards", "channel",
              "accept", "requests", "req/s", "p50 ms", "p99 ms", "brk p50",
              "hit%", "dropped", "misses", "retries", "conns", "bkcalls",
              "coalesc", "slow%");

  bool conservation_ok = true;
  std::vector<RunResult> results;
  for (const ArrivalKnobs& ak : arrival_sweep) {
  for (const std::string& proto : protos) {
  for (double dup : dups) {
  knobs.dup = dup;
  for (core::BalancePolicy policy : policies) {
  rk.policy = policy;
  for (const OverloadKnobs& ok : overloads) {
  for (double skew : skews) {
  rk.skew = skew;
  for (size_t shards : sweep) {
    for (size_t mode : modes) {
      RunResult r = run_one(shards, mode != 0, clients, seconds, keys,
                            threshold, cache, fallback, timeout_ms, stallpct,
                            attempts, obs_on, scrape, knobs, proto, burst,
                            iouring, rk, ok, ak, lk_knobs);
      core::BrokerMetrics::ClassCounters total = r.metrics.total();
      std::printf("%-5s %-5.2f %-9.9s %-11.11s %-4.3g %-7zu %-9s %-8s %10llu %10.0f %9.3f %9.3f %9.3f %8.1f%% "
                  "%10llu %8llu %8llu %9llu %9llu %9llu %6.1f%%\n",
                  r.proto.c_str(), r.dup, r.policy.c_str(), r.overload.c_str(),
                  r.skew, r.shards,
                  r.pipelined ? "pipeline" : "stopwait",
                  r.kernel_accept_sharding ? "kernel" : "rrobin",
                  static_cast<unsigned long long>(r.requests), r.rps,
                  r.latency.percentile(0.5) * 1e3, r.latency.p99() * 1e3,
                  r.broker_total.p50 * 1e3, r.hit_ratio * 100.0,
                  static_cast<unsigned long long>(total.dropped),
                  static_cast<unsigned long long>(total.deadline_misses),
                  static_cast<unsigned long long>(total.retries),
                  static_cast<unsigned long long>(
                      r.metrics.transport.connections_opened),
                  static_cast<unsigned long long>(r.metrics.transport.calls),
                  static_cast<unsigned long long>(
                      r.metrics.flight.coalesced_waiters),
                  r.slow_share * 100.0);
      if (r.phased) {
        std::printf(
            "      phase pre  : %5.2fs %7llu replies %7llu good %8.1f good/s "
            "p99 %8.2f ms   thresh %.1f sheds %llu lifo %llu\n",
            r.pre.duration, static_cast<unsigned long long>(r.pre.replies),
            static_cast<unsigned long long>(r.pre.good), r.pre.goodput,
            r.pre.p99_ms, r.admission_threshold,
            static_cast<unsigned long long>(total.deadline_misses),
            static_cast<unsigned long long>(total.lifo_sheds));
        std::printf(
            "      phase crowd: %5.2fs %7llu replies %7llu good %8.1f good/s "
            "p99 %8.2f ms\n",
            r.crowd_phase.duration,
            static_cast<unsigned long long>(r.crowd_phase.replies),
            static_cast<unsigned long long>(r.crowd_phase.good),
            r.crowd_phase.goodput, r.crowd_phase.p99_ms);
      }
      if (r.open_loop) {
        std::printf(
            "      open-loop %s @ %.0f/s: scheduled %llu sent %llu "
            "queued-behind %llu maxlag %.1fms | p99 %.2fms corrected vs "
            "%.2fms uncorrected\n",
            r.arrivals.c_str(), r.offered_rate,
            static_cast<unsigned long long>(r.scheduled),
            static_cast<unsigned long long>(r.sent),
            static_cast<unsigned long long>(r.queued_behind),
            r.max_lag * 1e3, r.latency.p99() * 1e3,
            r.service_latency.p99() * 1e3);
      }
      if (check && r.open_loop) {
        // Open-loop honesty gates: every scheduled arrival was put on the
        // wire (an overloaded run queues behind, it never elides), and
        // correcting latency back to the intended send time can only raise
        // percentiles relative to the biased from-actual-send view.
        if (r.scheduled == 0 || r.sent != r.scheduled) {
          std::fprintf(stderr,
                       "open-loop omission check FAILED: scheduled %llu != "
                       "sent %llu (arrivals=%s shards=%zu pipeline=%zu)\n",
                       static_cast<unsigned long long>(r.scheduled),
                       static_cast<unsigned long long>(r.sent),
                       r.arrivals.c_str(), shards, mode);
          conservation_ok = false;
        }
        if (r.latency.p99() + 1e-9 < r.service_latency.p99()) {
          std::fprintf(stderr,
                       "open-loop correction check FAILED: corrected p99 "
                       "%.3fms below uncorrected %.3fms (arrivals=%s)\n",
                       r.latency.p99() * 1e3, r.service_latency.p99() * 1e3,
                       r.arrivals.c_str());
          conservation_ok = false;
        }
      }
      if (check && r.picks_total != r.metrics.transport.calls) {
        // Every balancer pick carries exactly one backend invoke (the
        // connection pool never saturates at these client counts), so the
        // per-replica pick counters must sum to the channel's call counter.
        std::fprintf(stderr,
                     "pick conservation FAILED: picks %llu != backend calls "
                     "%llu (policy=%s shards=%zu pipeline=%zu)\n",
                     static_cast<unsigned long long>(r.picks_total),
                     static_cast<unsigned long long>(r.metrics.transport.calls),
                     r.policy.c_str(), shards, mode);
        conservation_ok = false;
      }
      if (check && !conservation_holds(r)) {
        std::fprintf(stderr, "conservation violated: shards=%zu pipeline=%zu\n",
                     shards, mode);
        conservation_ok = false;
      }
      if (check && proto == "bin") {
        // The binary-ingress smoke gates: every client request arrived as a
        // frame, every reply left through the coalesced-flush path, and the
        // flush counters are live (flushed_responses > flushes is only
        // guaranteed with burst>1 pipelining, so gate on >= here).
        if (r.wire.frames_in != r.requests ||
            r.wire.flushed_responses < r.wire.frames_in ||
            r.wire.flushes == 0 ||
            r.wire.flushed_responses < r.wire.flushes) {
          std::fprintf(
              stderr,
              "binary wire check FAILED: frames_in=%llu requests=%llu "
              "flushes=%llu flushed_responses=%llu (shards=%zu pipeline=%zu)\n",
              static_cast<unsigned long long>(r.wire.frames_in),
              static_cast<unsigned long long>(r.requests),
              static_cast<unsigned long long>(r.wire.flushes),
              static_cast<unsigned long long>(r.wire.flushed_responses),
              shards, mode);
          conservation_ok = false;
        }
        if (burst > 1 && r.wire.flushed_responses <= r.wire.flushes) {
          std::fprintf(stderr,
                       "coalescing check FAILED: burst=%zu but flushed %llu "
                       "responses in %llu flushes (no batching)\n",
                       burst,
                       static_cast<unsigned long long>(r.wire.flushed_responses),
                       static_cast<unsigned long long>(r.wire.flushes));
          conservation_ok = false;
        }
      }
      if (check && knobs.dup > 0.0 && cache && knobs.coalesce) {
        // The point of the dup dimension: under hot-key repetition the
        // anti-stampede layer must keep backend work well below the client
        // request count, and concurrent identical misses must actually have
        // coalesced (not merely hit a still-fresh cache entry).
        if (r.metrics.transport.calls >= r.requests) {
          std::fprintf(stderr,
                       "stampede check FAILED: backend calls %llu >= client "
                       "requests %llu under dup=%.2f (shards=%zu pipeline=%zu)\n",
                       static_cast<unsigned long long>(r.metrics.transport.calls),
                       static_cast<unsigned long long>(r.requests), knobs.dup,
                       shards, mode);
          conservation_ok = false;
        }
        if (r.metrics.flight.coalesced_waiters == 0) {
          std::fprintf(stderr,
                       "stampede check FAILED: no misses coalesced under "
                       "dup=%.2f (shards=%zu pipeline=%zu)\n",
                       knobs.dup, shards, mode);
          conservation_ok = false;
        }
      }
      if (check && scrape) {
        // The admin plane must serve under load, and the broker-side total
        // latency (submit -> reply inside the daemon) must sit at or below
        // what clients time across the wire. Slack: histogram midpoint
        // error (1/64) plus scheduling noise on sub-millisecond runs.
        if (!r.admin_live || !r.scraped) {
          std::fprintf(stderr,
                       "admin scrape FAILED: healthz/metrics live=%d, "
                       "statusz parsed=%d (shards=%zu pipeline=%zu)\n",
                       r.admin_live ? 1 : 0, r.scraped ? 1 : 0, shards, mode);
          conservation_ok = false;
        } else if (obs_on && backoff == 0.0 &&
                   r.broker_total.p50 >
                       r.latency.percentile(0.5) * 1.05 + 0.0005) {
          // (backoff>0 voids the subset premise: the client folds busy
          // attempts into one logical latency sample while the broker still
          // times every wire request individually.)
          std::fprintf(stderr,
                       "broker-side p50 %.3fms exceeds client-side p50 "
                       "%.3fms (shards=%zu pipeline=%zu)\n",
                       r.broker_total.p50 * 1e3,
                       r.latency.percentile(0.5) * 1e3, shards, mode);
          conservation_ok = false;
        }
      }
      results.push_back(std::move(r));
    }
  }
  }
  }
  }
  }
  }
  }

  if (check && max_skew >= 4.0 && rk.replicas >= 2) {
    // The point of the policy dimension: at heavy skew the latency-aware
    // policies must route a smaller share of picks to the slow replica than
    // blind round-robin does, per matching sweep combination.
    for (const RunResult& rr_run : results) {
      if (rr_run.policy != "round-robin" || rr_run.skew < 4.0) continue;
      for (const RunResult& r : results) {
        if ((r.policy != "ewma" && r.policy != "p2c") ||
            r.arrivals != rr_run.arrivals || r.proto != rr_run.proto ||
            r.dup != rr_run.dup || r.skew != rr_run.skew ||
            r.shards != rr_run.shards || r.pipelined != rr_run.pipelined) {
          continue;
        }
        if (r.slow_share >= rr_run.slow_share) {
          std::fprintf(stderr,
                       "policy check FAILED: %s slow-replica share %.1f%% not "
                       "below round-robin's %.1f%% (skew=%.3g shards=%zu "
                       "pipeline=%d)\n",
                       r.policy.c_str(), r.slow_share * 100.0,
                       rr_run.slow_share * 100.0, r.skew, r.shards,
                       r.pipelined ? 1 : 0);
          conservation_ok = false;
        }
      }
    }
  }

  if (check && crowd_mult > 1) {
    // The point of the overload dimension: under the flash crowd the
    // feedback-driven controllers must deliver at least the static rule's
    // crowd-phase goodput, per matching sweep combination.
    for (const RunResult& base : results) {
      if (base.overload != "static") continue;
      for (const RunResult& r : results) {
        if (r.overload == "static" || r.arrivals != base.arrivals ||
            r.proto != base.proto || r.dup != base.dup ||
            r.policy != base.policy || r.skew != base.skew ||
            r.shards != base.shards || r.pipelined != base.pipelined) {
          continue;
        }
        if (r.crowd_phase.goodput < base.crowd_phase.goodput) {
          std::fprintf(stderr,
                       "overload check FAILED: %s crowd-phase goodput %.1f/s "
                       "below static's %.1f/s (shards=%zu pipeline=%d)\n",
                       r.overload.c_str(), r.crowd_phase.goodput,
                       base.crowd_phase.goodput, r.shards,
                       r.pipelined ? 1 : 0);
          conservation_ok = false;
        }
      }
    }
  }

  util::JsonWriter json;
  json.begin_object()
      .field("bench", "daemon_loadgen")
      .field("host_cpus", static_cast<uint64_t>(cpus))
      .field("clients", clients)
      .field("window_seconds", seconds)
      .field("keys", keys)
      .field("threshold", threshold)
      .field("cache", cache)
      .field("timeout_ms", static_cast<uint64_t>(timeout_ms))
      .field("stallpct", stallpct)
      .field("attempts", static_cast<uint64_t>(attempts))
      .field("obs", obs_on)
      .field("scrape", scrape)
      .field("cache_ttl", knobs.ttl)
      .field("swr_grace", knobs.grace)
      .field("ttl_jitter", knobs.jitter)
      .field("negative_ttl", knobs.negttl)
      .field("coalesce", knobs.coalesce)
      .field("burst", burst)
      .field("iouring", iouring)
      .field("replicas", static_cast<uint64_t>(rk.replicas))
      .field("svc_ms", rk.svc_ms)
      .field("svc_jitter", rk.svc_jitter)
      .field("degrade_after", rk.degrade)
      .field("dispatch_window", static_cast<uint64_t>(window))
      .field("overload_eval_interval", oeval)
      .field("crowd", static_cast<uint64_t>(crowd_mult))
      .field("ramp_seconds", ramp)
      .field("busy_backoff_ms", backoff)
      .field("arrivals", arrivals_list)
      .field("offered_rate", rate)
      .field("arrival_seed", run_seed)
      .field("bursty_duty", duty)
      .field("arrival_period", arr_period)
      .field("diurnal_floor", floor_frac)
      .field("link", link_spec)
      .key("runs")
      .begin_array();
  for (const RunResult& r : results) {
    core::BrokerMetrics::ClassCounters total = r.metrics.total();
    json.begin_object()
        .field("proto", r.proto)
        .field("dup", r.dup)
        .field("policy", r.policy)
        .field("overload", r.overload)
        .field("arrivals", r.arrivals)
        .field("link", r.link)
        .field("skew", r.skew)
        .field("replicas", static_cast<uint64_t>(r.replicas))
        .field("shards", r.shards)
        .field("pipelined", r.pipelined)
        .field("kernel_accept_sharding", r.kernel_accept_sharding)
        .field("requests", r.requests)
        .field("failures", r.failures)
        .field("seconds", r.seconds)
        .field("rps", r.rps)
        .field("latency_mean_ms", r.latency.mean() * 1e3)
        .field("latency_p50_ms", r.latency.percentile(0.5) * 1e3)
        .field("latency_p99_ms", r.latency.p99() * 1e3)
        .field("cache_hit_ratio", r.hit_ratio)
        .field("issued", total.issued)
        .field("forwarded", total.forwarded)
        .field("dropped", total.dropped)
        .field("cache_hits", total.cache_hits)
        .field("errors", total.errors)
        .field("deadline_misses", total.deadline_misses)
        .field("lifo_sheds", total.lifo_sheds)
        .field("admission_threshold", r.admission_threshold)
        .field("overload_mode", r.overload_mode)
        .field("overload_evals", r.metrics.overload.evals)
        .field("overload_increases", r.metrics.overload.increases)
        .field("overload_decreases", r.metrics.overload.decreases)
        .field("overload_enters", r.metrics.overload.enters)
        .field("overload_exits", r.metrics.overload.exits)
        .field("retries", total.retries)
        .field("cancellations", r.metrics.lifecycle.cancellations)
        .field("late_completions", r.metrics.lifecycle.late_completions)
        .field("ejections", r.metrics.lifecycle.ejections)
        .field("coalesced_waiters", r.metrics.flight.coalesced_waiters)
        .field("swr_hits", r.metrics.flight.swr_hits)
        .field("refreshes", r.metrics.flight.refreshes)
        .field("negative_hits", r.metrics.flight.negative_hits)
        .field("flight_promotions", r.metrics.flight.promotions)
        .field("backend_calls", r.metrics.transport.calls)
        .field("connections_opened", r.metrics.transport.connections_opened)
        .field("open_connections", r.metrics.transport.open_connections)
        .field("write_flushes", r.metrics.transport.flushes)
        .field("requests_written", r.metrics.transport.requests_written)
        .field("channel_rejections", r.metrics.transport.rejections)
        .field("channel_retries", r.metrics.transport.retries)
        .field("channel_timeouts", r.metrics.transport.timeouts)
        .field("channel_cancels", r.metrics.transport.cancels)
        .field("peak_pipeline_depth", r.metrics.transport.peak_in_flight)
        .field("frames_in", r.wire.frames_in)
        .field("legacy_in", r.wire.legacy_in)
        .field("http_in", r.wire.http_in)
        .field("fast_hits", r.wire.fast_hits)
        .field("wire_flushes", r.wire.flushes)
        .field("wire_flushed_responses", r.wire.flushed_responses)
        .field("picks_total", r.picks_total)
        .field("slow_replica_share", r.slow_share)
        .key("replica_picks")
        .begin_array();
    for (uint64_t p : r.replica_picks) json.value(p);
    json.end_array().key("replica_ewma_ms").begin_array();
    for (double e : r.replica_ewma_ms) json.value(e);
    json.end_array()
        .key("drop_ratio_per_class")
        .begin_array();
    for (int level = 1; level <= r.metrics.num_levels(); ++level) {
      json.value(r.metrics.at(level).drop_ratio());
    }
    json.end_array();
    if (r.open_loop) {
      // Schedule accounting plus the biased from-actual-send percentiles;
      // latency_p50_ms/latency_p99_ms above are the corrected numbers.
      json.field("open_loop", true)
          .field("offered_rate", r.offered_rate)
          .field("scheduled", r.scheduled)
          .field("sent", r.sent)
          .field("queued_behind", r.queued_behind)
          .field("max_send_lag_ms", r.max_lag * 1e3)
          .field("uncorrected_p50_ms", r.service_latency.percentile(0.5) * 1e3)
          .field("uncorrected_p99_ms", r.service_latency.p99() * 1e3);
    }
    if (r.link != "none") {
      json.field("proxy_max_delay_ms", r.proxy_max_delay * 1e3)
          .field("proxy_bytes_relayed", r.proxy_bytes);
    }
    if (r.phased) {
      // Flash-crowd phase split: pre = [0, ramp), crowd = [ramp, end).
      json.key("phases").begin_array();
      const PhaseStats* phases[2] = {&r.pre, &r.crowd_phase};
      const char* names[2] = {"pre", "crowd"};
      for (size_t i = 0; i < 2; ++i) {
        json.begin_object()
            .field("name", names[i])
            .field("seconds", phases[i]->duration)
            .field("replies", phases[i]->replies)
            .field("useful", phases[i]->useful)
            .field("good", phases[i]->good)
            .field("goodput_rps", phases[i]->goodput)
            .field("p99_ms", phases[i]->p99_ms)
            .end_object();
      }
      json.end_array();
    }
    if (r.scraped) {
      // Broker-side (submit -> reply inside the daemon) percentiles scraped
      // from /statusz, next to the client-side numbers above.
      json.key("broker")
          .begin_object()
          .field("count", r.broker_total.count)
          .field("p50_ms", r.broker_total.p50 * 1e3)
          .field("p95_ms", r.broker_total.p95 * 1e3)
          .field("p99_ms", r.broker_total.p99 * 1e3)
          .key("per_class")
          .begin_array();
      for (size_t i = 0; i < r.broker_class.size(); ++i) {
        json.begin_object()
            .field("class", static_cast<uint64_t>(i + 1))
            .field("count", r.broker_class[i].count)
            .field("p50_ms", r.broker_class[i].p50 * 1e3)
            .field("p95_ms", r.broker_class[i].p95 * 1e3)
            .field("p99_ms", r.broker_class[i].p99 * 1e3)
            .end_object();
      }
      json.end_array().end_object();
    }
    json.end_object();
  }
  json.end_array().end_object();

  if (!out.empty()) {
    if (json.write_file(out)) {
      std::printf("\nwrote %s\n", out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
  } else {
    std::printf("%s\n", json.str().c_str());
  }
  if (check) {
    if (!conservation_ok) {
      std::fprintf(stderr, "conservation check FAILED\n");
      return 1;
    }
    std::printf("conservation check passed for %zu runs\n", results.size());
  }
  return 0;
}
