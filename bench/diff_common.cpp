#include "diff_common.h"

#include <functional>

namespace sbroker::bench {
namespace {

struct Testbed {
  sim::Simulation sim;
  std::vector<std::shared_ptr<srv::SimCgiBackend>> backends;
  std::vector<std::unique_ptr<srv::BrokerHost>> hosts;  // broker mode only
  uint64_t next_request_id = 1;
};

core::BrokerConfig broker_config(const DiffConfig& config) {
  core::BrokerConfig cfg;
  cfg.rules = core::QosRules{3, config.threshold};
  cfg.enable_cache = false;       // the paper's differentiation run is uncached
  cfg.serve_stale_on_drop = false;
  cfg.pool = core::PoolConfig{4, 64, true};
  return cfg;
}

}  // namespace

DiffResult run_differentiation(const DiffConfig& config) {
  Testbed bed;

  for (int stage = 1; stage <= 3; ++stage) {
    srv::CgiBackendConfig backend_cfg;
    backend_cfg.processing_time = static_cast<double>(stage);
    backend_cfg.capacity = config.backend_capacity;
    backend_cfg.link_seed = config.seed + static_cast<uint64_t>(stage) * 10;
    bed.backends.push_back(std::make_shared<srv::SimCgiBackend>(
        bed.sim, "backend" + std::to_string(stage), backend_cfg));
    if (config.use_broker) {
      auto host = std::make_unique<srv::BrokerHost>(
          bed.sim, "broker" + std::to_string(stage), broker_config(config),
          sim::ipc_profile(), config.seed + static_cast<uint64_t>(stage) * 100);
      host->broker().add_backend(bed.backends.back());
      bed.hosts.push_back(std::move(host));
    }
  }

  // Per-class stage completion counters for the fidelity proxy.
  std::array<uint64_t, 3> stages_served{};
  std::array<uint64_t, 3> requests_started{};

  // One request = stage 1 -> 2 -> 3, early-terminated on a drop.
  std::function<void(int, int, std::function<void()>)> run_stage =
      [&](int qos_level, int stage, std::function<void()> done) {
        if (stage > 3) {
          done();
          return;
        }
        if (config.use_broker) {
          http::BrokerRequest req;
          req.request_id = bed.next_request_id++;
          req.qos_level = static_cast<uint8_t>(qos_level);
          req.service = "backend" + std::to_string(stage);
          req.payload = "/stage" + std::to_string(stage);
          bed.hosts[static_cast<size_t>(stage) - 1]->submit(
              req, [&, qos_level, stage, done](const http::BrokerReply& reply) {
                if (reply.fidelity == http::Fidelity::kFull) {
                  stages_served[static_cast<size_t>(qos_level) - 1] += 1;
                  run_stage(qos_level, stage + 1, done);
                } else {
                  done();  // low-fidelity answer: request ends here
                }
              });
        } else {
          // API model: direct access, fresh connection per call, FCFS queue.
          bed.backends[static_cast<size_t>(stage) - 1]->invoke(
              {"/stage" + std::to_string(stage), true},
              [&, qos_level, stage, done](double, bool ok, const std::string&) {
                if (ok) stages_served[static_cast<size_t>(qos_level) - 1] += 1;
                run_stage(qos_level, stage + 1, done);
              });
        }
      };

  std::vector<std::unique_ptr<wl::WebStoneClients>> populations;
  int per_class = config.total_clients / 3;
  int remainder = config.total_clients % 3;
  for (int level = 1; level <= 3; ++level) {
    wl::WebStoneConfig wcfg;
    // Distribute the remainder to the lowest classes first (deterministic).
    wcfg.clients = static_cast<size_t>(per_class + (level <= remainder ? 1 : 0));
    wcfg.qos_level = level;
    wcfg.duration = config.duration;
    wcfg.rng_seed = config.seed + static_cast<uint64_t>(level);
    double half_overhead = config.client_overhead / 2;
    populations.push_back(std::make_unique<wl::WebStoneClients>(
        bed.sim, wcfg, [&, level, half_overhead](int, std::function<void()> done) {
          requests_started[static_cast<size_t>(level) - 1] += 1;
          // Client -> front-end leg, the stages, then the return leg.
          bed.sim.after(half_overhead, [&, level, half_overhead,
                                        done = std::move(done)]() mutable {
            run_stage(level, 1, [&, half_overhead, done = std::move(done)]() {
              bed.sim.after(half_overhead, std::move(done));
            });
          });
        }));
  }
  for (auto& p : populations) p->start();
  bed.sim.run();

  DiffResult result;
  util::Summary all_times;
  for (int level = 1; level <= 3; ++level) {
    const auto& pop = *populations[static_cast<size_t>(level) - 1];
    ClassResult& cr = result.per_class[static_cast<size_t>(level) - 1];
    cr.completed = pop.completed();
    cr.mean_processing_time = pop.response_times().mean();
    uint64_t started = requests_started[static_cast<size_t>(level) - 1];
    cr.mean_stages =
        started == 0 ? 0
                     : static_cast<double>(stages_served[static_cast<size_t>(level) - 1]) /
                           static_cast<double>(started);
    all_times.merge(pop.response_times().summary());
  }
  result.mean_processing_time_all = all_times.mean();

  if (config.use_broker) {
    for (size_t b = 0; b < 3; ++b) {
      const core::BrokerMetrics& metrics = bed.hosts[b]->broker().metrics();
      for (int level = 1; level <= 3; ++level) {
        result.drop_ratio[b][static_cast<size_t>(level) - 1] =
            metrics.at(level).drop_ratio();
        result.issued[b][static_cast<size_t>(level) - 1] = metrics.at(level).issued;
      }
    }
  }
  return result;
}

}  // namespace sbroker::bench
