// Shared harness for the service-differentiation experiment (paper
// Section V-B, Figure 8 testbed).
//
// Topology: a front-end Web server fans each client request through three
// sequential stages; stage i is served by backend server i (a CGI service
// with fixed processing time of i seconds, MaxClients = 5). In broker mode
// each stage goes through its own service broker (distributed model,
// UDP-grade IPC, threshold 20 outstanding, binary forward/drop by QoS
// class); a drop answers the request immediately with a low-fidelity reply
// and the remaining stages are skipped ("they are informed promptly without
// any backend service"). In API mode the stages hit the backends directly,
// FCFS, reconnecting per access.
//
// Three WebStone-style closed-loop client populations run at QoS levels 1,
// 2 and 3 for a fixed virtual-time window. Everything is deterministic
// given the seed.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "srv/broker_host.h"
#include "srv/cgi_backend.h"
#include "wl/webstone_client.h"

namespace sbroker::bench {

struct DiffConfig {
  int total_clients = 30;        ///< split evenly across the 3 QoS classes
  double duration = 300.0;       ///< measurement window (virtual seconds)
  double threshold = 20.0;       ///< broker outstanding threshold
  size_t backend_capacity = 5;   ///< MaxClients per backend
  bool use_broker = true;        ///< false = API-based baseline
  /// Client <-> front-end round trip + front-end handling per request. This
  /// bounds how fast a best-effort client can re-issue after a prompt
  /// low-fidelity reply (WebStone still crossed the LAN and the Web server).
  double client_overhead = 0.5;
  uint64_t seed = 1234;
};

struct ClassResult {
  uint64_t completed = 0;          ///< requests finished in the window
  double mean_processing_time = 0; ///< client-observed seconds
  double mean_stages = 0;          ///< fidelity proxy: stages served (0..3)
};

struct DiffResult {
  std::array<ClassResult, 3> per_class;   // index 0 -> QoS 1
  // drop_ratio[broker][class]: drops/issued at each broker (broker mode).
  std::array<std::array<double, 3>, 3> drop_ratio{};
  // issued[broker][class]: messages that reached each broker. Zero means the
  // class was fully shed upstream (its requests terminated at an earlier
  // stage), so the matching drop_ratio carries no information.
  std::array<std::array<uint64_t, 3>, 3> issued{};
  double mean_processing_time_all = 0;
};

/// Runs the experiment to completion and returns the aggregate results.
DiffResult run_differentiation(const DiffConfig& config);

}  // namespace sbroker::bench
