// Figure 10 — Average processing time for each QoS level.
//
// Same testbed as Figure 9, broken out per class, with the API baseline as
// the fourth series. Expected shape: higher QoS class => longer processing
// time (higher fidelity — more stages actually served); every broker curve
// rises with load then declines once that class too gets shed; the ordering
// QoS3 > QoS2 > QoS1 holds throughout.
//
// Usage: fig10_qos_classes [duration=300]
#include <cstdio>

#include "diff_common.h"
#include "util/config.h"
#include "util/table_printer.h"

using namespace sbroker;

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 150.0);

  std::printf("Figure 10 — mean processing time (s) per QoS class vs number of clients\n\n");
  util::TablePrinter table(
      {"clients", "qos1_s", "qos2_s", "qos3_s", "api_s", "stages1", "stages2", "stages3"});
  for (int clients : {10, 15, 20, 30, 40, 50, 60, 70}) {
    bench::DiffConfig broker_cfg;
    broker_cfg.total_clients = clients;
    broker_cfg.duration = duration;
    bench::DiffResult broker = bench::run_differentiation(broker_cfg);

    bench::DiffConfig api_cfg = broker_cfg;
    api_cfg.use_broker = false;
    bench::DiffResult api = bench::run_differentiation(api_cfg);

    table.add_row(
        {std::to_string(clients),
         util::TablePrinter::fmt(broker.per_class[0].mean_processing_time, 2),
         util::TablePrinter::fmt(broker.per_class[1].mean_processing_time, 2),
         util::TablePrinter::fmt(broker.per_class[2].mean_processing_time, 2),
         util::TablePrinter::fmt(api.mean_processing_time_all, 2),
         util::TablePrinter::fmt(broker.per_class[0].mean_stages, 2),
         util::TablePrinter::fmt(broker.per_class[1].mean_stages, 2),
         util::TablePrinter::fmt(broker.per_class[2].mean_stages, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected paper shape: qos3 >= qos2 >= qos1 (fidelity ordering); each\n"
              "broker curve rises then declines; 'stagesN' confirms fidelity ordering.\n");
  return 0;
}
