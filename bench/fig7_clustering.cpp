// Figure 7 — Request Clustering experimental results.
//
// Paper testbed (Figure 6): ab drives 40 simultaneous requests at a
// front-end Web application; each request triggers one database query
// against a 42,000-record table behind a backend Web server that accepts at
// most 5 simultaneous requests. The service broker clusters a configurable
// number of requests ("degree of clustering") into one backend access whose
// script repeats the workload once per member.
//
// Expected shape: average response time first *declines* with the degree
// (fewer simultaneous backend accesses -> less queueing behind the 5-worker
// cap, and the per-access overhead is amortized), then *rises* once batches
// serialize work a single worker must grind through while others idle. The
// paper's minimum sits near degree ~5-10 for this topology.
//
// Usage: fig7_clustering [requests=400] [concurrency=40] [records=42000]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "util/table_printer.h"
#include "wl/ab_client.h"
#include "wl/query_gen.h"

using namespace sbroker;

namespace {

struct RunResult {
  double mean_ms = 0;
  double p90_ms = 0;
  uint64_t backend_calls = 0;
};

RunResult run_once(size_t degree, uint64_t total_requests, size_t concurrency,
                   uint64_t records) {
  sim::Simulation sim;
  db::Database db;
  util::Rng rng(42);
  db::load_benchmark_table(db, rng, records, 100);

  srv::DbBackendConfig backend_cfg;
  backend_cfg.capacity = 5;                 // paper: at most 5 simultaneous
  backend_cfg.connection_setup = 0.015;     // TCP + HTTP + DB handshake
  // Per-access overhead dominates small queries: CGI spawn + parse + plan.
  backend_cfg.cost.fixed_seconds = 0.025;
  backend_cfg.cost.per_repeat_seconds = 0.010;  // the script's workload body
  auto backend = std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 1e9};  // no admission drops here
  broker_cfg.enable_cache = false;            // isolate the clustering effect
  broker_cfg.cluster = core::ClusterConfig{degree, 0.030};
  srv::BrokerHost host(sim, "db-broker", broker_cfg);
  host.broker().add_backend(backend);

  wl::QueryGenerator gen(records);
  util::Rng query_rng(7);
  wl::AbClient client(sim, wl::AbConfig{concurrency, total_requests},
                      [&](uint64_t seq, std::function<void()> done) {
                        http::BrokerRequest req;
                        req.request_id = seq + 1;
                        req.qos_level = 3;
                        req.service = "db";
                        req.payload = gen.next_point_query(query_rng);
                        host.submit(req, [done](const http::BrokerReply&) { done(); });
                      });
  client.start();
  sim.run();

  RunResult result;
  result.mean_ms = client.response_times().mean() * 1000.0;
  result.p90_ms = client.response_times().p90() * 1000.0;
  result.backend_calls = backend->calls();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  uint64_t total = static_cast<uint64_t>(cfg.get_int("requests", 400));
  size_t concurrency = static_cast<size_t>(cfg.get_int("concurrency", 40));
  uint64_t records = static_cast<uint64_t>(cfg.get_int("records", 42000));

  std::printf("Figure 7 — request clustering: avg response time vs degree of clustering\n");
  std::printf("(%zu simultaneous requests, %llu total, backend capacity 5, %llu-record table)\n\n",
              concurrency, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(records));

  util::TablePrinter table(
      {"degree", "mean_ms", "p90_ms", "backend_calls"});
  for (size_t degree : {1u, 2u, 4u, 5u, 8u, 10u, 20u, 40u}) {
    RunResult r = run_once(degree, total, concurrency, records);
    table.add_row({std::to_string(degree), util::TablePrinter::fmt(r.mean_ms, 1),
                   util::TablePrinter::fmt(r.p90_ms, 1),
                   std::to_string(r.backend_calls)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected paper shape: U-curve — decline while clustering relieves the\n"
              "5-worker queue, rise once serialized batch work dominates.\n");
  return 0;
}
