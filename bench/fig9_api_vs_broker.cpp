// Figure 9 — Processing time of API- and service-broker-based settings.
//
// Differentiation testbed (Figure 8): 3 brokers -> 3 CGI backends with
// 1/2/3 s bounded processing time, MaxClients 5, broker threshold 20.
// WebStone-style closed-loop clients at QoS levels 1..3.
//
// Expected shape: API-based processing time grows ~linearly with the number
// of clients (pure FCFS queueing, nothing is shed); broker-based time rises
// while admission can absorb the load, then *declines* as ever more requests
// are answered promptly with low-fidelity drops.
//
// Usage: fig9_api_vs_broker [duration=300]
#include <cstdio>

#include "diff_common.h"
#include "util/config.h"
#include "util/table_printer.h"

using namespace sbroker;

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 150.0);

  std::printf("Figure 9 — mean processing time (s) vs number of clients\n\n");
  util::TablePrinter table({"clients", "api_s", "broker_s"});
  for (int clients : {10, 15, 20, 30, 40, 50, 60, 70}) {
    bench::DiffConfig base;
    base.total_clients = clients;
    base.duration = duration;

    bench::DiffConfig api = base;
    api.use_broker = false;
    bench::DiffResult api_result = bench::run_differentiation(api);

    bench::DiffConfig broker = base;
    broker.use_broker = true;
    bench::DiffResult broker_result = bench::run_differentiation(broker);

    table.add_row({std::to_string(clients),
                   util::TablePrinter::fmt(api_result.mean_processing_time_all, 2),
                   util::TablePrinter::fmt(broker_result.mean_processing_time_all, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected paper shape: API column ~linear in clients; broker column\n"
              "rises then declines once low-priority drops dominate.\n");
  return 0;
}
