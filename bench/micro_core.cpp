// Microbenchmarks — broker core data-path operations.
#include <benchmark/benchmark.h>

#include "core/admission.h"
#include "core/cache.h"
#include "core/cluster.h"
#include "core/scheduler.h"
#include "http/parser.h"
#include "http/wire.h"

using namespace sbroker;

namespace {

void BM_CacheGetHit(benchmark::State& state) {
  core::ResultCache cache(4096, 0.0);
  for (int i = 0; i < 1024; ++i) {
    cache.put("key-" + std::to_string(i), "value-" + std::to_string(i), 0.0);
  }
  int i = 0;
  for (auto _ : state) {
    auto v = cache.get("key-" + std::to_string(i++ % 1024), 1.0);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CacheGetHit);

void BM_CachePutEvicting(benchmark::State& state) {
  core::ResultCache cache(256, 0.0);
  int i = 0;
  for (auto _ : state) {
    cache.put("key-" + std::to_string(i++ % 4096), "value", 0.0);
  }
}
BENCHMARK(BM_CachePutEvicting);

void BM_SchedulerPushPop(benchmark::State& state) {
  core::QosScheduler<int> scheduler;
  int level = 0;
  for (auto _ : state) {
    scheduler.push(1 + (level++ % 3), 42);
    benchmark::DoNotOptimize(scheduler.pop());
  }
}
BENCHMARK(BM_SchedulerPushPop);

void BM_AdmissionDecide(benchmark::State& state) {
  core::AdmissionController ctl(core::QosRules{3, 20.0});
  double load = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.decide(2, load, 0.0));
    load = load > 25 ? 0 : load + 0.1;
  }
}
BENCHMARK(BM_AdmissionDecide);

void BM_WireEncodeDecodeRequest(benchmark::State& state) {
  http::BrokerRequest req;
  req.request_id = 1;
  req.qos_level = 2;
  req.service = "db";
  req.payload = "SELECT * FROM records WHERE id = 123456";
  for (auto _ : state) {
    std::string bytes = http::encode(req);
    benchmark::DoNotOptimize(http::decode_request(bytes));
  }
}
BENCHMARK(BM_WireEncodeDecodeRequest);

void BM_HttpParseRequest(benchmark::State& state) {
  std::string wire =
      "GET /app/movie?id=42 HTTP/1.1\r\nHost: front\r\nX-QoS-Level: 2\r\n"
      "Content-Length: 11\r\n\r\nhello world";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::parse_request(wire));
  }
}
BENCHMARK(BM_HttpParseRequest);

void BM_ClusterAddFlush(benchmark::State& state) {
  size_t degree = static_cast<size_t>(state.range(0));
  core::ClusterEngine engine(core::ClusterConfig{degree, 1e9});
  uint64_t id = 0;
  for (auto _ : state) {
    auto batch = engine.add(id++, "SELECT * FROM records WHERE id = 1", 0.0);
    benchmark::DoNotOptimize(batch);
  }
}
BENCHMARK(BM_ClusterAddFlush)->Arg(1)->Arg(8)->Arg(40);

void BM_ClusterSplitReply(benchmark::State& state) {
  size_t parts = static_cast<size_t>(state.range(0));
  core::Batch batch;
  std::vector<std::string> payloads;
  for (size_t i = 0; i < parts; ++i) {
    batch.member_ids.push_back(i);
    payloads.push_back("result chunk " + std::to_string(i));
  }
  std::string reply = core::ClusterEngine::join_payloads(payloads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClusterEngine::split_reply(batch, reply));
  }
}
BENCHMARK(BM_ClusterSplitReply)->Arg(8)->Arg(40);

}  // namespace
