// Microbenchmarks — broker core data-path operations.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/admission.h"
#include "core/arena.h"
#include "core/balance.h"
#include "core/cache.h"
#include "core/request.h"
#include "core/cluster.h"
#include "core/scheduler.h"
#include "core/striped_cache.h"
#include "http/parser.h"
#include "http/wire.h"
#include "net/frame.h"

using namespace sbroker;

namespace {

// Keys are pre-generated outside the timed loops: building
// "key-" + std::to_string(i) inside them measured the allocator and
// integer formatting, not the cache.
std::vector<std::string> make_keys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back("key-" + std::to_string(i));
  return keys;
}

void BM_CacheGetHit(benchmark::State& state) {
  core::ResultCache cache(4096, 0.0);
  std::vector<std::string> keys = make_keys(1024);
  for (size_t i = 0; i < keys.size(); ++i) {
    cache.put(keys[i], "value-" + std::to_string(i), 0.0);
  }
  size_t i = 0;
  for (auto _ : state) {
    auto v = cache.get(keys[i++ % keys.size()], 1.0);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CacheGetHit);

void BM_CacheGetHitStringView(benchmark::State& state) {
  // The broker probes with the request payload it already holds — the
  // transparent-lookup path must not allocate a temporary key.
  core::ResultCache cache(4096, 0.0);
  std::vector<std::string> keys = make_keys(1024);
  for (const std::string& k : keys) cache.put(k, "value", 0.0);
  std::vector<std::string_view> views(keys.begin(), keys.end());
  size_t i = 0;
  for (auto _ : state) {
    auto v = cache.get(views[i++ % views.size()], 1.0);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CacheGetHitStringView);

void BM_CachePutEvicting(benchmark::State& state) {
  core::ResultCache cache(256, 0.0);
  std::vector<std::string> keys = make_keys(4096);
  size_t i = 0;
  for (auto _ : state) {
    cache.put(keys[i++ % keys.size()], "value", 0.0);
  }
}
BENCHMARK(BM_CachePutEvicting);

void BM_StripedCacheGetHit(benchmark::State& state) {
  // Shared across shard threads; google-benchmark's ->Threads(N) exercises
  // the stripe locks under contention. Magic statics make initialization
  // thread-safe; the instances live for the whole process.
  static const std::vector<std::string>& keys = *new std::vector<std::string>(make_keys(1024));
  static core::StripedResultCache& cache = *[] {
    auto* c = new core::StripedResultCache(4096, 0.0, 8);
    for (const std::string& k : keys) c->put(k, "value", 0.0);
    return c;
  }();
  size_t i = static_cast<size_t>(state.thread_index()) * 37;
  for (auto _ : state) {
    auto v = cache.get(keys[i++ % keys.size()], 1.0);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_StripedCacheGetHit)->Threads(1)->Threads(4);

// pick() sits on the dispatch hot path (once per batch, plus once per retry
// and background fetch); it must stay an allocation-free index scan for
// every policy. Arg(0..5) selects the BalancePolicy enum value; 8 replicas
// with warmed EWMA state and a standing avoid hint exercise the worst-case
// scan.
void BM_BalancerPick(benchmark::State& state) {
  auto policy = static_cast<core::BalancePolicy>(state.range(0));
  core::LoadBalancer lb(policy, util::Rng(17));
  for (int i = 0; i < 8; ++i) lb.add_backend(1.0 + i % 3);
  double now = 0.0;
  for (size_t i = 0; i < 8; ++i) {
    auto b = lb.pick(now);
    lb.report(*b, true, now, 0.001 * static_cast<double>(i + 1));
    lb.complete(*b);
  }
  for (auto _ : state) {
    now += 1e-4;
    auto b = lb.pick(now, /*avoid=*/3);
    benchmark::DoNotOptimize(b);
    lb.report(*b, true, now, 0.002);
    lb.complete(*b);
  }
}
BENCHMARK(BM_BalancerPick)
    ->Arg(static_cast<int>(core::BalancePolicy::kRandom))
    ->Arg(static_cast<int>(core::BalancePolicy::kRoundRobin))
    ->Arg(static_cast<int>(core::BalancePolicy::kLeastOutstanding))
    ->Arg(static_cast<int>(core::BalancePolicy::kWeighted))
    ->Arg(static_cast<int>(core::BalancePolicy::kEwma))
    ->Arg(static_cast<int>(core::BalancePolicy::kP2c));

void BM_SchedulerPushPop(benchmark::State& state) {
  core::QosScheduler<int> scheduler;
  int level = 0;
  for (auto _ : state) {
    scheduler.push(1 + (level++ % 3), 42);
    benchmark::DoNotOptimize(scheduler.pop());
  }
}
BENCHMARK(BM_SchedulerPushPop);

void BM_AdmissionDecide(benchmark::State& state) {
  core::AdmissionController ctl(core::QosRules{3, 20.0});
  double load = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctl.decide(2, load, 0.0));
    load = load > 25 ? 0 : load + 0.1;
  }
}
BENCHMARK(BM_AdmissionDecide);

void BM_WireEncodeDecodeRequest(benchmark::State& state) {
  http::BrokerRequest req;
  req.request_id = 1;
  req.qos_level = 2;
  req.service = "db";
  req.payload = "SELECT * FROM records WHERE id = 123456";
  for (auto _ : state) {
    std::string bytes = http::encode(req);
    benchmark::DoNotOptimize(http::decode_request(bytes));
  }
}
BENCHMARK(BM_WireEncodeDecodeRequest);

void BM_HttpParseRequest(benchmark::State& state) {
  std::string wire =
      "GET /app/movie?id=42 HTTP/1.1\r\nHost: front\r\nX-QoS-Level: 2\r\n"
      "Content-Length: 11\r\n\r\nhello world";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::parse_request(wire));
  }
}
BENCHMARK(BM_HttpParseRequest);

void BM_ClusterAddFlush(benchmark::State& state) {
  size_t degree = static_cast<size_t>(state.range(0));
  core::ClusterEngine engine(core::ClusterConfig{degree, 1e9});
  uint64_t id = 0;
  for (auto _ : state) {
    auto batch = engine.add(id++, "SELECT * FROM records WHERE id = 1", 0.0);
    benchmark::DoNotOptimize(batch);
  }
}
BENCHMARK(BM_ClusterAddFlush)->Arg(1)->Arg(8)->Arg(40);

void BM_ClusterSplitReply(benchmark::State& state) {
  size_t parts = static_cast<size_t>(state.range(0));
  core::Batch batch;
  std::vector<std::string> payloads;
  for (size_t i = 0; i < parts; ++i) {
    batch.member_ids.push_back(i);
    payloads.push_back("result chunk " + std::to_string(i));
  }
  std::string reply = core::ClusterEngine::join_payloads(payloads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClusterEngine::split_reply(batch, reply));
  }
}
BENCHMARK(BM_ClusterSplitReply)->Arg(8)->Arg(40);

// The legacy comparison point for BM_FrameEncodeDecodeRequest below is
// BM_WireEncodeDecodeRequest: same request shape through the SBRK codec.
void BM_FrameEncodeDecodeRequest(benchmark::State& state) {
  net::frame::Request req{1, 2, 0, "SELECT * FROM records WHERE id = 123456"};
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    net::frame::encode_request(req, bytes);
    net::frame::Request decoded;
    size_t consumed = 0;
    benchmark::DoNotOptimize(net::frame::parse_request(bytes, decoded, &consumed));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_FrameEncodeDecodeRequest);

void BM_FrameEncodeReply(benchmark::State& state) {
  std::string payload(256, 'x');
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    net::frame::encode_reply(7, http::Fidelity::kCached,
                             net::frame::kFlagCacheServed, payload, bytes);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_FrameEncodeReply);

// Arena bump allocation vs the strings the request path used to build: the
// steady state (first block retained across reset) must be a pointer bump.
void BM_ArenaStoreReset(benchmark::State& state) {
  core::Arena arena;
  std::string value(static_cast<size_t>(state.range(0)), 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.store(value));
    arena.reset();
  }
}
BENCHMARK(BM_ArenaStoreReset)->Arg(64)->Arg(512)->Arg(4096);

void BM_ArenaCreateContext(benchmark::State& state) {
  core::ArenaPool pool;
  for (auto _ : state) {
    auto arena = pool.acquire();
    auto* ctx = arena->create<core::RequestContext>();
    ctx->payload = arena->store("/object-123456");
    benchmark::DoNotOptimize(ctx);
    ctx->~RequestContext();
    pool.release(std::move(arena));
  }
}
BENCHMARK(BM_ArenaCreateContext);

}  // namespace
