// Microbenchmarks — mini database engine on the paper's 42,000-record table.
#include <benchmark/benchmark.h>

#include "db/dataset.h"
#include "db/executor.h"
#include "db/parser.h"
#include "util/rng.h"

using namespace sbroker;

namespace {

db::Database& benchmark_db() {
  static db::Database* db = [] {
    auto* d = new db::Database();
    util::Rng rng(1);
    db::load_benchmark_table(*d, rng, 42000, 100);
    return d;
  }();
  return *db;
}

void BM_ParseSelect(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::parse_select(
        "SELECT id, score FROM records WHERE category = 7 AND score >= 0.25 LIMIT 50"));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_PointLookupIndexed(benchmark::State& state) {
  db::Database& db = benchmark_db();
  util::Rng rng(2);
  for (auto _ : state) {
    int64_t id = rng.uniform_int(0, 41999);
    auto rs = db::execute_sql(db, "SELECT * FROM records WHERE id = " + std::to_string(id));
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_PointLookupIndexed);

void BM_CategoryRangeIndexed(benchmark::State& state) {
  db::Database& db = benchmark_db();
  util::Rng rng(3);
  for (auto _ : state) {
    int64_t c = rng.uniform_int(0, 99);
    auto rs = db::execute_sql(
        db, "SELECT id FROM records WHERE category = " + std::to_string(c) + " LIMIT 100");
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_CategoryRangeIndexed);

void BM_FullScanFilter(benchmark::State& state) {
  db::Database& db = benchmark_db();
  for (auto _ : state) {
    auto rs = db::execute_sql(db, "SELECT id FROM records WHERE score < 0.001");
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_FullScanFilter);

void BM_RepeatBatch(benchmark::State& state) {
  db::Database& db = benchmark_db();
  uint64_t k = static_cast<uint64_t>(state.range(0));
  std::string sql = "SELECT * FROM records WHERE id = 777 REPEAT " + std::to_string(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::execute_sql(db, sql));
  }
}
BENCHMARK(BM_RepeatBatch)->Arg(1)->Arg(8)->Arg(40);

}  // namespace
