#!/bin/sh
# Perf trajectory runner: regenerates BENCH_core.json (micro benches) and
# BENCH_daemon.json (real-socket sharded daemon loadgen) at the repo root so
# every PR can be compared against its predecessors.
#
#   bench/run_bench.sh [build-dir]           # default build dir: ./build
#
# Environment knobs for the loadgen sweep:
#   BENCH_SHARDS   comma list of shard counts   (default 1,2,4)
#   BENCH_PIPELINE backend channel modes        (default 0,1)
#   BENCH_CLIENTS  concurrent connections       (default 64)
#   BENCH_SECONDS  seconds per run              (default 2)
#   BENCH_KEYS     distinct request targets     (default 512)
#   BENCH_CACHE    result cache on/off          (default 1; paired with the
#                  50ms BENCH_TTL below most requests still exercise the
#                  broker->backend channel, while the dup sweep can show the
#                  anti-stampede layer collapsing hot-key miss storms.
#                  Set BENCH_CACHE=0 BENCH_DUP=0 for the pure channel sweep.)
#   BENCH_TIMEOUT_MS per-request deadline in ms (default 0 = no deadline)
#   BENCH_STALLPCT  percent of keys routed to a never-replying backend
#                  (default 0; requires BENCH_TIMEOUT_MS > 0)
#   BENCH_ATTEMPTS  per-request attempt budget  (default 1 = no retries)
#   BENCH_DUP      comma list of hot-key duplicate fractions swept per
#                  shard/channel combination; dup=0.8 routes 80% of requests
#                  to one key so its misses collide and the single-flight
#                  layer must collapse them     (default "0,0.8")
#   BENCH_TTL      result-cache TTL seconds     (default 0.05, so the hot
#                  key re-expires ~40x per 2s window and every expiry is a
#                  potential stampede)
#   BENCH_GRACE    stale-while-revalidate grace window seconds (default 0.025)
#   BENCH_JITTER   fractional per-key TTL jitter (default 0.1)
#   BENCH_NEGTTL   negative-cache TTL seconds   (default 0 = off; no backend
#                  errors in this harness anyway)
#   BENCH_COALESCE single-flight miss coalescing on/off (default 1; 0 is the
#                  A/B ablation arm for the stampede experiment)
#   BENCH_OBS      broker histograms + flight recorder on/off (default 1;
#                  0 measures the compiled-in-but-idle overhead baseline)
#   BENCH_SCRAPE   scrape the admin plane (/metrics mid-run, /statusz after
#                  each run) so broker-side p50/p95/p99 per QoS class land
#                  in BENCH_daemon.json next to the client-side numbers
#                  (default 1)
#   BENCH_PROTO    comma list of client protocols swept per combination:
#                  wire (legacy SBRK codec), bin (binary frames + arena fast
#                  path), http (HTTP/1.1 keep-alive on the same sniffed
#                  port). Comparing proto=bin against proto=http at dup=0 is
#                  the wire-framing speedup headline (default "wire,http,bin")
#   BENCH_BURST    frames pipelined per send, proto=bin only (default 1)
#   BENCH_IOURING  opt shard reactors into io_uring submission (default 0;
#                  needs -DSBROKER_IOURING=ON, silently falls back to epoll)
#
# Replica-selection sweep knobs (the second loadgen invocation below; its
# runs land in BENCH_daemon.json under "policy_runs"):
#   BENCH_POLICY   comma list of balancer policies    (default
#                  "round-robin,least-outstanding,ewma,p2c")
#   BENCH_REPLICAS backend replicas in the fake pool  (default 3)
#   BENCH_SVC      per-request service time, ms       (default 2)
#   BENCH_SKEW     comma list of slow-replica service-time multipliers; the
#                  last replica serves svc*skew ms    (default "1,6")
#   BENCH_DEGRADE  seconds into each run before the skew kicks in (default 0)
#   BENCH_POLICY_SWEEP set to 0 to skip the policy sweep entirely
#
# Flash-crowd overload sweep knobs (the third loadgen invocation below; its
# runs land in BENCH_daemon.json under "overload"): one serial replica at
# BENCH_OVERLOAD_SVC ms per request, clients stepping x BENCH_CROWD at
# t=BENCH_RAMP, per-phase goodput/drop/p99 per overload-control spec.
#   BENCH_OVERLOAD       comma list of specs  (default "static,aimd,aimd+lifo")
#   BENCH_CROWD          flash-crowd client multiplier      (default 10)
#   BENCH_RAMP           seconds before the crowd joins     (default 0.4)
#   BENCH_OVERLOAD_SECONDS  window per overload run         (default 2.4)
#   BENCH_OVERLOAD_CLIENTS  pre-crowd client count          (default 6)
#   BENCH_OVERLOAD_SVC   service time ms at the one replica (default 10)
#   BENCH_OVERLOAD_TIMEOUT_MS  client deadline              (default 150)
#   BENCH_OVERLOAD_THRESHOLD   (mistuned) static threshold  (default 150)
#   BENCH_WINDOW         broker dispatch window             (default 2)
#   BENCH_BACKOFF        client sleep after a busy reply, ms (default 20)
#   BENCH_OEVAL          controller feedback interval, s    (default 0.1)
#   BENCH_OVERLOAD_SWEEP set to 0 to skip the overload sweep entirely
#
# Open-loop arrivals sweep knobs (the fourth loadgen invocation below; its
# runs land in BENCH_daemon.json under "arrivals"): closed-loop baseline vs
# open-loop schedules at the same offered rate, coordinated-omission-corrected
# latency next to the biased from-actual-send view, optionally through the
# userspace link-degradation proxy.
#   BENCH_ARRIVALS       comma list of shapes (default "closed,poisson,bursty")
#   BENCH_RATE           open-loop offered rate, req/s     (default 500)
#   BENCH_ARRIVAL_SEED   schedule seed                     (default 42)
#   BENCH_DUTY           bursty on-fraction per period     (default 0.3)
#   BENCH_PERIOD         bursty/diurnal cycle length, s    (default 1)
#   BENCH_FLOOR          diurnal trough fraction of peak   (default 0.2)
#   BENCH_LINK           link shaping: none|wan|cell|custom:<lat_ms>:<jit_ms>:<kbps>
#                                                          (default none)
#   BENCH_ARRIVALS_CLIENTS  sender connections             (default 16)
#   BENCH_ARRIVALS_SWEEP set to 0 to skip the arrivals sweep entirely
#
# Federation sweep knobs (the federation_demo invocation below; its runs —
# a single-node baseline followed by a BENCH_PEERS-member tier over the
# identical workload — land in BENCH_daemon.json under "federation"):
#   BENCH_PEERS          federation members (processes)     (default 3)
#   BENCH_FED_CLIENTS    closed-loop client threads         (default 6)
#   BENCH_FED_REQUESTS   total requests per phase           (default 1920)
#   BENCH_FED_KEYS       distinct keys (requests/keys = repetition)
#                                                           (default 64)
#   BENCH_FED_SVC        backend service time, ms           (default 0)
#   BENCH_FED_SWEEP      set to 0 to skip the federation sweep entirely
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -x "$build_dir/bench/micro_core" ] || [ ! -x "$build_dir/bench/daemon_loadgen" ]; then
  echo "error: bench binaries not found under $build_dir/bench — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

echo "== micro benches -> BENCH_core.json"
"$build_dir/bench/micro_core" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_core.json" \
  --benchmark_out_format=json

tmp_main="$build_dir/bench_daemon_main.json"
tmp_policy="$build_dir/bench_daemon_policy.json"
tmp_overload="$build_dir/bench_daemon_overload.json"
tmp_fed="$build_dir/bench_daemon_federation.json"
tmp_arrivals="$build_dir/bench_daemon_arrivals.json"

echo "== daemon loadgen (channel/cache sweep)"
"$build_dir/bench/daemon_loadgen" \
  "shards=${BENCH_SHARDS:-1,2,4}" \
  "pipeline=${BENCH_PIPELINE:-0,1}" \
  "clients=${BENCH_CLIENTS:-64}" \
  "seconds=${BENCH_SECONDS:-2}" \
  "keys=${BENCH_KEYS:-512}" \
  "cache=${BENCH_CACHE:-1}" \
  "timeout=${BENCH_TIMEOUT_MS:-0}" \
  "stallpct=${BENCH_STALLPCT:-0}" \
  "attempts=${BENCH_ATTEMPTS:-1}" \
  "obs=${BENCH_OBS:-1}" \
  "scrape=${BENCH_SCRAPE:-1}" \
  "dup=${BENCH_DUP:-0,0.8}" \
  "ttl=${BENCH_TTL:-0.05}" \
  "grace=${BENCH_GRACE:-0.025}" \
  "jitter=${BENCH_JITTER:-0.1}" \
  "negttl=${BENCH_NEGTTL:-0}" \
  "coalesce=${BENCH_COALESCE:-1}" \
  "proto=${BENCH_PROTO:-wire,http,bin}" \
  "burst=${BENCH_BURST:-1}" \
  "iouring=${BENCH_IOURING:-0}" \
  "out=$tmp_main"

if [ "${BENCH_POLICY_SWEEP:-1}" = "1" ]; then
  # Replica-selection sweep: heterogeneous pool (the last replica is
  # BENCH_SKEW x slower), cache off so every request rides the picker under
  # test. check=1 gates pick conservation and the slow-share ordering.
  echo "== daemon loadgen (policy sweep)"
  "$build_dir/bench/daemon_loadgen" \
    "shards=${BENCH_SHARDS_POLICY:-1}" \
    "pipeline=${BENCH_PIPELINE_POLICY:-1}" \
    "clients=${BENCH_CLIENTS:-64}" \
    "seconds=${BENCH_SECONDS:-2}" \
    "keys=${BENCH_KEYS:-512}" \
    cache=0 \
    "obs=${BENCH_OBS:-1}" \
    "scrape=${BENCH_SCRAPE:-1}" \
    "proto=${BENCH_PROTO_POLICY:-bin}" \
    "policy=${BENCH_POLICY:-round-robin,least-outstanding,ewma,p2c}" \
    "replicas=${BENCH_REPLICAS:-3}" \
    "svc=${BENCH_SVC:-2}" \
    "skew=${BENCH_SKEW:-1,6}" \
    "degrade=${BENCH_DEGRADE:-0}" \
    "iouring=${BENCH_IOURING:-0}" \
    check=1 \
    "out=$tmp_policy"
else
  printf 'null\n' > "$tmp_policy"
fi

if [ "${BENCH_OVERLOAD_SWEEP:-1}" = "1" ]; then
  # Flash-crowd overload sweep: a deliberately mistuned static threshold
  # against one saturated serial replica, so the feedback-driven controllers
  # have something to recover. check=1 gates that every aimd run's
  # crowd-phase goodput >= the static run's, plus conservation.
  echo "== daemon loadgen (flash-crowd overload sweep)"
  "$build_dir/bench/daemon_loadgen" \
    shards=1 \
    pipeline=1 \
    "clients=${BENCH_OVERLOAD_CLIENTS:-6}" \
    "seconds=${BENCH_OVERLOAD_SECONDS:-2.4}" \
    "keys=${BENCH_KEYS:-512}" \
    cache=0 \
    "obs=${BENCH_OBS:-1}" \
    "scrape=${BENCH_SCRAPE:-1}" \
    "timeout=${BENCH_OVERLOAD_TIMEOUT_MS:-150}" \
    "threshold=${BENCH_OVERLOAD_THRESHOLD:-150}" \
    replicas=1 \
    "svc=${BENCH_OVERLOAD_SVC:-10}" \
    "window=${BENCH_WINDOW:-2}" \
    "crowd=${BENCH_CROWD:-10}" \
    "ramp=${BENCH_RAMP:-0.4}" \
    "backoff=${BENCH_BACKOFF:-20}" \
    "oeval=${BENCH_OEVAL:-0.1}" \
    "overload=${BENCH_OVERLOAD:-static,aimd,aimd+lifo}" \
    "iouring=${BENCH_IOURING:-0}" \
    check=1 \
    "out=$tmp_overload"
else
  printf 'null\n' > "$tmp_overload"
fi

if [ "${BENCH_ARRIVALS_SWEEP:-1}" = "1" ]; then
  # Open-loop arrivals sweep: the closed-loop baseline first, then the same
  # offered load replayed open-loop so stalls charge latency to the requests
  # that were due during them. check=1 gates sent == scheduled (no elision)
  # and corrected p99 >= uncorrected p99.
  echo "== daemon loadgen (open-loop arrivals sweep)"
  "$build_dir/bench/daemon_loadgen" \
    shards=1 \
    pipeline=1 \
    "clients=${BENCH_ARRIVALS_CLIENTS:-16}" \
    "seconds=${BENCH_SECONDS:-2}" \
    "keys=${BENCH_KEYS:-512}" \
    cache=0 \
    "obs=${BENCH_OBS:-1}" \
    "scrape=${BENCH_SCRAPE:-1}" \
    "arrivals=${BENCH_ARRIVALS:-closed,poisson,bursty}" \
    "rate=${BENCH_RATE:-500}" \
    "seed=${BENCH_ARRIVAL_SEED:-42}" \
    "duty=${BENCH_DUTY:-0.3}" \
    "period=${BENCH_PERIOD:-1}" \
    "floor=${BENCH_FLOOR:-0.2}" \
    "link=${BENCH_LINK:-none}" \
    "iouring=${BENCH_IOURING:-0}" \
    check=1 \
    "out=$tmp_arrivals"
else
  printf 'null\n' > "$tmp_arrivals"
fi

if [ "${BENCH_FED_SWEEP:-1}" = "1" ]; then
  # Federation sweep: a 1-node baseline then a BENCH_PEERS-process tier over
  # the identical round-robin keyed workload (forked daemons, one shared
  # backend). check=1 gates aggregate backend-call conservation and tier hit
  # ratio >= single-node.
  echo "== federation demo (1 vs ${BENCH_PEERS:-3} nodes)"
  "$build_dir/examples/federation_demo" \
    "peers=${BENCH_PEERS:-3}" \
    "clients=${BENCH_FED_CLIENTS:-6}" \
    "requests=${BENCH_FED_REQUESTS:-1920}" \
    "keys=${BENCH_FED_KEYS:-64}" \
    "svc=${BENCH_FED_SVC:-0}" \
    check=1 \
    "out=$tmp_fed"
else
  printf 'null\n' > "$tmp_fed"
fi

# Compose the sweeps into one artifact: the channel/cache sweep's document
# under "main" (its "runs" array is the historical trajectory), the
# replica-selection sweep under "policy", the flash-crowd overload sweep
# under "overload", the open-loop arrivals sweep under "arrivals", the 1-vs-N
# federation comparison under "federation".
{
  printf '{"bench":"daemon_loadgen","main":'
  cat "$tmp_main"
  printf ',"policy":'
  cat "$tmp_policy"
  printf ',"overload":'
  cat "$tmp_overload"
  printf ',"arrivals":'
  cat "$tmp_arrivals"
  printf ',"federation":'
  cat "$tmp_fed"
  printf '}\n'
} > "$repo_root/BENCH_daemon.json"
rm -f "$tmp_main" "$tmp_policy" "$tmp_overload" "$tmp_arrivals" "$tmp_fed"

echo "== wrote $repo_root/BENCH_core.json and $repo_root/BENCH_daemon.json"
