#!/bin/sh
# Perf trajectory runner: regenerates BENCH_core.json (micro benches) and
# BENCH_daemon.json (real-socket sharded daemon loadgen) at the repo root so
# every PR can be compared against its predecessors.
#
#   bench/run_bench.sh [build-dir]           # default build dir: ./build
#
# Environment knobs for the loadgen sweep:
#   BENCH_SHARDS   comma list of shard counts   (default 1,2,4)
#   BENCH_PIPELINE backend channel modes        (default 0,1)
#   BENCH_CLIENTS  concurrent connections       (default 64)
#   BENCH_SECONDS  seconds per run              (default 2)
#   BENCH_KEYS     distinct request targets     (default 512)
#   BENCH_CACHE    result cache on/off          (default 0, so every request
#                  exercises the broker->backend channel under comparison)
#   BENCH_TIMEOUT_MS per-request deadline in ms (default 0 = no deadline)
#   BENCH_STALLPCT  percent of keys routed to a never-replying backend
#                  (default 0; requires BENCH_TIMEOUT_MS > 0)
#   BENCH_ATTEMPTS  per-request attempt budget  (default 1 = no retries)
#   BENCH_OBS      broker histograms + flight recorder on/off (default 1;
#                  0 measures the compiled-in-but-idle overhead baseline)
#   BENCH_SCRAPE   scrape the admin plane (/metrics mid-run, /statusz after
#                  each run) so broker-side p50/p95/p99 per QoS class land
#                  in BENCH_daemon.json next to the client-side numbers
#                  (default 1)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -x "$build_dir/bench/micro_core" ] || [ ! -x "$build_dir/bench/daemon_loadgen" ]; then
  echo "error: bench binaries not found under $build_dir/bench — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

echo "== micro benches -> BENCH_core.json"
"$build_dir/bench/micro_core" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_core.json" \
  --benchmark_out_format=json

echo "== daemon loadgen -> BENCH_daemon.json"
"$build_dir/bench/daemon_loadgen" \
  "shards=${BENCH_SHARDS:-1,2,4}" \
  "pipeline=${BENCH_PIPELINE:-0,1}" \
  "clients=${BENCH_CLIENTS:-64}" \
  "seconds=${BENCH_SECONDS:-2}" \
  "keys=${BENCH_KEYS:-512}" \
  "cache=${BENCH_CACHE:-0}" \
  "timeout=${BENCH_TIMEOUT_MS:-0}" \
  "stallpct=${BENCH_STALLPCT:-0}" \
  "attempts=${BENCH_ATTEMPTS:-1}" \
  "obs=${BENCH_OBS:-1}" \
  "scrape=${BENCH_SCRAPE:-1}" \
  "out=$repo_root/BENCH_daemon.json"

echo "== wrote $repo_root/BENCH_core.json and $repo_root/BENCH_daemon.json"
