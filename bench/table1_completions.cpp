// Table I — Number of completed requests at each QoS level.
//
// Same testbed as Figures 9/10. WebStone clients are best-effort and
// closed-loop, so classes whose requests finish faster (because they are
// dropped promptly at the brokers) initiate — and complete — *more*
// requests: the completion counts are inversely ordered with priority under
// overload, exactly the paper's observation.
//
// Usage: table1_completions [duration=300]
#include <cstdio>

#include "diff_common.h"
#include "util/config.h"
#include "util/table_printer.h"

using namespace sbroker;

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 150.0);

  std::printf("Table I — completed requests per QoS class (broker mode)\n\n");
  util::TablePrinter table({"clients", "qos1", "qos2", "qos3", "api_total"});
  for (int clients : {10, 15, 20, 30, 40, 50, 60, 70}) {
    bench::DiffConfig broker_cfg;
    broker_cfg.total_clients = clients;
    broker_cfg.duration = duration;
    bench::DiffResult broker = bench::run_differentiation(broker_cfg);

    bench::DiffConfig api_cfg = broker_cfg;
    api_cfg.use_broker = false;
    bench::DiffResult api = bench::run_differentiation(api_cfg);
    uint64_t api_total = api.per_class[0].completed + api.per_class[1].completed +
                         api.per_class[2].completed;

    table.add_row({std::to_string(clients),
                   std::to_string(broker.per_class[0].completed),
                   std::to_string(broker.per_class[1].completed),
                   std::to_string(broker.per_class[2].completed),
                   std::to_string(api_total)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nExpected paper shape: under overload lower classes complete more\n"
              "(their drops return fast, so best-effort clients issue more); the\n"
              "API totals stay roughly flat (bounded by backend capacity).\n");
  return 0;
}
