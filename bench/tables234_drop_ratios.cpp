// Tables II, III, IV — drop ratios at brokers 1, 2 and 3.
//
// Same testbed as Figures 9/10. Expected shape per broker: all-zero ratios
// under light load (< ~20 clients), growing with load, and at any load the
// ratios ordered inversely with priority (QoS1 >= QoS2 >= QoS3).
//
// Usage: tables234_drop_ratios [duration=300]
#include <cstdio>

#include "diff_common.h"
#include "util/config.h"
#include "util/table_printer.h"

using namespace sbroker;

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  double duration = cfg.get_double("duration", 150.0);

  std::vector<int> client_points = {10, 15, 20, 30, 40, 50, 60, 70};
  std::vector<bench::DiffResult> results;
  for (int clients : client_points) {
    bench::DiffConfig dcfg;
    dcfg.total_clients = clients;
    dcfg.duration = duration;
    results.push_back(bench::run_differentiation(dcfg));
  }

  for (size_t broker = 0; broker < 3; ++broker) {
    std::printf("Table %s — drop ratios at broker %zu\n\n",
                broker == 0 ? "II" : broker == 1 ? "III" : "IV", broker + 1);
    util::TablePrinter table({"clients", "qos1", "qos2", "qos3"});
    for (size_t i = 0; i < client_points.size(); ++i) {
      auto cell = [&](size_t cls) {
        // "-": the class never reached this broker (fully shed upstream).
        if (results[i].issued[broker][cls] == 0) return std::string("-");
        return util::TablePrinter::fmt(results[i].drop_ratio[broker][cls], 3);
      };
      table.add_row({std::to_string(client_points[i]), cell(0), cell(1), cell(2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf("Expected paper shape: zero drops at light load; ratios grow with load\n"
              "and are ordered qos1 >= qos2 >= qos3 at every point.\n");
  return 0;
}
