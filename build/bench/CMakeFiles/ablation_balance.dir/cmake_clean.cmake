file(REMOVE_RECURSE
  "CMakeFiles/ablation_balance.dir/ablation_balance.cpp.o"
  "CMakeFiles/ablation_balance.dir/ablation_balance.cpp.o.d"
  "ablation_balance"
  "ablation_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
