# Empty compiler generated dependencies file for ablation_balance.
# This may be replaced when dependencies are built.
