file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache.dir/ablation_cache.cpp.o"
  "CMakeFiles/ablation_cache.dir/ablation_cache.cpp.o.d"
  "ablation_cache"
  "ablation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
