# Empty compiler generated dependencies file for ablation_cache.
# This may be replaced when dependencies are built.
