file(REMOVE_RECURSE
  "CMakeFiles/ablation_centralized.dir/ablation_centralized.cpp.o"
  "CMakeFiles/ablation_centralized.dir/ablation_centralized.cpp.o.d"
  "ablation_centralized"
  "ablation_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
