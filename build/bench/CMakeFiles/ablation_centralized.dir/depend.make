# Empty dependencies file for ablation_centralized.
# This may be replaced when dependencies are built.
