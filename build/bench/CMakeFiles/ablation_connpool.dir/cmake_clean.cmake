file(REMOVE_RECURSE
  "CMakeFiles/ablation_connpool.dir/ablation_connpool.cpp.o"
  "CMakeFiles/ablation_connpool.dir/ablation_connpool.cpp.o.d"
  "ablation_connpool"
  "ablation_connpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_connpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
