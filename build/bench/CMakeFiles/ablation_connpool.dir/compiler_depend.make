# Empty compiler generated dependencies file for ablation_connpool.
# This may be replaced when dependencies are built.
