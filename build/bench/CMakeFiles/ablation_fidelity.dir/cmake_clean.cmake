file(REMOVE_RECURSE
  "CMakeFiles/ablation_fidelity.dir/ablation_fidelity.cpp.o"
  "CMakeFiles/ablation_fidelity.dir/ablation_fidelity.cpp.o.d"
  "ablation_fidelity"
  "ablation_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
