# Empty compiler generated dependencies file for ablation_fidelity.
# This may be replaced when dependencies are built.
