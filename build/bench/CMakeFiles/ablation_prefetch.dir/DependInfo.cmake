
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_prefetch.cpp" "bench/CMakeFiles/ablation_prefetch.dir/ablation_prefetch.cpp.o" "gcc" "bench/CMakeFiles/ablation_prefetch.dir/ablation_prefetch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sbroker_net.dir/DependInfo.cmake"
  "/root/repo/build/src/srv/CMakeFiles/sbroker_srv.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/sbroker_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/ldap/CMakeFiles/sbroker_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/sbroker_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sbroker_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sbroker_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sbroker_db.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sbroker_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
