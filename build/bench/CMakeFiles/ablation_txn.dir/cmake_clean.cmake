file(REMOVE_RECURSE
  "CMakeFiles/ablation_txn.dir/ablation_txn.cpp.o"
  "CMakeFiles/ablation_txn.dir/ablation_txn.cpp.o.d"
  "ablation_txn"
  "ablation_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
