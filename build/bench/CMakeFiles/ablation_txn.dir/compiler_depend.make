# Empty compiler generated dependencies file for ablation_txn.
# This may be replaced when dependencies are built.
