file(REMOVE_RECURSE
  "CMakeFiles/fig10_qos_classes.dir/diff_common.cpp.o"
  "CMakeFiles/fig10_qos_classes.dir/diff_common.cpp.o.d"
  "CMakeFiles/fig10_qos_classes.dir/fig10_qos_classes.cpp.o"
  "CMakeFiles/fig10_qos_classes.dir/fig10_qos_classes.cpp.o.d"
  "fig10_qos_classes"
  "fig10_qos_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_qos_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
