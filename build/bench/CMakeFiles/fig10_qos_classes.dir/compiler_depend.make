# Empty compiler generated dependencies file for fig10_qos_classes.
# This may be replaced when dependencies are built.
