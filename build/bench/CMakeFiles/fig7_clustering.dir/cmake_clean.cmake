file(REMOVE_RECURSE
  "CMakeFiles/fig7_clustering.dir/fig7_clustering.cpp.o"
  "CMakeFiles/fig7_clustering.dir/fig7_clustering.cpp.o.d"
  "fig7_clustering"
  "fig7_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
