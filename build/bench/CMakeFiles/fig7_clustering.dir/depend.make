# Empty dependencies file for fig7_clustering.
# This may be replaced when dependencies are built.
