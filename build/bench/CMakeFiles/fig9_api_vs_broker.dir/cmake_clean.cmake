file(REMOVE_RECURSE
  "CMakeFiles/fig9_api_vs_broker.dir/diff_common.cpp.o"
  "CMakeFiles/fig9_api_vs_broker.dir/diff_common.cpp.o.d"
  "CMakeFiles/fig9_api_vs_broker.dir/fig9_api_vs_broker.cpp.o"
  "CMakeFiles/fig9_api_vs_broker.dir/fig9_api_vs_broker.cpp.o.d"
  "fig9_api_vs_broker"
  "fig9_api_vs_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_api_vs_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
