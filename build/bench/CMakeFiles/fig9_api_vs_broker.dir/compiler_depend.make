# Empty compiler generated dependencies file for fig9_api_vs_broker.
# This may be replaced when dependencies are built.
