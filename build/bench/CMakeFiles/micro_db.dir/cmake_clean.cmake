file(REMOVE_RECURSE
  "CMakeFiles/micro_db.dir/micro_db.cpp.o"
  "CMakeFiles/micro_db.dir/micro_db.cpp.o.d"
  "micro_db"
  "micro_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
