# Empty compiler generated dependencies file for micro_db.
# This may be replaced when dependencies are built.
