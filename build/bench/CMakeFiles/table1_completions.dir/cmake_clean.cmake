file(REMOVE_RECURSE
  "CMakeFiles/table1_completions.dir/diff_common.cpp.o"
  "CMakeFiles/table1_completions.dir/diff_common.cpp.o.d"
  "CMakeFiles/table1_completions.dir/table1_completions.cpp.o"
  "CMakeFiles/table1_completions.dir/table1_completions.cpp.o.d"
  "table1_completions"
  "table1_completions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_completions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
