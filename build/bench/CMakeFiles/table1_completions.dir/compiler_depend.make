# Empty compiler generated dependencies file for table1_completions.
# This may be replaced when dependencies are built.
