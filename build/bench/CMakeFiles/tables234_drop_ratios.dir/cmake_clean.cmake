file(REMOVE_RECURSE
  "CMakeFiles/tables234_drop_ratios.dir/diff_common.cpp.o"
  "CMakeFiles/tables234_drop_ratios.dir/diff_common.cpp.o.d"
  "CMakeFiles/tables234_drop_ratios.dir/tables234_drop_ratios.cpp.o"
  "CMakeFiles/tables234_drop_ratios.dir/tables234_drop_ratios.cpp.o.d"
  "tables234_drop_ratios"
  "tables234_drop_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables234_drop_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
