# Empty dependencies file for tables234_drop_ratios.
# This may be replaced when dependencies are built.
