file(REMOVE_RECURSE
  "CMakeFiles/intranet_portal.dir/intranet_portal.cpp.o"
  "CMakeFiles/intranet_portal.dir/intranet_portal.cpp.o.d"
  "intranet_portal"
  "intranet_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intranet_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
