# Empty compiler generated dependencies file for intranet_portal.
# This may be replaced when dependencies are built.
