file(REMOVE_RECURSE
  "CMakeFiles/movie_site.dir/movie_site.cpp.o"
  "CMakeFiles/movie_site.dir/movie_site.cpp.o.d"
  "movie_site"
  "movie_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
