# Empty dependencies file for movie_site.
# This may be replaced when dependencies are built.
