file(REMOVE_RECURSE
  "CMakeFiles/news_portal.dir/news_portal.cpp.o"
  "CMakeFiles/news_portal.dir/news_portal.cpp.o.d"
  "news_portal"
  "news_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
