# Empty dependencies file for news_portal.
# This may be replaced when dependencies are built.
