file(REMOVE_RECURSE
  "CMakeFiles/real_proxy.dir/real_proxy.cpp.o"
  "CMakeFiles/real_proxy.dir/real_proxy.cpp.o.d"
  "real_proxy"
  "real_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
