# Empty compiler generated dependencies file for real_proxy.
# This may be replaced when dependencies are built.
