file(REMOVE_RECURSE
  "CMakeFiles/travel_agency.dir/travel_agency.cpp.o"
  "CMakeFiles/travel_agency.dir/travel_agency.cpp.o.d"
  "travel_agency"
  "travel_agency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_agency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
