# Empty dependencies file for travel_agency.
# This may be replaced when dependencies are built.
