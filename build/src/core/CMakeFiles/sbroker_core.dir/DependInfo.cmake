
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/sbroker_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/balance.cpp" "src/core/CMakeFiles/sbroker_core.dir/balance.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/balance.cpp.o.d"
  "/root/repo/src/core/broker.cpp" "src/core/CMakeFiles/sbroker_core.dir/broker.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/broker.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/sbroker_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/centralized.cpp" "src/core/CMakeFiles/sbroker_core.dir/centralized.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/centralized.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/sbroker_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/hotspot.cpp" "src/core/CMakeFiles/sbroker_core.dir/hotspot.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/hotspot.cpp.o.d"
  "/root/repo/src/core/pool.cpp" "src/core/CMakeFiles/sbroker_core.dir/pool.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/pool.cpp.o.d"
  "/root/repo/src/core/prefetch.cpp" "src/core/CMakeFiles/sbroker_core.dir/prefetch.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/prefetch.cpp.o.d"
  "/root/repo/src/core/rewrite.cpp" "src/core/CMakeFiles/sbroker_core.dir/rewrite.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/rewrite.cpp.o.d"
  "/root/repo/src/core/txn.cpp" "src/core/CMakeFiles/sbroker_core.dir/txn.cpp.o" "gcc" "src/core/CMakeFiles/sbroker_core.dir/txn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sbroker_http.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sbroker_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
