file(REMOVE_RECURSE
  "CMakeFiles/sbroker_core.dir/admission.cpp.o"
  "CMakeFiles/sbroker_core.dir/admission.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/balance.cpp.o"
  "CMakeFiles/sbroker_core.dir/balance.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/broker.cpp.o"
  "CMakeFiles/sbroker_core.dir/broker.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/cache.cpp.o"
  "CMakeFiles/sbroker_core.dir/cache.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/centralized.cpp.o"
  "CMakeFiles/sbroker_core.dir/centralized.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/cluster.cpp.o"
  "CMakeFiles/sbroker_core.dir/cluster.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/hotspot.cpp.o"
  "CMakeFiles/sbroker_core.dir/hotspot.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/pool.cpp.o"
  "CMakeFiles/sbroker_core.dir/pool.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/prefetch.cpp.o"
  "CMakeFiles/sbroker_core.dir/prefetch.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/rewrite.cpp.o"
  "CMakeFiles/sbroker_core.dir/rewrite.cpp.o.d"
  "CMakeFiles/sbroker_core.dir/txn.cpp.o"
  "CMakeFiles/sbroker_core.dir/txn.cpp.o.d"
  "libsbroker_core.a"
  "libsbroker_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
