file(REMOVE_RECURSE
  "libsbroker_core.a"
)
