# Empty dependencies file for sbroker_core.
# This may be replaced when dependencies are built.
