
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cpp" "src/db/CMakeFiles/sbroker_db.dir/database.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/database.cpp.o.d"
  "/root/repo/src/db/dataset.cpp" "src/db/CMakeFiles/sbroker_db.dir/dataset.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/dataset.cpp.o.d"
  "/root/repo/src/db/executor.cpp" "src/db/CMakeFiles/sbroker_db.dir/executor.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/executor.cpp.o.d"
  "/root/repo/src/db/parser.cpp" "src/db/CMakeFiles/sbroker_db.dir/parser.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/parser.cpp.o.d"
  "/root/repo/src/db/query.cpp" "src/db/CMakeFiles/sbroker_db.dir/query.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/query.cpp.o.d"
  "/root/repo/src/db/table.cpp" "src/db/CMakeFiles/sbroker_db.dir/table.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/table.cpp.o.d"
  "/root/repo/src/db/value.cpp" "src/db/CMakeFiles/sbroker_db.dir/value.cpp.o" "gcc" "src/db/CMakeFiles/sbroker_db.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
