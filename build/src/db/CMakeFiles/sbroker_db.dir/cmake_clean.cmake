file(REMOVE_RECURSE
  "CMakeFiles/sbroker_db.dir/database.cpp.o"
  "CMakeFiles/sbroker_db.dir/database.cpp.o.d"
  "CMakeFiles/sbroker_db.dir/dataset.cpp.o"
  "CMakeFiles/sbroker_db.dir/dataset.cpp.o.d"
  "CMakeFiles/sbroker_db.dir/executor.cpp.o"
  "CMakeFiles/sbroker_db.dir/executor.cpp.o.d"
  "CMakeFiles/sbroker_db.dir/parser.cpp.o"
  "CMakeFiles/sbroker_db.dir/parser.cpp.o.d"
  "CMakeFiles/sbroker_db.dir/query.cpp.o"
  "CMakeFiles/sbroker_db.dir/query.cpp.o.d"
  "CMakeFiles/sbroker_db.dir/table.cpp.o"
  "CMakeFiles/sbroker_db.dir/table.cpp.o.d"
  "CMakeFiles/sbroker_db.dir/value.cpp.o"
  "CMakeFiles/sbroker_db.dir/value.cpp.o.d"
  "libsbroker_db.a"
  "libsbroker_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
