file(REMOVE_RECURSE
  "libsbroker_db.a"
)
