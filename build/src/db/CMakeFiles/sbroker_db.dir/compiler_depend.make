# Empty compiler generated dependencies file for sbroker_db.
# This may be replaced when dependencies are built.
