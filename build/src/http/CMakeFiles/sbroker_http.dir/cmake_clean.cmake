file(REMOVE_RECURSE
  "CMakeFiles/sbroker_http.dir/message.cpp.o"
  "CMakeFiles/sbroker_http.dir/message.cpp.o.d"
  "CMakeFiles/sbroker_http.dir/mget.cpp.o"
  "CMakeFiles/sbroker_http.dir/mget.cpp.o.d"
  "CMakeFiles/sbroker_http.dir/parser.cpp.o"
  "CMakeFiles/sbroker_http.dir/parser.cpp.o.d"
  "CMakeFiles/sbroker_http.dir/wire.cpp.o"
  "CMakeFiles/sbroker_http.dir/wire.cpp.o.d"
  "libsbroker_http.a"
  "libsbroker_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
