file(REMOVE_RECURSE
  "libsbroker_http.a"
)
