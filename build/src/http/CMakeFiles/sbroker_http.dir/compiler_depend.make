# Empty compiler generated dependencies file for sbroker_http.
# This may be replaced when dependencies are built.
