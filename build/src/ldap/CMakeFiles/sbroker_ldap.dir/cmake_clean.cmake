file(REMOVE_RECURSE
  "CMakeFiles/sbroker_ldap.dir/directory.cpp.o"
  "CMakeFiles/sbroker_ldap.dir/directory.cpp.o.d"
  "CMakeFiles/sbroker_ldap.dir/sim_backend.cpp.o"
  "CMakeFiles/sbroker_ldap.dir/sim_backend.cpp.o.d"
  "libsbroker_ldap.a"
  "libsbroker_ldap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_ldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
