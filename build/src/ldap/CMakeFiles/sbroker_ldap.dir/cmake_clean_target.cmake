file(REMOVE_RECURSE
  "libsbroker_ldap.a"
)
