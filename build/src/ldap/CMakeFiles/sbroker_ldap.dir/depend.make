# Empty dependencies file for sbroker_ldap.
# This may be replaced when dependencies are built.
