file(REMOVE_RECURSE
  "CMakeFiles/sbroker_mail.dir/sim_backend.cpp.o"
  "CMakeFiles/sbroker_mail.dir/sim_backend.cpp.o.d"
  "CMakeFiles/sbroker_mail.dir/store.cpp.o"
  "CMakeFiles/sbroker_mail.dir/store.cpp.o.d"
  "libsbroker_mail.a"
  "libsbroker_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
