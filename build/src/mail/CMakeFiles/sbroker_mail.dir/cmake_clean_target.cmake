file(REMOVE_RECURSE
  "libsbroker_mail.a"
)
