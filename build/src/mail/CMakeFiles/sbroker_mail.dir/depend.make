# Empty dependencies file for sbroker_mail.
# This may be replaced when dependencies are built.
