
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/broker_daemon.cpp" "src/net/CMakeFiles/sbroker_net.dir/broker_daemon.cpp.o" "gcc" "src/net/CMakeFiles/sbroker_net.dir/broker_daemon.cpp.o.d"
  "/root/repo/src/net/http_client.cpp" "src/net/CMakeFiles/sbroker_net.dir/http_client.cpp.o" "gcc" "src/net/CMakeFiles/sbroker_net.dir/http_client.cpp.o.d"
  "/root/repo/src/net/http_server.cpp" "src/net/CMakeFiles/sbroker_net.dir/http_server.cpp.o" "gcc" "src/net/CMakeFiles/sbroker_net.dir/http_server.cpp.o.d"
  "/root/repo/src/net/reactor.cpp" "src/net/CMakeFiles/sbroker_net.dir/reactor.cpp.o" "gcc" "src/net/CMakeFiles/sbroker_net.dir/reactor.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/sbroker_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/sbroker_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/sbroker_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/sbroker_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbroker_core.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sbroker_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sbroker_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
