file(REMOVE_RECURSE
  "CMakeFiles/sbroker_net.dir/broker_daemon.cpp.o"
  "CMakeFiles/sbroker_net.dir/broker_daemon.cpp.o.d"
  "CMakeFiles/sbroker_net.dir/http_client.cpp.o"
  "CMakeFiles/sbroker_net.dir/http_client.cpp.o.d"
  "CMakeFiles/sbroker_net.dir/http_server.cpp.o"
  "CMakeFiles/sbroker_net.dir/http_server.cpp.o.d"
  "CMakeFiles/sbroker_net.dir/reactor.cpp.o"
  "CMakeFiles/sbroker_net.dir/reactor.cpp.o.d"
  "CMakeFiles/sbroker_net.dir/tcp.cpp.o"
  "CMakeFiles/sbroker_net.dir/tcp.cpp.o.d"
  "CMakeFiles/sbroker_net.dir/udp.cpp.o"
  "CMakeFiles/sbroker_net.dir/udp.cpp.o.d"
  "libsbroker_net.a"
  "libsbroker_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
