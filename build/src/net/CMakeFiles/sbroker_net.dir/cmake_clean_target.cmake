file(REMOVE_RECURSE
  "libsbroker_net.a"
)
