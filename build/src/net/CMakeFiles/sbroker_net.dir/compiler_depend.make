# Empty compiler generated dependencies file for sbroker_net.
# This may be replaced when dependencies are built.
