file(REMOVE_RECURSE
  "CMakeFiles/sbroker_sim.dir/link.cpp.o"
  "CMakeFiles/sbroker_sim.dir/link.cpp.o.d"
  "CMakeFiles/sbroker_sim.dir/simulation.cpp.o"
  "CMakeFiles/sbroker_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/sbroker_sim.dir/station.cpp.o"
  "CMakeFiles/sbroker_sim.dir/station.cpp.o.d"
  "libsbroker_sim.a"
  "libsbroker_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
