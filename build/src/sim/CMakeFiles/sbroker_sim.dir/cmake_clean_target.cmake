file(REMOVE_RECURSE
  "libsbroker_sim.a"
)
