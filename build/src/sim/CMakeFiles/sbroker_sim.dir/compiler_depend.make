# Empty compiler generated dependencies file for sbroker_sim.
# This may be replaced when dependencies are built.
