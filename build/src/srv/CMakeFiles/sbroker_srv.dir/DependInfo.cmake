
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srv/broker_host.cpp" "src/srv/CMakeFiles/sbroker_srv.dir/broker_host.cpp.o" "gcc" "src/srv/CMakeFiles/sbroker_srv.dir/broker_host.cpp.o.d"
  "/root/repo/src/srv/cgi_backend.cpp" "src/srv/CMakeFiles/sbroker_srv.dir/cgi_backend.cpp.o" "gcc" "src/srv/CMakeFiles/sbroker_srv.dir/cgi_backend.cpp.o.d"
  "/root/repo/src/srv/db_backend.cpp" "src/srv/CMakeFiles/sbroker_srv.dir/db_backend.cpp.o" "gcc" "src/srv/CMakeFiles/sbroker_srv.dir/db_backend.cpp.o.d"
  "/root/repo/src/srv/worker_pool.cpp" "src/srv/CMakeFiles/sbroker_srv.dir/worker_pool.cpp.o" "gcc" "src/srv/CMakeFiles/sbroker_srv.dir/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbroker_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sbroker_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sbroker_db.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sbroker_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
