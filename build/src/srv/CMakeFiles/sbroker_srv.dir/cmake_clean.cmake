file(REMOVE_RECURSE
  "CMakeFiles/sbroker_srv.dir/broker_host.cpp.o"
  "CMakeFiles/sbroker_srv.dir/broker_host.cpp.o.d"
  "CMakeFiles/sbroker_srv.dir/cgi_backend.cpp.o"
  "CMakeFiles/sbroker_srv.dir/cgi_backend.cpp.o.d"
  "CMakeFiles/sbroker_srv.dir/db_backend.cpp.o"
  "CMakeFiles/sbroker_srv.dir/db_backend.cpp.o.d"
  "CMakeFiles/sbroker_srv.dir/worker_pool.cpp.o"
  "CMakeFiles/sbroker_srv.dir/worker_pool.cpp.o.d"
  "libsbroker_srv.a"
  "libsbroker_srv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_srv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
