file(REMOVE_RECURSE
  "libsbroker_srv.a"
)
