# Empty dependencies file for sbroker_srv.
# This may be replaced when dependencies are built.
