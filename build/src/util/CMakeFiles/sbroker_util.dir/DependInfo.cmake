
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/config.cpp" "src/util/CMakeFiles/sbroker_util.dir/config.cpp.o" "gcc" "src/util/CMakeFiles/sbroker_util.dir/config.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/sbroker_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/sbroker_util.dir/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/sbroker_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/sbroker_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/sbroker_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/sbroker_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/sbroker_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/sbroker_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/util/CMakeFiles/sbroker_util.dir/table_printer.cpp.o" "gcc" "src/util/CMakeFiles/sbroker_util.dir/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
