file(REMOVE_RECURSE
  "CMakeFiles/sbroker_util.dir/config.cpp.o"
  "CMakeFiles/sbroker_util.dir/config.cpp.o.d"
  "CMakeFiles/sbroker_util.dir/log.cpp.o"
  "CMakeFiles/sbroker_util.dir/log.cpp.o.d"
  "CMakeFiles/sbroker_util.dir/rng.cpp.o"
  "CMakeFiles/sbroker_util.dir/rng.cpp.o.d"
  "CMakeFiles/sbroker_util.dir/stats.cpp.o"
  "CMakeFiles/sbroker_util.dir/stats.cpp.o.d"
  "CMakeFiles/sbroker_util.dir/strings.cpp.o"
  "CMakeFiles/sbroker_util.dir/strings.cpp.o.d"
  "CMakeFiles/sbroker_util.dir/table_printer.cpp.o"
  "CMakeFiles/sbroker_util.dir/table_printer.cpp.o.d"
  "libsbroker_util.a"
  "libsbroker_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
