file(REMOVE_RECURSE
  "libsbroker_util.a"
)
