# Empty compiler generated dependencies file for sbroker_util.
# This may be replaced when dependencies are built.
