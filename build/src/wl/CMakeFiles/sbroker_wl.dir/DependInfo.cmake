
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/ab_client.cpp" "src/wl/CMakeFiles/sbroker_wl.dir/ab_client.cpp.o" "gcc" "src/wl/CMakeFiles/sbroker_wl.dir/ab_client.cpp.o.d"
  "/root/repo/src/wl/query_gen.cpp" "src/wl/CMakeFiles/sbroker_wl.dir/query_gen.cpp.o" "gcc" "src/wl/CMakeFiles/sbroker_wl.dir/query_gen.cpp.o.d"
  "/root/repo/src/wl/webstone_client.cpp" "src/wl/CMakeFiles/sbroker_wl.dir/webstone_client.cpp.o" "gcc" "src/wl/CMakeFiles/sbroker_wl.dir/webstone_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sbroker_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
