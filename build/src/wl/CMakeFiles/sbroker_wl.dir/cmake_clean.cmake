file(REMOVE_RECURSE
  "CMakeFiles/sbroker_wl.dir/ab_client.cpp.o"
  "CMakeFiles/sbroker_wl.dir/ab_client.cpp.o.d"
  "CMakeFiles/sbroker_wl.dir/query_gen.cpp.o"
  "CMakeFiles/sbroker_wl.dir/query_gen.cpp.o.d"
  "CMakeFiles/sbroker_wl.dir/webstone_client.cpp.o"
  "CMakeFiles/sbroker_wl.dir/webstone_client.cpp.o.d"
  "libsbroker_wl.a"
  "libsbroker_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbroker_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
