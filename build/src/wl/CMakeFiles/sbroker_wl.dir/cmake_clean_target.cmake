file(REMOVE_RECURSE
  "libsbroker_wl.a"
)
