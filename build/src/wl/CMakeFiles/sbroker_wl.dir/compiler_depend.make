# Empty compiler generated dependencies file for sbroker_wl.
# This may be replaced when dependencies are built.
