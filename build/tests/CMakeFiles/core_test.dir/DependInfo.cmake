
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/admission_test.cpp" "tests/CMakeFiles/core_test.dir/core/admission_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/admission_test.cpp.o.d"
  "/root/repo/tests/core/broker_test.cpp" "tests/CMakeFiles/core_test.dir/core/broker_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/broker_test.cpp.o.d"
  "/root/repo/tests/core/cache_test.cpp" "tests/CMakeFiles/core_test.dir/core/cache_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cache_test.cpp.o.d"
  "/root/repo/tests/core/cluster_test.cpp" "tests/CMakeFiles/core_test.dir/core/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cluster_test.cpp.o.d"
  "/root/repo/tests/core/hotspot_rewrite_test.cpp" "tests/CMakeFiles/core_test.dir/core/hotspot_rewrite_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hotspot_rewrite_test.cpp.o.d"
  "/root/repo/tests/core/metrics_centralized_test.cpp" "tests/CMakeFiles/core_test.dir/core/metrics_centralized_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/metrics_centralized_test.cpp.o.d"
  "/root/repo/tests/core/pool_balance_test.cpp" "tests/CMakeFiles/core_test.dir/core/pool_balance_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pool_balance_test.cpp.o.d"
  "/root/repo/tests/core/qos_test.cpp" "tests/CMakeFiles/core_test.dir/core/qos_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/qos_test.cpp.o.d"
  "/root/repo/tests/core/scheduler_test.cpp" "tests/CMakeFiles/core_test.dir/core/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scheduler_test.cpp.o.d"
  "/root/repo/tests/core/txn_prefetch_test.cpp" "tests/CMakeFiles/core_test.dir/core/txn_prefetch_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/txn_prefetch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sbroker_net.dir/DependInfo.cmake"
  "/root/repo/build/src/srv/CMakeFiles/sbroker_srv.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/sbroker_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/ldap/CMakeFiles/sbroker_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/mail/CMakeFiles/sbroker_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sbroker_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sbroker_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sbroker_db.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/sbroker_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbroker_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
