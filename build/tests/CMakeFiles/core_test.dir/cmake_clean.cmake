file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/admission_test.cpp.o"
  "CMakeFiles/core_test.dir/core/admission_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/broker_test.cpp.o"
  "CMakeFiles/core_test.dir/core/broker_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/cache_test.cpp.o"
  "CMakeFiles/core_test.dir/core/cache_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/cluster_test.cpp.o"
  "CMakeFiles/core_test.dir/core/cluster_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/hotspot_rewrite_test.cpp.o"
  "CMakeFiles/core_test.dir/core/hotspot_rewrite_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/metrics_centralized_test.cpp.o"
  "CMakeFiles/core_test.dir/core/metrics_centralized_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pool_balance_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pool_balance_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/qos_test.cpp.o"
  "CMakeFiles/core_test.dir/core/qos_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/scheduler_test.cpp.o"
  "CMakeFiles/core_test.dir/core/scheduler_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/txn_prefetch_test.cpp.o"
  "CMakeFiles/core_test.dir/core/txn_prefetch_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
