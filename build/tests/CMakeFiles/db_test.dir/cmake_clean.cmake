file(REMOVE_RECURSE
  "CMakeFiles/db_test.dir/db/executor_test.cpp.o"
  "CMakeFiles/db_test.dir/db/executor_test.cpp.o.d"
  "CMakeFiles/db_test.dir/db/orderby_count_test.cpp.o"
  "CMakeFiles/db_test.dir/db/orderby_count_test.cpp.o.d"
  "CMakeFiles/db_test.dir/db/parser_test.cpp.o"
  "CMakeFiles/db_test.dir/db/parser_test.cpp.o.d"
  "CMakeFiles/db_test.dir/db/table_test.cpp.o"
  "CMakeFiles/db_test.dir/db/table_test.cpp.o.d"
  "CMakeFiles/db_test.dir/db/value_test.cpp.o"
  "CMakeFiles/db_test.dir/db/value_test.cpp.o.d"
  "db_test"
  "db_test.pdb"
  "db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
