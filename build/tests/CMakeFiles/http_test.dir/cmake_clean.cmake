file(REMOVE_RECURSE
  "CMakeFiles/http_test.dir/http/message_test.cpp.o"
  "CMakeFiles/http_test.dir/http/message_test.cpp.o.d"
  "CMakeFiles/http_test.dir/http/mget_test.cpp.o"
  "CMakeFiles/http_test.dir/http/mget_test.cpp.o.d"
  "CMakeFiles/http_test.dir/http/parser_test.cpp.o"
  "CMakeFiles/http_test.dir/http/parser_test.cpp.o.d"
  "CMakeFiles/http_test.dir/http/wire_test.cpp.o"
  "CMakeFiles/http_test.dir/http/wire_test.cpp.o.d"
  "http_test"
  "http_test.pdb"
  "http_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
