file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/centralized_model_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/centralized_model_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/failure_injection_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/failure_injection_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/properties_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/properties_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/sim_end_to_end_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/sim_end_to_end_test.cpp.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
