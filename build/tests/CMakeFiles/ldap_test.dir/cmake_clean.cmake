file(REMOVE_RECURSE
  "CMakeFiles/ldap_test.dir/ldap/directory_test.cpp.o"
  "CMakeFiles/ldap_test.dir/ldap/directory_test.cpp.o.d"
  "CMakeFiles/ldap_test.dir/ldap/sim_backend_test.cpp.o"
  "CMakeFiles/ldap_test.dir/ldap/sim_backend_test.cpp.o.d"
  "ldap_test"
  "ldap_test.pdb"
  "ldap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
