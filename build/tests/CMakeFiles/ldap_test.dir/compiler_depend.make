# Empty compiler generated dependencies file for ldap_test.
# This may be replaced when dependencies are built.
