file(REMOVE_RECURSE
  "CMakeFiles/mail_test.dir/mail/mail_test.cpp.o"
  "CMakeFiles/mail_test.dir/mail/mail_test.cpp.o.d"
  "mail_test"
  "mail_test.pdb"
  "mail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
