# Empty dependencies file for mail_test.
# This may be replaced when dependencies are built.
