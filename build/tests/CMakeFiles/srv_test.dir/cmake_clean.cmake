file(REMOVE_RECURSE
  "CMakeFiles/srv_test.dir/srv/backend_test.cpp.o"
  "CMakeFiles/srv_test.dir/srv/backend_test.cpp.o.d"
  "CMakeFiles/srv_test.dir/srv/broker_host_test.cpp.o"
  "CMakeFiles/srv_test.dir/srv/broker_host_test.cpp.o.d"
  "CMakeFiles/srv_test.dir/srv/worker_pool_test.cpp.o"
  "CMakeFiles/srv_test.dir/srv/worker_pool_test.cpp.o.d"
  "srv_test"
  "srv_test.pdb"
  "srv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
