# Empty dependencies file for srv_test.
# This may be replaced when dependencies are built.
