file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/util/config_test.cpp.o"
  "CMakeFiles/util_test.dir/util/config_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/rng_test.cpp.o"
  "CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/stats_test.cpp.o"
  "CMakeFiles/util_test.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/strings_test.cpp.o"
  "CMakeFiles/util_test.dir/util/strings_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/table_printer_test.cpp.o"
  "CMakeFiles/util_test.dir/util/table_printer_test.cpp.o.d"
  "CMakeFiles/util_test.dir/util/token_bucket_test.cpp.o"
  "CMakeFiles/util_test.dir/util/token_bucket_test.cpp.o.d"
  "util_test"
  "util_test.pdb"
  "util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
