file(REMOVE_RECURSE
  "CMakeFiles/wl_test.dir/wl/workload_test.cpp.o"
  "CMakeFiles/wl_test.dir/wl/workload_test.cpp.o.d"
  "wl_test"
  "wl_test.pdb"
  "wl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
