# Empty dependencies file for wl_test.
# This may be replaced when dependencies are built.
