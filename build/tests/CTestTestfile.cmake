# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/srv_test[1]_include.cmake")
include("/root/repo/build/tests/wl_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ldap_test[1]_include.cmake")
include("/root/repo/build/tests/mail_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
