// Federation demo + smoke: N broker *processes* as one cache/admission tier.
//
// The parent forks one child per federation member; each child runs a
// fed::FederatedDaemon (a ShardedBrokerDaemon plus ring, peer channels,
// gossip) on its own reserved port, all fronting one shared HTTP backend
// that lives in the parent so aggregate backend calls are counted in one
// authoritative place. Closed-loop client threads in the parent then drive
// a fixed number of requests over a round-robin key sequence, entering the
// tier at different nodes, and the parent scrapes each child's /statusz
// federation block for forward/replication/gossip counters.
//
//   $ ./federation_demo peers=3 clients=6 requests=1920 keys=64 check=1
//
// key=value parameters (util::Config):
//   peers     federation members (processes)          (default 3)
//   clients   closed-loop client threads              (default 6)
//   requests  total requests across all clients       (default 1920)
//   keys      distinct keys; requests/keys is the repetition ("dup")
//             factor, so requests > keys exercises the tier cache
//                                                     (default 64)
//   shards    reactor shards per member               (default 1)
//   svc       backend service time per fetch, ms      (default 0)
//   deadline  per-request deadline, ms                (default 2000)
//   check     1 = two-phase smoke: run peers=1 then peers=N over the same
//             workload and gate (a) aggregate backend-call conservation in
//             both phases (calls == keys, plus one local fallback fetch
//             allowed per failed forward), (b) tier hit ratio at peers=N
//             >= the single-node hit ratio - 0.01, (c) cross-node forwards
//             actually happened; exit 1 on violation  (default 0)
//   kill      1 = robustness smoke: clients target only the first N-1
//             members while every member serves its ring share; halfway
//             through, the last member is SIGKILLed mid-traffic. Gates:
//             every request answers within its deadline budget (survivors
//             reroute the dead member's range), zero client failures
//                                                     (default 0)
//   out       JSON result file; "" = stdout only      (default "")
//
// Child hygiene (CI must never leak daemons): children die with the parent
// via PR_SET_PDEATHSIG, and the parent's Children guard SIGTERMs (then
// SIGKILLs) every child on all exit paths, including gate failures.
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fed/federation.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/reactor.h"
#include "net/sharded_daemon.h"
#include "net/tcp.h"
#include "util/config.h"
#include "util/json.h"

using namespace sbroker;

namespace {

struct Knobs {
  size_t peers = 3;
  size_t clients = 6;
  uint64_t requests = 1920;
  uint64_t keys = 64;
  size_t shards = 1;
  double svc_ms = 0.0;
  uint32_t deadline_ms = 2000;
  bool check = false;
  bool kill = false;
  std::string out;
};

volatile std::sig_atomic_t g_term = 0;
void on_term(int) { g_term = 1; }

/// Binds an ephemeral port and releases it so a forked child can rebind it.
/// The reserve/rebind race is acceptable in the demo/CI container.
uint16_t reserve_port() {
  auto [fd, port] = net::listen_tcp(0);
  close(fd);
  return port;
}

/// Child body: one federation member. Never returns to the caller's main —
/// _Exit avoids re-flushing stdio buffers duplicated by fork and skips
/// static destructors that belong to the parent's lifetime.
[[noreturn]] void run_node(size_t node, const std::vector<uint16_t>& ports,
                           const std::vector<uint16_t>& admin_ports,
                           uint16_t backend_port, int ready_fd,
                           const Knobs& k) {
  prctl(PR_SET_PDEATHSIG, SIGKILL);  // no orphan daemons if the parent dies
  struct sigaction sa = {};
  sa.sa_handler = on_term;
  sigaction(SIGTERM, &sa, nullptr);

  net::ShardedBrokerDaemonConfig cfg;
  cfg.broker.rules = core::QosRules{3, 200.0};
  cfg.broker.enable_cache = true;
  cfg.broker.cache_ttl = 3600.0;  // no expiry inside a demo run
  cfg.shards = k.shards;
  cfg.enable_udp = false;
  cfg.tick_interval = 0.005;
  cfg.admin.enabled = true;
  cfg.admin.port = admin_ports[node];

  fed::FedNodeConfig fedc;
  fedc.node_id = static_cast<uint32_t>(node);
  fedc.peer_ports = ports;
  fedc.gossip_interval = 0.02;
  fedc.dial_backoff = 0.05;
  fedc.forward_timeout = 1.0;

  fed::FederatedDaemon daemon("fed" + std::to_string(node), cfg, fedc);
  daemon.add_backend([backend_port](net::Reactor& reactor, size_t) {
    return std::make_shared<net::HttpBackend>(reactor, backend_port);
  });
  daemon.start();
  // Readiness byte: the parent must not scrape /statusz (the pre-start admin
  // snapshot path reads broker state off-thread) or dial the frame port
  // until start() completed. One byte on the inherited pipe proves it.
  {
    char ready = 'r';
    ssize_t n = write(ready_fd, &ready, 1);
    (void)n;
    close(ready_fd);
  }
  while (g_term == 0) pause();
  daemon.stop();
  std::_Exit(0);
}

/// Owns the forked member processes; SIGKILLs whatever is still alive on
/// destruction so no exit path (gate failure, exception) leaks a daemon.
struct Children {
  std::vector<pid_t> pids;

  ~Children() {
    for (pid_t pid : pids) {
      if (pid <= 0) continue;
      ::kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }

  /// Graceful stop: SIGTERM everyone, reap with a bounded wait, escalate
  /// to SIGKILL for stragglers.
  void shutdown() {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
    for (pid_t& pid : pids) {
      while (pid > 0) {
        if (waitpid(pid, nullptr, WNOHANG) == pid) {
          pid = -1;
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(pid, SIGKILL);
          waitpid(pid, nullptr, 0);
          pid = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
};

/// Blocks until every child has written its readiness byte (daemon fully
/// started: listen port bound, backends registered, shard threads running).
/// Children take a while to come up — especially under sanitizers — and
/// until start() returns in the child, neither a FrameClient dial (ctor
/// throws on refused connect) nor a /statusz scrape (the pre-start admin
/// snapshot reads broker state while add_backend still mutates it) is safe.
/// A child that dies early closes its pipe end; EOF before `peers` bytes
/// reports not-ready instead of hanging.
bool wait_for_ready(int ready_read_fd, size_t peers) {
  size_t got = 0;
  char buf[16];
  while (got < peers) {
    ssize_t n = read(ready_read_fd, buf, sizeof(buf));
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  return got >= peers;
}

std::optional<util::JsonValue> scrape_statusz(uint16_t admin_port) {
  http::Request req;
  req.method = "GET";
  req.target = "/statusz";
  auto resp = net::http_fetch(admin_port, req);
  if (!resp) return std::nullopt;
  return util::JsonValue::parse(resp->body);
}

/// Waits until every member's /statusz federation block reports every peer
/// fresh — i.e. every directed gossip (and therefore forwarding) channel
/// has carried a frame. Without this barrier, requests issued while an
/// early member's dial to a not-yet-listening peer sits in backoff would
/// correctly fall back to local fetches and break the strict gates.
bool wait_for_mesh(const std::vector<uint16_t>& admin_ports, double timeout_s) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    size_t meshed = 0;
    for (uint16_t port : admin_ports) {
      auto doc = scrape_statusz(port);
      if (!doc) continue;
      const util::JsonValue& peers = (*doc)["federation"]["peers"];
      if (!peers.is_array() || peers.size() == 0) continue;
      bool all_fresh = true;
      for (const util::JsonValue& peer : peers.items()) {
        if (!peer["self"].as_bool(false) && !peer["fresh"].as_bool(false)) {
          all_fresh = false;
        }
      }
      if (all_fresh) ++meshed;
    }
    if (meshed == admin_ports.size()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct PhaseResult {
  size_t peers = 0;
  bool killed_one = false;
  bool mesh_ok = true;
  uint64_t requests = 0;
  uint64_t answered = 0;   ///< replies received (any fidelity)
  uint64_t hits = 0;       ///< replies carrying kFlagCacheServed
  uint64_t failures = 0;   ///< transport failures / client timeouts
  uint64_t backend_calls = 0;
  uint64_t forwards = 0;
  uint64_t forward_fails = 0;
  uint64_t pushes = 0;
  uint64_t gossip_rounds = 0;
  double elapsed_s = 0.0;
  double max_call_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double hit_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(requests);
  }
  double forward_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(forwards) /
                               static_cast<double>(requests);
  }
};

/// Runs one federation instance of `peers` members end to end: fork, mesh,
/// load, scrape, tear down. With `kill_one`, clients target only the first
/// peers-1 members and the last member is SIGKILLed halfway through.
PhaseResult run_phase(const Knobs& k, size_t peers, bool kill_one) {
  PhaseResult r;
  r.peers = peers;
  r.killed_one = kill_one;
  r.requests = k.requests;

  std::vector<uint16_t> ports, admin_ports;
  for (size_t i = 0; i < peers; ++i) {
    ports.push_back(reserve_port());
    admin_ports.push_back(reserve_port());
  }

  // The shared backend binds before the fork (children dial it lazily on
  // their first miss) but its reactor thread starts after, so the fork
  // happens with no live threads in the parent.
  net::Reactor backend_reactor;
  std::atomic<uint64_t> backend_calls{0};
  double svc_s = k.svc_ms / 1e3;
  net::HttpServer backend(
      backend_reactor, 0,
      [&](const http::Request& req, net::HttpServer::Responder respond) {
        backend_calls.fetch_add(1, std::memory_order_relaxed);
        http::Response resp = http::make_response(200, "content of " + req.target);
        if (svc_s > 0.0) {
          backend_reactor.add_timer(svc_s, [respond, resp] { respond(resp); });
        } else {
          respond(resp);
        }
      });
  uint16_t backend_port = backend.port();

  Children children;
  int ready_pipe[2];
  if (pipe(ready_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  std::fflush(stdout);
  std::fflush(stderr);
  for (size_t i = 0; i < peers; ++i) {
    pid_t pid = fork();
    if (pid == 0) {
      close(ready_pipe[0]);
      run_node(i, ports, admin_ports, backend_port, ready_pipe[1], k);
    }
    children.pids.push_back(pid);
  }
  // Parent drops its write end so a dead child means EOF, not a hang.
  close(ready_pipe[1]);
  std::thread backend_thread([&] { backend_reactor.run(); });

  r.mesh_ok = wait_for_ready(ready_pipe[0], peers) &&
              (peers <= 1 || wait_for_mesh(admin_ports, 10.0));
  close(ready_pipe[0]);
  if (!r.mesh_ok) {
    // Don't drive load at members that never came up; the mesh_ok gate
    // already fails the phase, and loader connects would just terminate.
    children.shutdown();
    backend_reactor.stop();
    backend_thread.join();
    return r;
  }

  // Closed-loop load: a global counter deals request j the key j % keys, so
  // every key is fetched exactly requests/keys times, spread across entry
  // nodes. In kill mode only survivors are entry nodes (the doomed member
  // still owns ~1/peers of the key space, so its death is felt).
  size_t entry_nodes = kill_one ? peers - 1 : peers;
  std::atomic<uint64_t> next{0};
  std::atomic<bool> kill_fired{false};
  uint64_t kill_at = k.requests / 2;
  std::vector<std::thread> loaders;
  std::vector<uint64_t> hits(k.clients, 0), answered(k.clients, 0),
      failures(k.clients, 0);
  std::vector<std::vector<double>> lat(k.clients);
  std::vector<double> max_call(k.clients, 0.0);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < k.clients; ++c) {
    loaders.emplace_back([&, c] {
      net::FrameClient client(ports[c % entry_nodes]);
      uint64_t id = (c << 32) | 1;
      for (;;) {
        uint64_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= k.requests) break;
        if (kill_one && j >= kill_at &&
            !kill_fired.exchange(true, std::memory_order_acq_rel)) {
          ::kill(children.pids.back(), SIGKILL);
        }
        std::string key = "/fed-" + std::to_string(j % k.keys);
        auto start = std::chrono::steady_clock::now();
        auto reply = client.call(id++, key, /*qos_level=*/1, k.deadline_ms);
        double took = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        lat[c].push_back(took);
        max_call[c] = std::max(max_call[c], took);
        if (!reply.has_value()) {
          ++failures[c];
          continue;
        }
        ++answered[c];
        if (reply->flags & net::frame::kFlagCacheServed) ++hits[c];
      }
    });
  }
  for (auto& t : loaders) t.join();
  r.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all_lat;
  for (size_t c = 0; c < k.clients; ++c) {
    r.hits += hits[c];
    r.answered += answered[c];
    r.failures += failures[c];
    r.max_call_s = std::max(r.max_call_s, max_call[c]);
    all_lat.insert(all_lat.end(), lat[c].begin(), lat[c].end());
  }
  std::sort(all_lat.begin(), all_lat.end());
  if (!all_lat.empty()) {
    r.p50_ms = all_lat[all_lat.size() / 2] * 1e3;
    r.p99_ms = all_lat[all_lat.size() * 99 / 100] * 1e3;
  }

  // Tier counters from each surviving member's admin plane (a killed
  // member's scrape fails and is skipped).
  for (uint16_t port : admin_ports) {
    auto doc = scrape_statusz(port);
    if (!doc) continue;
    const util::JsonValue& fed = (*doc)["federation"];
    r.forwards += static_cast<uint64_t>(fed["forwards_sent"].as_double());
    r.forward_fails += static_cast<uint64_t>(fed["forward_fails"].as_double());
    r.pushes += static_cast<uint64_t>(fed["pushes_sent"].as_double());
    r.gossip_rounds += static_cast<uint64_t>(fed["gossip_rounds"].as_double());
  }

  children.shutdown();
  backend_reactor.stop();
  backend_thread.join();
  r.backend_calls = backend_calls.load();
  return r;
}

void print_phase(const PhaseResult& r) {
  std::printf(
      "peers=%zu%s  requests=%llu answered=%llu failures=%llu  "
      "hit_ratio=%.4f  backend_calls=%llu  forwards=%llu (fails=%llu)  "
      "pushes=%llu gossip_rounds=%llu  p50=%.2fms p99=%.2fms  %.0f req/s\n",
      r.peers, r.killed_one ? " (one killed mid-run)" : "",
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.answered),
      static_cast<unsigned long long>(r.failures), r.hit_ratio(),
      static_cast<unsigned long long>(r.backend_calls),
      static_cast<unsigned long long>(r.forwards),
      static_cast<unsigned long long>(r.forward_fails),
      static_cast<unsigned long long>(r.pushes),
      static_cast<unsigned long long>(r.gossip_rounds), r.p50_ms, r.p99_ms,
      r.elapsed_s > 0 ? r.requests / r.elapsed_s : 0.0);
}

void json_phase(util::JsonWriter& json, const PhaseResult& r) {
  json.begin_object()
      .field("peers", static_cast<uint64_t>(r.peers))
      .field("killed_one", r.killed_one)
      .field("mesh_ok", r.mesh_ok)
      .field("requests", r.requests)
      .field("answered", r.answered)
      .field("failures", r.failures)
      .field("hits", r.hits)
      .field("hit_ratio", r.hit_ratio())
      .field("backend_calls", r.backend_calls)
      .field("forwards", r.forwards)
      .field("forward_ratio", r.forward_ratio())
      .field("forward_fails", r.forward_fails)
      .field("pushes", r.pushes)
      .field("gossip_rounds", r.gossip_rounds)
      .field("elapsed_s", r.elapsed_s)
      .field("rps", r.elapsed_s > 0 ? r.requests / r.elapsed_s : 0.0)
      .field("p50_ms", r.p50_ms)
      .field("p99_ms", r.p99_ms)
      .field("max_call_s", r.max_call_s)
      .end_object();
}

/// Conservation: every backend call is either a key's first fetch or the
/// local fallback of a failed forward — nothing lost, nothing double-
/// fetched. Plus: every request answered, none failed, mesh formed.
bool phase_conserves(const PhaseResult& r, const Knobs& k) {
  bool ok = true;
  if (!r.mesh_ok) {
    std::fprintf(stderr, "FAIL peers=%zu: federation never meshed\n", r.peers);
    ok = false;
  }
  if (r.failures != 0 || r.answered != r.requests) {
    std::fprintf(stderr,
                 "FAIL peers=%zu: %llu failures, %llu/%llu answered\n",
                 r.peers, static_cast<unsigned long long>(r.failures),
                 static_cast<unsigned long long>(r.answered),
                 static_cast<unsigned long long>(r.requests));
    ok = false;
  }
  if (r.backend_calls < k.keys ||
      r.backend_calls > k.keys + r.forward_fails) {
    std::fprintf(stderr,
                 "FAIL peers=%zu: backend calls %llu outside [keys=%llu, "
                 "keys+forward_fails=%llu] — tier cache not conserving "
                 "fetches\n",
                 r.peers, static_cast<unsigned long long>(r.backend_calls),
                 static_cast<unsigned long long>(k.keys),
                 static_cast<unsigned long long>(k.keys + r.forward_fails));
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  Knobs k;
  k.peers = static_cast<size_t>(cfg.get_int("peers", 3));
  k.clients = static_cast<size_t>(cfg.get_int("clients", 6));
  k.requests = static_cast<uint64_t>(cfg.get_int("requests", 1920));
  k.keys = static_cast<uint64_t>(cfg.get_int("keys", 64));
  k.shards = static_cast<size_t>(cfg.get_int("shards", 1));
  k.svc_ms = cfg.get_double("svc", 0.0);
  k.deadline_ms = static_cast<uint32_t>(cfg.get_int("deadline", 2000));
  k.check = cfg.get_int("check", 0) != 0;
  k.kill = cfg.get_int("kill", 0) != 0;
  k.out = cfg.get_string("out", "");

  if (k.peers < 1 || k.clients < 1 || k.requests < 1 || k.keys < 1) {
    std::fprintf(stderr, "error: need peers/clients/requests/keys >= 1\n");
    return 1;
  }
  if (k.kill && k.peers < 2) {
    std::fprintf(stderr, "error: kill=1 needs peers >= 2\n");
    return 1;
  }
  if (k.requests <= k.keys) {
    std::fprintf(stderr,
                 "error: requests must exceed keys (repetition is what the "
                 "tier cache serves)\n");
    return 1;
  }

  std::printf(
      "federation_demo: peers=%zu clients=%zu requests=%llu keys=%llu "
      "shards=%zu svc=%.1fms deadline=%ums check=%d kill=%d\n",
      k.peers, k.clients, static_cast<unsigned long long>(k.requests),
      static_cast<unsigned long long>(k.keys), k.shards, k.svc_ms,
      k.deadline_ms, k.check ? 1 : 0, k.kill ? 1 : 0);

  std::vector<PhaseResult> runs;
  bool ok = true;

  if (k.kill) {
    PhaseResult r = run_phase(k, k.peers, /*kill_one=*/true);
    print_phase(r);
    runs.push_back(r);
    // A dead member must cost latency at most: every request still answers
    // inside its deadline budget (forward timeout -> local fallback, then
    // the ring reroutes to survivors), and none fails outright.
    double bound = k.deadline_ms / 1e3 + 1.0;
    if (r.failures != 0 || r.answered != r.requests) {
      std::fprintf(stderr,
                   "FAIL kill: %llu failures, %llu/%llu answered\n",
                   static_cast<unsigned long long>(r.failures),
                   static_cast<unsigned long long>(r.answered),
                   static_cast<unsigned long long>(r.requests));
      ok = false;
    }
    if (r.max_call_s >= bound) {
      std::fprintf(stderr,
                   "FAIL kill: a request took %.3fs, past its %.1fs budget\n",
                   r.max_call_s, bound);
      ok = false;
    }
    if (!r.mesh_ok) {
      std::fprintf(stderr, "FAIL kill: federation never meshed\n");
      ok = false;
    }
    if (r.backend_calls < k.keys) {
      std::fprintf(stderr,
                   "FAIL kill: only %llu backend calls for %llu keys\n",
                   static_cast<unsigned long long>(r.backend_calls),
                   static_cast<unsigned long long>(k.keys));
      ok = false;
    }
  } else if (k.check) {
    // Phase 1: the single-node baseline over the identical workload.
    PhaseResult single = run_phase(k, 1, false);
    print_phase(single);
    runs.push_back(single);
    // Phase 2: the federated tier.
    PhaseResult tier = run_phase(k, k.peers, false);
    print_phase(tier);
    runs.push_back(tier);

    ok = phase_conserves(single, k) && ok;
    ok = phase_conserves(tier, k) && ok;
    if (k.peers > 1 && tier.forwards == 0) {
      std::fprintf(stderr, "FAIL: no cross-node forwards at peers=%zu\n",
                   k.peers);
      ok = false;
    }
    // The federation headline: partitioning + forwarding must recover the
    // single cache's hit ratio — without it, each of N independent nodes
    // would pay its own cold misses (hit ratio down by ~(N-1)*keys/requests).
    if (tier.hit_ratio() < single.hit_ratio() - 0.01) {
      std::fprintf(stderr,
                   "FAIL: tier hit ratio %.4f < single-node %.4f - 0.01\n",
                   tier.hit_ratio(), single.hit_ratio());
      ok = false;
    }
  } else {
    PhaseResult r = run_phase(k, k.peers, false);
    print_phase(r);
    runs.push_back(r);
  }

  util::JsonWriter json;
  json.begin_object()
      .field("bench", "federation_demo")
      .field("peers", static_cast<uint64_t>(k.peers))
      .field("clients", static_cast<uint64_t>(k.clients))
      .field("requests", k.requests)
      .field("keys", k.keys)
      .field("shards", static_cast<uint64_t>(k.shards))
      .field("svc_ms", k.svc_ms)
      .field("deadline_ms", static_cast<uint64_t>(k.deadline_ms))
      .field("kill", k.kill)
      .key("runs")
      .begin_array();
  for (const PhaseResult& r : runs) json_phase(json, r);
  json.end_array().end_object();
  if (!k.out.empty()) {
    if (json.write_file(k.out)) {
      std::printf("wrote %s\n", k.out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", k.out.c_str());
      return 1;
    }
  } else {
    std::printf("%s\n", json.str().c_str());
  }

  if ((k.check || k.kill) && !ok) {
    std::fprintf(stderr, "federation check FAILED\n");
    return 1;
  }
  if (k.check || k.kill) std::printf("federation check passed\n");
  return 0;
}
