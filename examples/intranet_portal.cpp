// Intranet portal — the paper's Figure 2 topology, end to end.
//
// "Dynamic applications A and B ... only pass messages to individual service
// brokers" fronting the Database, Mail and LDAP servers. An employee
// dashboard page needs all three: today's report rows from the database, the
// inbox listing from the mail server, and the team roster from the
// directory. The page generator sends the three broker messages in parallel
// (Section III, "Multitasking") and composes the page when the last reply
// lands.
//
//   $ ./intranet_portal [pages=40]
#include <cstdio>

#include "db/dataset.h"
#include "ldap/sim_backend.h"
#include "mail/sim_backend.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "util/stats.h"

using namespace sbroker;

namespace {

ldap::Directory build_directory() {
  ldap::Directory dir;
  auto add = [&](std::string dn,
                 std::vector<std::pair<std::string, std::string>> attrs) {
    ldap::Entry e;
    e.dn = std::move(dn);
    for (auto& [k, v] : attrs) e.attributes.emplace(k, v);
    dir.add(std::move(e));
  };
  add("o=acme", {{"o", "acme"}});
  add("ou=eng,o=acme", {{"ou", "eng"}});
  const char* people[] = {"joe", "jane", "sam", "ada", "lin"};
  for (const char* name : people) {
    add(std::string("cn=") + name + ",ou=eng,o=acme",
        {{"cn", name}, {"mail", std::string(name) + "@acme.example"}, {"team", "eng"}});
  }
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  int pages = static_cast<int>(cfg.get_int("pages", 40));

  sim::Simulation sim;

  // The three backend services of Figure 1.
  db::Database database;
  util::Rng rng(5);
  db::load_benchmark_table(database, rng, 10000, 20);
  auto db_backend =
      std::make_shared<srv::SimDbBackend>(sim, database, srv::DbBackendConfig{});

  ldap::Directory directory = build_directory();
  auto ldap_backend =
      std::make_shared<ldap::SimLdapBackend>(sim, directory, ldap::LdapBackendConfig{});

  mail::MailStore mailstore;
  for (int i = 0; i < 8; ++i) {
    mailstore.deliver("joe", "jane", "status " + std::to_string(i), "…");
  }
  auto mail_backend =
      std::make_shared<mail::SimMailBackend>(sim, mailstore, mail::MailBackendConfig{});

  // One broker per service ("It is per service based").
  auto make_host = [&](const std::string& name, uint64_t seed, bool cache) {
    core::BrokerConfig broker_cfg;
    broker_cfg.rules = core::QosRules{3, 30.0};
    broker_cfg.enable_cache = cache;
    broker_cfg.cache_ttl = 20.0;
    return std::make_unique<srv::BrokerHost>(sim, name, broker_cfg, sim::ipc_profile(),
                                             seed);
  };
  auto db_broker = make_host("db-broker", 801, true);
  db_broker->broker().add_backend(db_backend);
  auto ldap_broker = make_host("ldap-broker", 802, true);  // rosters cache well
  ldap_broker->broker().add_backend(ldap_backend);
  auto mail_broker = make_host("mail-broker", 803, false);  // inboxes must be fresh
  mail_broker->broker().add_backend(mail_backend);

  util::Histogram page_latency;
  uint64_t next_id = 1;
  int panels_failed = 0;

  auto compose = [&](double at) {
    sim.at(at, [&]() {
      double started = sim.now();
      auto remaining = std::make_shared<int>(3);
      auto panel_done = [&, started, remaining](const http::BrokerReply& reply) {
        if (reply.fidelity == http::Fidelity::kError) ++panels_failed;
        if (--*remaining == 0) page_latency.add(sim.now() - started);
      };
      auto send = [&](srv::BrokerHost& host, std::string payload) {
        http::BrokerRequest req;
        req.request_id = next_id++;
        req.qos_level = 2;
        req.payload = std::move(payload);
        host.submit(req, panel_done);
      };
      // Parallel fan-out to the three services.
      send(*db_broker, "SELECT id, score FROM records WHERE category = 7 LIMIT 20");
      send(*ldap_broker, "SEARCH base=ou=eng,o=acme scope=one filter=(team=eng)");
      send(*mail_broker, "LIST|joe");
    });
  };

  for (int i = 0; i < pages; ++i) compose(0.5 * i);
  sim.run();

  std::printf("intranet portal: %d dashboard pages, 3 services each\n\n", pages);
  std::printf("  page latency:  mean %.2f ms, p99 %.2f ms\n", page_latency.mean() * 1000,
              page_latency.p99() * 1000);
  std::printf("  panel errors:  %d\n", panels_failed);
  std::printf("  db accesses:   %llu (cache absorbed the repeats)\n",
              static_cast<unsigned long long>(db_backend->calls()));
  std::printf("  ldap accesses: %llu\n",
              static_cast<unsigned long long>(ldap_backend->calls()));
  std::printf("  mail accesses: %llu (uncached by policy)\n",
              static_cast<unsigned long long>(mail_backend->calls()));
  std::printf("\nOne broker per service, messages instead of API calls — the exact\n"
              "topology of the paper's Figure 2.\n");
  return 0;
}
