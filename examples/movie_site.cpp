// Movie-schedule site — the paper's caching scenario (Section III).
//
// "Consider an online Web site that provides movie schedules. ... In the
// peak time, there would be a lots of requests for the same movie schedule.
// If the results are not cached, the database has to process the same query
// repeatedly." A Zipf-skewed evening crowd asks for showtimes; the broker
// caches the popular schedules and the database only sees distinct queries.
//
//   $ ./movie_site [clients=30] [duration=60]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"
#include "util/config.h"
#include "wl/query_gen.h"
#include "wl/webstone_client.h"

using namespace sbroker;

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  size_t clients = static_cast<size_t>(cfg.get_int("clients", 30));
  double duration = cfg.get_double("duration", 60.0);

  sim::Simulation sim;
  db::Database db;
  util::Rng rng(7);
  db::load_movie_schedule(db, rng, 50, 12, 5);

  srv::DbBackendConfig backend_cfg;
  backend_cfg.capacity = 5;
  auto backend = std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 40.0};
  broker_cfg.enable_cache = true;
  broker_cfg.cache_capacity = 256;
  broker_cfg.cache_ttl = 30.0;  // schedules are static for the evening
  srv::BrokerHost host(sim, "movie-broker", broker_cfg);
  host.broker().add_backend(backend);

  // Blockbusters dominate: Zipf(theta=1.1) over 50 titles.
  wl::QueryGenerator gen(50, wl::QueryGenerator::Popularity::kZipf, 1.1);
  util::Rng query_rng(13);
  uint64_t next_id = 1;

  wl::WebStoneConfig wcfg;
  wcfg.clients = clients;
  wcfg.duration = duration;
  wcfg.think_time = 0.5;
  wcfg.qos_level = 2;
  wl::WebStoneClients crowd(sim, wcfg, [&](int level, std::function<void()> done) {
    http::BrokerRequest req;
    req.request_id = next_id++;
    req.qos_level = static_cast<uint8_t>(level);
    req.service = "schedule-db";
    req.payload = gen.next_movie_query(query_rng, 50);
    host.submit(req, [done](const http::BrokerReply&) { done(); });
  });
  crowd.start();
  sim.run();

  const core::ResultCacheBase& cache = host.broker().cache();
  std::printf("movie site, %zu clients for %.0fs (virtual):\n", clients, duration);
  std::printf("  requests served:    %llu\n",
              static_cast<unsigned long long>(crowd.completed()));
  std::printf("  mean response time: %.2f ms\n", crowd.response_times().mean() * 1000);
  std::printf("  p99 response time:  %.2f ms\n", crowd.response_times().p99() * 1000);
  std::printf("  database accesses:  %llu\n",
              static_cast<unsigned long long>(backend->calls()));
  std::printf("  cache hit ratio:    %.1f%%  (%llu hits, %llu misses)\n",
              cache.hit_ratio() * 100, static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  std::printf("\nThe database answered each popular schedule once per TTL window;\n"
              "the broker absorbed the rest of the peak-time crowd.\n");
  return 0;
}
