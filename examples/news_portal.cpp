// News portal — prefetching and multitasking (paper Section III).
//
// A My.Yahoo-style page composes three independent panels: headlines from a
// WAN news provider (periodically refreshed -> prefetched by the broker),
// weather from a second provider, and a stock ticker from a third. The page
// generator sends the three broker requests in parallel ("Multitasking"),
// so the page latency is the max, not the sum, of the panel latencies — and
// the headlines panel is usually a local cache hit thanks to prefetch.
//
//   $ ./news_portal [pages=50]
#include <cstdio>

#include "srv/broker_host.h"
#include "srv/cgi_backend.h"
#include "util/config.h"
#include "util/stats.h"

using namespace sbroker;

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  int pages = static_cast<int>(cfg.get_int("pages", 50));

  sim::Simulation sim;

  struct Panel {
    std::shared_ptr<srv::SimCgiBackend> backend;
    std::unique_ptr<srv::BrokerHost> host;
  };
  auto make_panel = [&](const std::string& name, double service_time, uint64_t seed,
                        bool cache) {
    srv::CgiBackendConfig backend_cfg;
    backend_cfg.processing_time = service_time;
    backend_cfg.capacity = 4;
    backend_cfg.link = sim::wan_profile();
    backend_cfg.link_seed = seed;
    Panel panel;
    panel.backend = std::make_shared<srv::SimCgiBackend>(sim, name, backend_cfg);
    core::BrokerConfig broker_cfg;
    broker_cfg.rules = core::QosRules{3, 50.0};
    broker_cfg.enable_cache = cache;
    broker_cfg.cache_ttl = 15.0;
    broker_cfg.prefetch_idle_threshold = 8.0;
    panel.host = std::make_unique<srv::BrokerHost>(sim, name + "-broker", broker_cfg,
                                                   sim::ipc_profile(), seed + 1);
    panel.host->broker().add_backend(panel.backend);
    return panel;
  };

  Panel headlines = make_panel("headlines", 0.080, 500, true);
  Panel weather = make_panel("weather", 0.040, 600, true);
  Panel stocks = make_panel("stocks", 0.020, 700, false);  // too volatile to cache

  // The provider updates headlines every ~12s; the broker prefetches on the
  // same cadence so user requests never wait on the WAN.
  headlines.host->broker().prefetcher().add("/headlines", "/headlines", 12.0);
  headlines.host->kick();

  util::Histogram page_latency;
  util::Histogram slowest_panel;
  uint64_t next_id = 1;

  auto compose_page = [&](double at) {
    sim.at(at, [&]() {
      auto started = sim.now();
      auto remaining = std::make_shared<int>(3);
      auto worst = std::make_shared<double>(0.0);
      auto panel_done = [&, started, remaining, worst]() {
        *worst = std::max(*worst, sim.now() - started);
        if (--*remaining == 0) {
          page_latency.add(sim.now() - started);
          slowest_panel.add(*worst);
        }
      };
      auto fetch = [&](Panel& panel, std::string target) {
        http::BrokerRequest req;
        req.request_id = next_id++;
        req.qos_level = 2;
        req.payload = std::move(target);
        panel.host->submit(req, [panel_done](const http::BrokerReply&) { panel_done(); });
      };
      // Multitasking: all three panels fetched in parallel.
      fetch(headlines, "/headlines");
      fetch(weather, "/weather?zip=95616");
      fetch(stocks, "/ticker?syms=WEBS,BRKR");
    });
  };

  for (int i = 0; i < pages; ++i) compose_page(1.0 + 0.8 * i);
  // run_until, not run(): the prefetch schedule keeps ticking forever.
  sim.run_until(1.0 + 0.8 * pages + 30.0);

  std::printf("news portal: %d pages composed from 3 providers in parallel\n\n", pages);
  std::printf("  page latency:   mean %.1f ms, p99 %.1f ms\n",
              page_latency.mean() * 1000, page_latency.p99() * 1000);
  std::printf("  headline fetches answered from cache: %llu of %d\n",
              static_cast<unsigned long long>(
                  headlines.host->broker().metrics().total().cache_hits),
              pages);
  std::printf("  headline provider accesses (mostly prefetch): %llu\n",
              static_cast<unsigned long long>(headlines.backend->calls()));
  std::printf("\nParallel brokers overlap the WAN round trips (page cost = max, not\n"
              "sum); prefetch keeps the slowest panel off the user's critical path.\n");
  return 0;
}
