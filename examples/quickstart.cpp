// Quickstart — the service-broker API in one file.
//
// Builds a 42,000-record database, stands up a simulated backend behind a
// service broker, and walks through the three behaviours the paper leads
// with: full-fidelity forwarding, cache hits, and QoS-differentiated drops
// under overload.
//
//   $ ./quickstart
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/db_backend.h"

using namespace sbroker;

namespace {

const char* describe(http::Fidelity f) { return http::fidelity_name(f); }

}  // namespace

int main() {
  // 1. A simulated world: virtual clock, MySQL-like store, Apache-like
  //    backend with 5 workers.
  sim::Simulation sim;
  db::Database db;
  util::Rng rng(42);
  db::load_benchmark_table(db, rng, 42000, 100);

  srv::DbBackendConfig backend_cfg;
  backend_cfg.capacity = 5;
  auto backend = std::make_shared<srv::SimDbBackend>(sim, db, backend_cfg);

  // 2. A service broker in front of it: 3 QoS classes, threshold 20,
  //    result cache, stale-on-drop degradation.
  core::BrokerConfig cfg;
  cfg.rules = core::QosRules{3, 20.0};
  cfg.enable_cache = true;
  cfg.cache_ttl = 5.0;
  srv::BrokerHost host(sim, "db-broker", cfg);
  host.broker().add_backend(backend);

  // 3. Pass messages to the broker instead of calling backend APIs.
  auto ask = [&](uint64_t id, int qos, std::string sql) {
    http::BrokerRequest req;
    req.request_id = id;
    req.qos_level = static_cast<uint8_t>(qos);
    req.service = "db";
    req.payload = std::move(sql);
    host.submit(req, [id, &sim](const http::BrokerReply& reply) {
      std::printf("t=%.4fs  request %llu -> %-6s  %.40s%s\n", sim.now(),
                  static_cast<unsigned long long>(id), describe(reply.fidelity),
                  reply.payload.c_str(), reply.payload.size() > 40 ? "..." : "");
    });
  };

  std::printf("-- full fidelity: first access goes to the backend\n");
  ask(1, 3, "SELECT * FROM records WHERE id = 17");
  sim.run();

  std::printf("\n-- cached: an identical query is answered by the broker\n");
  ask(2, 1, "SELECT * FROM records WHERE id = 17");
  sim.run();

  std::printf("\n-- overload: 30 simultaneous class-1 vs class-3 requests\n");
  uint64_t id = 10;
  for (int i = 0; i < 15; ++i) {
    ask(id++, 1, "SELECT * FROM records WHERE id = " + std::to_string(100 + i));
    ask(id++, 3, "SELECT * FROM records WHERE id = " + std::to_string(200 + i));
  }
  sim.run();

  const core::BrokerMetrics& m = host.broker().metrics();
  std::printf("\nper-class summary (issued / forwarded / dropped / cached):\n");
  for (int level = 1; level <= 3; ++level) {
    const auto& c = m.at(level);
    std::printf("  QoS %d: %llu / %llu / %llu / %llu\n", level,
                static_cast<unsigned long long>(c.issued),
                static_cast<unsigned long long>(c.forwarded),
                static_cast<unsigned long long>(c.dropped),
                static_cast<unsigned long long>(c.cache_hits));
  }
  std::printf("\nLower classes are shed first; higher classes keep backend access.\n");
  return 0;
}
