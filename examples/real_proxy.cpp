// Real-socket broker daemon — the distributed model on live TCP, sharded.
//
// Starts (in one process, on localhost): a mini HTTP backend server and a
// ShardedBrokerDaemon — two reactor threads, each running the identical
// single-threaded core::ServiceBroker the simulations use, both accepting on
// one shared port. The shards share one striped result cache and one global
// outstanding-request counter, so a result fetched through one shard serves
// a repeat arriving at the other, and the QoS thresholds apply to the
// service's total load. Shows full/cached/busy fidelities over real sockets.
//
//   $ ./real_proxy
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "net/http_server.h"
#include "net/pipelined_backend.h"
#include "net/sharded_daemon.h"

using namespace sbroker;

int main() {
  // backend: a slow-ish page plus fast ones, on its own reactor thread.
  net::Reactor backend_reactor;
  net::HttpServer backend(backend_reactor, 0,
                          [&](const http::Request& req, net::HttpServer::Responder respond) {
                            respond(http::make_response(200, "page " + req.target));
                          });
  backend.route("/slow", [&](const http::Request&, net::HttpServer::Responder respond) {
    backend_reactor.add_timer(0.2, [respond] {
      respond(http::make_response(200, "slow content"));
    });
  });
  std::thread backend_thread([&] { backend_reactor.run(); });

  net::ShardedBrokerDaemonConfig cfg;
  cfg.shards = 2;
  cfg.broker.rules = core::QosRules{3, 6.0};  // small threshold: easy to overload
  cfg.broker.enable_cache = true;
  cfg.broker.cache_ttl = 5.0;
  net::ShardedBrokerDaemon daemon("web-broker", cfg);
  // One pipelined channel per shard, bound to that shard's reactor — backends
  // are shard-local; only the cache and the load count are shared. The
  // channel mirrors the broker's ConnectionPool bounds, so each shard keeps a
  // handful of multiplexed sockets instead of one per in-flight request.
  core::PoolConfig pool = cfg.broker.pool;
  daemon.add_backend([&, pool](net::Reactor& reactor, size_t) {
    return std::make_shared<net::PipelinedBackend>(
        reactor, backend.port(), net::PipelinedBackend::Config::from_pool(pool));
  });
  daemon.start();

  std::printf("backend on 127.0.0.1:%u, broker daemon on 127.0.0.1:%u "
              "(%zu shards, %s accept sharding)\n",
              backend.port(), daemon.port(), daemon.shards(),
              daemon.kernel_accept_sharding() ? "kernel SO_REUSEPORT" : "round-robin");
  std::printf("admin plane on http://127.0.0.1:%u "
              "(/healthz /metrics /statusz /tracez)\n\n",
              daemon.admin_port());

  auto call = [&](uint64_t id, int qos, const std::string& target) {
    net::BrokerClient client(daemon.port());
    http::BrokerRequest req;
    req.request_id = id;
    req.qos_level = static_cast<uint8_t>(qos);
    req.payload = target;
    auto reply = client.call(req);
    if (reply) {
      std::printf("  %-18s qos=%d -> %-6s %.40s\n", target.c_str(), qos,
                  http::fidelity_name(reply->fidelity), reply->payload.c_str());
    } else {
      std::printf("  %-18s qos=%d -> (no reply)\n", target.c_str(), qos);
    }
  };

  std::printf("-- first fetch forwards; the repeat (a fresh connection, so "
              "possibly\n-- another shard) is served from the shared cache\n");
  call(1, 2, "/front-page");
  call(2, 2, "/front-page");

  std::printf("\n-- saturate with slow fetches, then watch class 1 get shed:\n"
              "-- the threshold counts outstanding requests across BOTH shards\n");
  std::vector<std::thread> slow_clients;
  for (int i = 0; i < 4; ++i) {
    slow_clients.emplace_back([&, i] {
      net::BrokerClient client(daemon.port());
      http::BrokerRequest req;
      req.request_id = static_cast<uint64_t>(100 + i);
      req.qos_level = 3;
      req.payload = "/slow";
      client.call(req);
    });
  }
  // Give the slow calls a moment to occupy the global outstanding window.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  call(200, 1, "/low-priority");   // bound 6*1/3 = 2 -> busy
  call(201, 3, "/high-priority");  // bound 6       -> forwarded
  for (auto& t : slow_clients) t.join();

  // The broker's own view of the run, scraped the way an operator would.
  http::Request scrape;
  scrape.target = "/statusz";
  scrape.headers.set("Host", "localhost");
  if (auto statusz = net::http_fetch(daemon.admin_port(), scrape)) {
    std::printf("\n/statusz (broker-side stage latencies): %.120s...\n",
                statusz->body.c_str());
  }

  core::BrokerMetrics m = daemon.aggregate_metrics();
  daemon.stop();
  backend_reactor.stop();
  backend_thread.join();

  std::printf("\nbroker totals (all shards): issued=%llu forwarded=%llu "
              "dropped=%llu cached=%llu\n",
              static_cast<unsigned long long>(m.total().issued),
              static_cast<unsigned long long>(m.total().forwarded),
              static_cast<unsigned long long>(m.total().dropped),
              static_cast<unsigned long long>(m.total().cache_hits));
  std::printf("shared cache: %zu entries, hit ratio %.2f\n",
              daemon.shared_cache().size(), daemon.shared_cache().hit_ratio());
  std::printf("backend channel: %llu backend calls multiplexed over %llu "
              "connections\n",
              static_cast<unsigned long long>(m.transport.calls),
              static_cast<unsigned long long>(m.transport.connections_opened));
  return 0;
}
