// Real-socket broker daemon — the distributed model on live TCP.
//
// Starts (in one process, on localhost): a mini HTTP backend server, a
// BrokerDaemon running the identical core::ServiceBroker the simulations
// use, and a few wire-protocol clients. Shows full/cached/busy fidelities
// over real sockets.
//
//   $ ./real_proxy
#include <chrono>
#include <cstdio>
#include <thread>

#include "net/broker_daemon.h"
#include "net/http_client.h"
#include "net/http_server.h"

using namespace sbroker;

int main() {
  net::Reactor reactor;

  // backend: a slow-ish page plus a fast one.
  net::HttpServer backend(reactor, 0,
                          [&](const http::Request& req, net::HttpServer::Responder respond) {
                            respond(http::make_response(200, "page " + req.target));
                          });
  backend.route("/slow", [&](const http::Request&, net::HttpServer::Responder respond) {
    reactor.add_timer(0.2, [respond] {
      respond(http::make_response(200, "slow content"));
    });
  });

  net::BrokerDaemonConfig cfg;
  cfg.broker.rules = core::QosRules{3, 6.0};  // small threshold: easy to overload
  cfg.broker.enable_cache = true;
  cfg.broker.cache_ttl = 5.0;
  net::BrokerDaemon daemon(reactor, "web-broker", cfg);
  daemon.add_backend(std::make_shared<net::HttpBackend>(reactor, backend.port()));

  std::thread reactor_thread([&] { reactor.run(); });
  std::printf("backend on 127.0.0.1:%u, broker daemon on 127.0.0.1:%u\n\n",
              backend.port(), daemon.port());

  auto call = [&](uint64_t id, int qos, const std::string& target) {
    net::BrokerClient client(daemon.port());
    http::BrokerRequest req;
    req.request_id = id;
    req.qos_level = static_cast<uint8_t>(qos);
    req.payload = target;
    auto reply = client.call(req);
    if (reply) {
      std::printf("  %-18s qos=%d -> %-6s %.40s\n", target.c_str(), qos,
                  http::fidelity_name(reply->fidelity), reply->payload.c_str());
    } else {
      std::printf("  %-18s qos=%d -> (no reply)\n", target.c_str(), qos);
    }
  };

  std::printf("-- first fetch forwards, repeat is served from the broker cache\n");
  call(1, 2, "/front-page");
  call(2, 2, "/front-page");

  std::printf("\n-- saturate with slow fetches, then watch class 1 get shed\n");
  std::vector<std::thread> slow_clients;
  for (int i = 0; i < 4; ++i) {
    slow_clients.emplace_back([&, i] {
      net::BrokerClient client(daemon.port());
      http::BrokerRequest req;
      req.request_id = static_cast<uint64_t>(100 + i);
      req.qos_level = 3;
      req.payload = "/slow";
      client.call(req);
    });
  }
  // Give the slow calls a moment to occupy the broker's outstanding window.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  call(200, 1, "/low-priority");   // bound 4/3 -> busy
  call(201, 3, "/high-priority");  // bound 4   -> forwarded
  for (auto& t : slow_clients) t.join();

  reactor.stop();
  reactor_thread.join();

  const core::BrokerMetrics& m = daemon.broker().metrics();
  std::printf("\nbroker totals: issued=%llu forwarded=%llu dropped=%llu cached=%llu\n",
              static_cast<unsigned long long>(m.total().issued),
              static_cast<unsigned long long>(m.total().forwarded),
              static_cast<unsigned long long>(m.total().dropped),
              static_cast<unsigned long long>(m.total().cache_hits));
  return 0;
}
