// Travel agency / supply chain — loosely coupled backends, multitasking,
// and transaction integrity (paper Sections I and III).
//
// "A travel agency has no sole control over airliners' ticketing services.
// Rather it contacts multiple airlines and selects the best deals" — here a
// computer manufacturer buys a monitor (vendor A, step 1), a video card
// (vendor B, step 2), then returns to vendor A to finalize the bundle
// (step 3). Vendor links are WAN with jitter; one vendor gets congested
// mid-run. Brokers escalate the priority of accesses belonging to deep
// transaction steps, so purchases already underway survive while fresh
// step-1 shopping is shed.
//
//   $ ./travel_agency [purchases=40]
#include <cstdio>

#include "db/dataset.h"
#include "srv/broker_host.h"
#include "srv/cgi_backend.h"
#include "util/config.h"

using namespace sbroker;

namespace {

struct Stats {
  int completed = 0;
  int aborted = 0;
  int parallel_quotes = 0;
  int denied_by_step[4] = {0, 0, 0, 0};  // index = transaction step
};

}  // namespace

int main(int argc, char** argv) {
  util::Config cfg = util::Config::from_args(argc, argv);
  int purchases = static_cast<int>(cfg.get_int("purchases", 40));

  sim::Simulation sim;

  // Two loosely coupled vendors behind WAN links.
  auto make_vendor = [&](const std::string& name, uint64_t seed) {
    srv::CgiBackendConfig vendor_cfg;
    vendor_cfg.processing_time = 0.2;
    vendor_cfg.capacity = 3;
    vendor_cfg.link = sim::wan_profile();
    vendor_cfg.link_seed = seed;
    return std::make_shared<srv::SimCgiBackend>(sim, name, vendor_cfg);
  };
  auto monitor_vendor = make_vendor("monitor-vendor", 100);
  auto card_vendor = make_vendor("card-vendor", 200);

  core::BrokerConfig broker_cfg;
  broker_cfg.rules = core::QosRules{3, 6.0};
  broker_cfg.enable_cache = false;
  broker_cfg.serve_stale_on_drop = false;
  broker_cfg.txn = core::TxnConfig{1, 120.0};

  srv::BrokerHost monitor_broker(sim, "monitor-broker", broker_cfg, sim::ipc_profile(), 301);
  monitor_broker.broker().add_backend(monitor_vendor);
  srv::BrokerHost card_broker(sim, "card-broker", broker_cfg, sim::ipc_profile(), 302);
  card_broker.broker().add_backend(card_vendor);

  // Brokers exchange transaction state (Section III): the card broker sees
  // that step 1 already ran at the monitor broker and escalates step 2.
  auto shared_txns = std::make_shared<core::TransactionTracker>(
      broker_cfg.rules, broker_cfg.txn);
  monitor_broker.broker().share_transactions(shared_txns);
  card_broker.broker().share_transactions(shared_txns);

  Stats stats;
  uint64_t next_request = 1;

  auto access = [&](srv::BrokerHost& host, uint64_t txn, int step, std::string what,
                    std::function<void(bool)> done) {
    http::BrokerRequest req;
    req.request_id = next_request++;
    req.qos_level = 1;
    req.txn_id = txn;
    req.txn_step = static_cast<uint8_t>(step);
    req.payload = std::move(what);
    host.submit(req, [&stats, step, done](const http::BrokerReply& reply) {
      bool ok = reply.fidelity == http::Fidelity::kFull;
      if (!ok && step >= 1 && step <= 3) ++stats.denied_by_step[step];
      done(ok);
    });
  };

  // Multitasking (Section III): quote both vendors in parallel before the
  // transaction starts — independent brokers overlap the WAN round trips.
  auto purchase = [&](uint64_t txn, double start) {
    sim.at(start, [&, txn]() {
      auto remaining = std::make_shared<int>(2);
      // `remaining` must be captured by value: this callback outlives the
      // enclosing scheduling lambda's stack frame.
      auto proceed = [&, txn, remaining](bool) {
        if (--*remaining > 0) return;
        ++stats.parallel_quotes;
        // Step 1: select a monitor.
        access(monitor_broker, txn, 1, "/select-monitor", [&, txn](bool ok1) {
          if (!ok1) {
            ++stats.aborted;
            return;
          }
          // Step 2: pick the video card elsewhere.
          access(card_broker, txn, 2, "/select-card", [&, txn](bool ok2) {
            if (!ok2) {
              ++stats.aborted;
              return;
            }
            // Step 3: back to the monitor vendor to match and buy.
            access(monitor_broker, txn, 3, "/finalize-bundle", [&, txn](bool ok3) {
              if (ok3) {
                ++stats.completed;
              } else {
                ++stats.aborted;
              }
              monitor_broker.broker().transactions().complete(txn);
              card_broker.broker().transactions().complete(txn);
            });
          });
        });
      };
      access(monitor_broker, txn, 1, "/quote-monitor", proceed);
      access(card_broker, txn, 1, "/quote-card", proceed);
    });
  };

  // Burst of purchases; the monitor vendor congests midway for 10 seconds.
  for (int i = 0; i < purchases; ++i) {
    purchase(static_cast<uint64_t>(i + 1), 0.5 * i);
  }
  double congestion_start = 0.5 * purchases / 2;
  sim.at(congestion_start, [&]() {
    std::printf("t=%.1fs: monitor vendor channel congested\n", sim.now());
    monitor_vendor->request_link().set_down(true);
    // The broker replies 'error' for in-flight work lost to the link; new
    // accesses keep being admitted and fail fast until the channel heals.
  });
  sim.at(congestion_start + 10.0, [&]() {
    std::printf("t=%.1fs: monitor vendor channel restored\n", sim.now());
    monitor_vendor->request_link().set_down(false);
  });

  sim.run();

  std::printf("\n%d purchases attempted: %d completed, %d aborted\n", purchases,
              stats.completed, stats.aborted);
  std::printf("denied accesses by transaction step: step1=%d step2=%d step3=%d\n",
              stats.denied_by_step[1], stats.denied_by_step[2], stats.denied_by_step[3]);
  std::printf("\nDeep transaction steps ran at escalated priority: overload and the\n"
              "congested channel shed step-1 shopping far more than step-3 checkouts.\n");
  return 0;
}
