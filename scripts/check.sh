#!/bin/sh
# Full local verification gate: plain build + full ctest, then TSan, ASan and
# UBSan builds of the concurrency-heavy suites. core_test carries the
# single-flight/SWR/FlightTable suites and net_test the daemon-level stampede
# suites, so all three sanitizers cover the miss-coalescing paths. Run from
# anywhere; trees live at the repo root (build/, build-tsan/, build-asan/,
# build-ubsan/) and are reused across runs.
#
#   scripts/check.sh          # everything
#   scripts/check.sh plain    # just the plain build + full ctest
#   scripts/check.sh tsan     # just the TSan core/net suites
#   scripts/check.sh asan     # just the ASan core/net/integration suites
#   scripts/check.sh ubsan    # just the UBSan core/net/obs suites
#   scripts/check.sh iouring  # net suites with -DSBROKER_IOURING=ON (falls
#                             # back to epoll at runtime if the kernel or the
#                             # missing liburing headers say no)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 2)
what=${1:-all}

run_plain() {
  echo "== plain build + full ctest"
  cmake -B "$repo_root/build" -S "$repo_root"
  cmake --build "$repo_root/build" -j "$jobs"
  ctest --test-dir "$repo_root/build" --output-on-failure -j "$jobs"
}

run_tsan() {
  echo "== TSan build (core_test, net_test, fed_test, overload + federation smokes)"
  cmake -B "$repo_root/build-tsan" -S "$repo_root" -DSBROKER_SANITIZE=thread
  cmake --build "$repo_root/build-tsan" -j "$jobs" \
    --target core_test net_test fed_test daemon_loadgen federation_demo
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/tests/core_test"
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/tests/net_test"
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/tests/fed_test"
  # Flash-crowd overload smoke under TSan: the LIFO flip, AIMD feedback and
  # per-class shed counters all run on live shard reactors here (the plain
  # tree runs the same command via ctest bench_daemon_overload_smoke).
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/bench/daemon_loadgen" \
    shards=1 pipeline=1 clients=6 seconds=2.4 ramp=0.4 crowd=10 keys=64 \
    cache=0 timeout=150 svc=10 replicas=1 window=2 threshold=150 backoff=20 \
    oeval=0.1 overload=static,aimd,aimd+lifo check=1 out=
  # Open-loop smoke under TSan: the arrival-schedule sender threads, the
  # netem relay reactor and the shard reactors all run instrumented; check=1
  # gates sent == scheduled (no coordinated omission) and corrected p99 >=
  # uncorrected p99 (the plain tree runs the same commands via ctest
  # bench_daemon_openloop_smoke / bench_daemon_link_smoke).
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/bench/daemon_loadgen" \
    shards=1 pipeline=1 clients=8 seconds=0.6 keys=64 cache=0 \
    arrivals=poisson rate=800 seed=7 link=custom:2:2:0 check=1 out=
  # Federation smokes under TSan: every forked member daemon (peer channels,
  # gossip timers, admin scrapes) runs instrumented; the conservation and
  # kill-failover gates are the same ones ctest runs in the plain tree.
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/examples/federation_demo" \
    peers=3 clients=6 requests=1920 keys=64 check=1 out=
  TSAN_OPTIONS="halt_on_error=0" "$repo_root/build-tsan/examples/federation_demo" \
    peers=3 clients=6 requests=1200 keys=64 kill=1 deadline=1500 out=
}

run_asan() {
  echo "== ASan build (core_test, net_test, fed_test, integration_test)"
  cmake -B "$repo_root/build-asan" -S "$repo_root" -DSBROKER_SANITIZE=address
  cmake --build "$repo_root/build-asan" -j "$jobs" \
    --target core_test net_test fed_test integration_test
  # No leak suppressions: reactors break TcpConn<->owner cycles at teardown
  # (Reactor::set_teardown / defer_destroy), so exit-time leaks fail for real.
  "$repo_root/build-asan/tests/core_test"
  "$repo_root/build-asan/tests/net_test"
  "$repo_root/build-asan/tests/fed_test"
  "$repo_root/build-asan/tests/integration_test"
}

run_ubsan() {
  echo "== UBSan build (core_test, net_test, fed_test, obs_test)"
  cmake -B "$repo_root/build-ubsan" -S "$repo_root" -DSBROKER_SANITIZE=undefined
  cmake --build "$repo_root/build-ubsan" -j "$jobs" \
    --target core_test net_test fed_test obs_test
  UBSAN_OPTIONS="halt_on_error=1,print_stacktrace=1" \
    "$repo_root/build-ubsan/tests/core_test"
  UBSAN_OPTIONS="halt_on_error=1,print_stacktrace=1" \
    "$repo_root/build-ubsan/tests/net_test"
  UBSAN_OPTIONS="halt_on_error=1,print_stacktrace=1" \
    "$repo_root/build-ubsan/tests/fed_test"
  UBSAN_OPTIONS="halt_on_error=1,print_stacktrace=1" \
    "$repo_root/build-ubsan/tests/obs_test"
}

run_iouring() {
  echo "== io_uring build (net_test + daemon_loadgen binary-ingress smokes)"
  cmake -B "$repo_root/build-iouring" -S "$repo_root" -DSBROKER_IOURING=ON
  cmake --build "$repo_root/build-iouring" -j "$jobs" \
    --target net_test daemon_loadgen
  "$repo_root/build-iouring/tests/net_test"
  # iouring=1 opts every shard reactor into ring submission; on kernels that
  # refuse a ring this still passes through the epoll/writev fallback.
  "$repo_root/build-iouring/bench/daemon_loadgen" shards=1 pipeline=0 \
    clients=8 seconds=0.4 keys=64 proto=bin burst=8 iouring=1 check=1 out=
}

case "$what" in
  plain) run_plain ;;
  tsan) run_tsan ;;
  asan) run_asan ;;
  ubsan) run_ubsan ;;
  iouring) run_iouring ;;
  all) run_plain; run_tsan; run_asan; run_ubsan; run_iouring ;;
  *) echo "usage: scripts/check.sh [plain|tsan|asan|ubsan|iouring|all]" >&2; exit 2 ;;
esac

echo "== check.sh: all requested suites passed"
