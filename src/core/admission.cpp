#include "core/admission.h"

#include <cstdlib>

namespace sbroker::core {

const char* admission_decision_name(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kForward:
      return "forward";
    case AdmissionDecision::kDropOverLimit:
      return "drop-over-limit";
    case AdmissionDecision::kDropContract:
      return "drop-contract";
  }
  std::abort();  // exhaustive switch above (-Wswitch keeps it that way)
}

AdmissionController::AdmissionController(QosRules rules,
                                         const OverloadConfig& overload)
    : rules_(rules),
      overload_(make_overload_controller(overload, rules)),
      contracts_(static_cast<size_t>(rules.num_levels)) {}

void AdmissionController::set_contract(QosLevel level, double rate, double burst) {
  level = rules_.clamp_level(level);
  contracts_[static_cast<size_t>(level) - 1].emplace(rate, burst);
}

AdmissionDecision AdmissionController::decide(QosLevel level, double outstanding,
                                              double now) {
  level = rules_.clamp_level(level);
  if (!overload_->admit(level, outstanding)) {
    ++dropped_over_limit_;
    return AdmissionDecision::kDropOverLimit;
  }
  auto& contract = contracts_[static_cast<size_t>(level) - 1];
  if (contract && !contract->try_acquire(now)) {
    ++dropped_contract_;
    return AdmissionDecision::kDropContract;
  }
  ++forwarded_;
  return AdmissionDecision::kForward;
}

}  // namespace sbroker::core
