// Admission control: the broker-side overload gate.
//
// Combines the paper's threshold rule — delegated to the pluggable
// OverloadController (overload.h), which owns the live effective
// threshold — with optional per-class traffic contracts: "When traffic
// intensity of QoS classes exceed their limits, their requests are dropped
// and other classes are not affected" (Section III). Contracts are token
// buckets per class; a request must pass both its class contract and the
// controller's outstanding-threshold rule to be forwarded.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/overload.h"
#include "core/qos.h"
#include "util/token_bucket.h"

namespace sbroker::core {

enum class AdmissionDecision {
  kForward,          ///< send to the backend
  kDropOverLimit,    ///< outstanding count exceeded the class bound
  kDropContract,     ///< class exceeded its contracted rate
};

const char* admission_decision_name(AdmissionDecision d);

class AdmissionController {
 public:
  /// `overload` selects the threshold policy; the default (static, no
  /// feedback) reproduces the paper's fixed rule exactly.
  explicit AdmissionController(QosRules rules, const OverloadConfig& overload = {});

  /// Installs a rate contract for `level`: `rate` requests/second with
  /// `burst` burst capacity. Levels without contracts are unconstrained.
  void set_contract(QosLevel level, double rate, double burst);

  /// Decides for one request of class `level`, given the broker's current
  /// outstanding count, at time `now` (seconds). A kForward decision debits
  /// the class contract.
  AdmissionDecision decide(QosLevel level, double outstanding, double now);

  const QosRules& rules() const { return rules_; }

  /// The threshold policy behind decide(); owners feed it measurements
  /// (OverloadController::observe) and read its live effective threshold.
  OverloadController& overload() { return *overload_; }
  const OverloadController& overload() const { return *overload_; }

  uint64_t forwarded() const { return forwarded_; }
  uint64_t dropped_over_limit() const { return dropped_over_limit_; }
  uint64_t dropped_contract() const { return dropped_contract_; }

 private:
  QosRules rules_;
  std::unique_ptr<OverloadController> overload_;
  std::vector<std::optional<util::TokenBucket>> contracts_;  // index: level-1
  uint64_t forwarded_ = 0;
  uint64_t dropped_over_limit_ = 0;
  uint64_t dropped_contract_ = 0;
};

}  // namespace sbroker::core
