// Per-request bump allocator.
//
// A request on the daemon hot path needs a handful of short-lived buffers:
// the canonical query key, the RequestContext itself, and scratch for the
// encoded response. Allocating each from the global heap costs a malloc/free
// round-trip per buffer per request. An Arena instead carves them out of one
// block with pointer bumps and releases everything in a single reset() at
// the request's exactly-once terminal.
//
// Steady state performs zero heap allocations: reset() keeps the first
// block, so a pooled arena that has seen one request serves every later
// request of similar size from memory it already owns.
//
// Not thread-safe; an arena belongs to one reactor shard at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

namespace sbroker::core {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 4096;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < kMinBlockBytes ? kMinBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (power of two). Never null;
  /// oversized requests get a dedicated block.
  void* allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + size <= limit_) {
      cursor_ = p + size;
      used_ += size;
      return reinterpret_cast<void*>(p);
    }
    return allocate_slow(size, align);
  }

  /// Constructs a T in arena memory. The arena does NOT run destructors —
  /// callers owning non-trivial members must destroy explicitly before
  /// reset().
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Copies `s` into the arena and returns a view of the copy, stable until
  /// reset().
  std::string_view store(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Returns raw char scratch of `size` bytes (for response encoding).
  char* scratch(size_t size) { return static_cast<char*>(allocate(size, 1)); }

  /// Frees everything allocated since the last reset. The first block is
  /// retained so a warmed arena allocates nothing on the next request; any
  /// overflow blocks are returned to the heap.
  void reset() {
    used_ = 0;
    if (blocks_.size() > 1) blocks_.resize(1);
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<uintptr_t>(blocks_.front().get());
      limit_ = cursor_ + block_bytes_;
    } else {
      cursor_ = limit_ = 0;
    }
  }

  /// Bytes handed out since the last reset (diagnostics/tests).
  size_t bytes_used() const { return used_; }
  /// Number of blocks currently owned (1 in steady state).
  size_t block_count() const { return blocks_.size(); }

 private:
  static constexpr size_t kMinBlockBytes = 256;

  void* allocate_slow(size_t size, size_t align) {
    // Oversized request: dedicated block, current block stays active so its
    // remaining space is not wasted.
    if (size + align > block_bytes_) {
      auto block = std::make_unique<char[]>(size + align);
      uintptr_t base = reinterpret_cast<uintptr_t>(block.get());
      uintptr_t p = (base + (align - 1)) & ~(uintptr_t{align} - 1);
      // Keep the active block last; insert the jumbo block before it.
      blocks_.insert(blocks_.empty() ? blocks_.end() : blocks_.end() - 1, std::move(block));
      used_ += size;
      return reinterpret_cast<void*>(p);
    }
    auto block = std::make_unique<char[]>(block_bytes_);
    cursor_ = reinterpret_cast<uintptr_t>(block.get());
    limit_ = cursor_ + block_bytes_;
    blocks_.push_back(std::move(block));
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    cursor_ = p + size;
    used_ += size;
    return reinterpret_cast<void*>(p);
  }

  size_t block_bytes_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t used_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

/// Free-list of warmed arenas. The daemon acquires one per in-flight request
/// and releases it at the terminal; after warm-up no acquire touches the
/// heap.
class ArenaPool {
 public:
  explicit ArenaPool(size_t block_bytes = Arena::kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  std::unique_ptr<Arena> acquire() {
    if (!free_.empty()) {
      std::unique_ptr<Arena> arena = std::move(free_.back());
      free_.pop_back();
      return arena;
    }
    return std::make_unique<Arena>(block_bytes_);
  }

  void release(std::unique_ptr<Arena> arena) {
    if (arena == nullptr) return;
    arena->reset();
    if (free_.size() < kMaxPooled) free_.push_back(std::move(arena));
  }

  size_t pooled() const { return free_.size(); }

 private:
  static constexpr size_t kMaxPooled = 1024;

  size_t block_bytes_;
  std::vector<std::unique_ptr<Arena>> free_;
};

}  // namespace sbroker::core
