// Backend abstraction the broker forwards to.
//
// The broker core is I/O-free: a Backend is anything that can asynchronously
// answer a payload. The simulation substrate wraps a DES station + link +
// database; the real-socket substrate wraps a TCP client. Completion
// callbacks carry the caller's notion of *now* so the core never reads a
// clock itself.
#pragma once

#include <functional>
#include <string>

namespace sbroker::core {

class Backend {
 public:
  /// (now, ok, reply payload). `ok == false` means the backend failed or was
  /// unreachable; `payload` may then carry a diagnostic.
  using Completion = std::function<void(double now, bool ok, const std::string& payload)>;

  struct Call {
    std::string payload;
    /// True when the connection pool opened a fresh physical connection for
    /// this call; transports charge their setup latency accordingly.
    bool needs_connection_setup = false;
  };

  virtual ~Backend() = default;

  /// Issues `call`; `done` fires exactly once, later or re-entrantly.
  virtual void invoke(const Call& call, Completion done) = 0;
};

}  // namespace sbroker::core
