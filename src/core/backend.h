// Backend abstraction the broker forwards to.
//
// The broker core is I/O-free: a Backend is anything that can asynchronously
// answer a payload. The simulation substrate wraps a DES station + link +
// database; the real-socket substrate wraps a TCP client. Completion
// callbacks carry the caller's notion of *now* so the core never reads a
// clock itself.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "core/request.h"

namespace sbroker::core {

/// Wire-level counters a transport-backed Backend can report. Pure data so
/// the I/O-free core can aggregate them (BrokerMetrics carries one per
/// broker) without knowing anything about sockets. Backends without a real
/// transport (simulation, in-process) report all-zero stats.
struct ChannelStats {
  uint64_t calls = 0;               ///< invoke() count
  uint64_t connections_opened = 0;  ///< physical connection setups
  uint64_t open_connections = 0;    ///< currently open physical connections
  uint64_t flushes = 0;             ///< coalesced write flushes to sockets
  uint64_t requests_written = 0;    ///< requests carried by those flushes
  uint64_t rejections = 0;          ///< channel-saturated backpressure failures
  uint64_t retries = 0;             ///< exchanges re-issued after connection loss
  uint64_t timeouts = 0;            ///< half-stalled exchanges failed on deadline
  uint64_t cancels = 0;             ///< exchanges abandoned via a cancel token
  uint64_t peak_in_flight = 0;      ///< deepest pipeline seen on one connection

  void merge(const ChannelStats& other) {
    calls += other.calls;
    connections_opened += other.connections_opened;
    open_connections += other.open_connections;
    flushes += other.flushes;
    requests_written += other.requests_written;
    rejections += other.rejections;
    retries += other.retries;
    timeouts += other.timeouts;
    cancels += other.cancels;
    peak_in_flight = std::max(peak_in_flight, other.peak_in_flight);
  }
};

class Backend {
 public:
  /// (now, ok, reply payload). `ok == false` means the backend failed or was
  /// unreachable; `payload` may then carry a diagnostic.
  using Completion = std::function<void(double now, bool ok, const std::string& payload)>;

  struct Call {
    std::string payload;
    /// True when the connection pool opened a fresh physical connection for
    /// this call; transports charge their setup latency accordingly.
    bool needs_connection_setup = false;
    /// Remaining deadline budget at dispatch, seconds; 0 = unbounded. Real
    /// transports use it to bound how long a half-stalled connection may sit
    /// readable-but-incomplete, and forward it downstream (X-Deadline-Ms).
    double timeout = 0.0;
  };

  virtual ~Backend() = default;

  /// Issues `call`; `done` fires exactly once, later or re-entrantly.
  virtual void invoke(const Call& call, Completion done) = 0;

  /// Issues `call` with a cancellation token. When the caller abandons the
  /// exchange (deadline expiry harvested its last member), `token->cancel()`
  /// fires on the shared timeline; the backend should stop the work — kill a
  /// stalled connection, re-issue its other queued exchanges — and complete
  /// promptly with ok=false. The default ignores the token, so backends that
  /// predate cancellation keep working unchanged (their completions after a
  /// harvest are counted as late and dropped by the broker).
  virtual void invoke(const Call& call, const CancelTokenPtr& token, Completion done) {
    (void)token;
    invoke(call, std::move(done));
  }

  /// Wire-level counters for transport-backed implementations; the default
  /// (simulated / in-process backends) reports zeros.
  virtual ChannelStats channel_stats() const { return {}; }
};

}  // namespace sbroker::core
