#include "core/balance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sbroker::core {
namespace {

// A replica with no latency sample yet scores as if it were this fast, so
// cold replicas are explored before loaded ones and the outstanding factor
// still spreads concurrent picks across several cold replicas.
constexpr double kColdLatency = 1e-6;

// Glide rate toward a *faster* sample. Slower samples are adopted outright
// (the peak-decaying part), so one slow burst is visible immediately while
// recovery needs a couple of confirming fast samples.
constexpr double kDownGain = 0.5;

}  // namespace

const char* balance_policy_name(BalancePolicy p) {
  switch (p) {
    case BalancePolicy::kRandom:
      return "random";
    case BalancePolicy::kRoundRobin:
      return "round-robin";
    case BalancePolicy::kLeastOutstanding:
      return "least-outstanding";
    case BalancePolicy::kWeighted:
      return "weighted";
    case BalancePolicy::kEwma:
      return "ewma";
    case BalancePolicy::kP2c:
      return "p2c";
  }
  return "?";
}

std::optional<BalancePolicy> parse_balance_policy(std::string_view name) {
  if (name == "random") return BalancePolicy::kRandom;
  if (name == "round-robin" || name == "rr") return BalancePolicy::kRoundRobin;
  if (name == "least-outstanding" || name == "least")
    return BalancePolicy::kLeastOutstanding;
  if (name == "weighted") return BalancePolicy::kWeighted;
  if (name == "ewma") return BalancePolicy::kEwma;
  if (name == "p2c") return BalancePolicy::kP2c;
  return std::nullopt;
}

LoadBalancer::LoadBalancer(BalancePolicy policy, util::Rng rng,
                           HealthConfig health, double ewma_tau)
    : policy_(policy),
      rng_(rng),
      health_config_(health),
      ewma_tau_(std::max(ewma_tau, 1e-3)) {}

size_t LoadBalancer::add_backend(double weight) {
  outstanding_.push_back(0);
  weights_.push_back(std::max(weight, 0.01));
  picks_.push_back(0);
  health_.push_back(Health{});
  ewma_.push_back(Ewma{});
  return outstanding_.size() - 1;
}

bool LoadBalancer::eligible(size_t i, int pass,
                            std::optional<size_t> avoid) const {
  if (pass >= 2) return true;
  if (health_[i].ejected) return false;
  return pass >= 1 || !avoid || *avoid != i;
}

size_t LoadBalancer::count_eligible(int pass,
                                    std::optional<size_t> avoid) const {
  size_t n = 0;
  for (size_t i = 0; i < outstanding_.size(); ++i) {
    if (eligible(i, pass, avoid)) ++n;
  }
  return n;
}

size_t LoadBalancer::nth_eligible(size_t rank, int pass,
                                  std::optional<size_t> avoid) const {
  for (size_t i = 0; i < outstanding_.size(); ++i) {
    if (!eligible(i, pass, avoid)) continue;
    if (rank == 0) return i;
    --rank;
  }
  assert(false && "rank out of range");
  return 0;
}

double LoadBalancer::ewma_seconds(size_t backend, double now) const {
  const Ewma& e = ewma_.at(backend);
  if (e.value <= 0.0) return 0.0;
  double dt = now - e.stamp;
  if (dt <= 0.0) return e.value;
  return e.value * std::exp(-dt / ewma_tau_);
}

double LoadBalancer::ewma_score(size_t i, double now) const {
  double latency = std::max(ewma_seconds(i, now), kColdLatency);
  return latency * static_cast<double>(outstanding_[i] + 1);
}

size_t LoadBalancer::pick_eligible(size_t count, int pass,
                                   std::optional<size_t> avoid, double now) {
  assert(count > 0);
  switch (policy_) {
    case BalancePolicy::kRandom:
      return nth_eligible(
          static_cast<size_t>(
              rng_.uniform_int(0, static_cast<int64_t>(count) - 1)),
          pass, avoid);
    case BalancePolicy::kRoundRobin: {
      // Scan forward from the cursor so the rotation is preserved across the
      // holes left by ejected replicas.
      for (size_t step = 0; step < outstanding_.size(); ++step) {
        size_t index = (rr_next_ + step) % outstanding_.size();
        if (eligible(index, pass, avoid)) {
          rr_next_ = (index + 1) % outstanding_.size();
          return index;
        }
      }
      assert(false && "eligible set vanished");
      return 0;
    }
    case BalancePolicy::kLeastOutstanding: {
      size_t chosen = outstanding_.size();
      for (size_t i = 0; i < outstanding_.size(); ++i) {
        if (!eligible(i, pass, avoid)) continue;
        if (chosen == outstanding_.size() ||
            outstanding_[i] < outstanding_[chosen]) {
          chosen = i;
        }
      }
      return chosen;
    }
    case BalancePolicy::kWeighted: {
      size_t chosen = outstanding_.size();
      double best = 0.0;
      for (size_t i = 0; i < outstanding_.size(); ++i) {
        if (!eligible(i, pass, avoid)) continue;
        double load = static_cast<double>(outstanding_[i]) / weights_[i];
        if (chosen == outstanding_.size() || load < best) {
          best = load;
          chosen = i;
        }
      }
      return chosen;
    }
    case BalancePolicy::kEwma: {
      size_t chosen = outstanding_.size();
      double best = 0.0;
      for (size_t i = 0; i < outstanding_.size(); ++i) {
        if (!eligible(i, pass, avoid)) continue;
        double score = ewma_score(i, now);
        if (chosen == outstanding_.size() || score < best ||
            (score == best && outstanding_[i] < outstanding_[chosen])) {
          best = score;
          chosen = i;
        }
      }
      return chosen;
    }
    case BalancePolicy::kP2c: {
      if (count == 1) return nth_eligible(0, pass, avoid);
      // Two distinct uniform ranks; one scan resolves both to indices.
      size_t ra = static_cast<size_t>(
          rng_.uniform_int(0, static_cast<int64_t>(count) - 1));
      size_t rb = static_cast<size_t>(
          rng_.uniform_int(0, static_cast<int64_t>(count) - 2));
      if (rb >= ra) ++rb;
      size_t a = nth_eligible(ra, pass, avoid);
      size_t b = nth_eligible(rb, pass, avoid);
      double sa = ewma_score(a, now);
      double sb = ewma_score(b, now);
      if (sa < sb) return a;
      if (sb < sa) return b;
      return outstanding_[a] <= outstanding_[b] ? a : b;
    }
  }
  assert(false && "unknown policy");
  return 0;
}

std::optional<size_t> LoadBalancer::pick(double now, std::optional<size_t> avoid,
                                         bool* probe) {
  if (probe) *probe = false;
  if (outstanding_.empty()) return std::nullopt;

  // A replica whose ejection window elapsed gets exactly one half-open probe
  // request before anything else; its outcome (via report) decides recovery.
  // Retries never double as probes — `avoid` is the replica that just failed.
  for (size_t i = 0; i < health_.size(); ++i) {
    Health& h = health_[i];
    if (h.ejected && !h.probing && now >= h.eject_until &&
        (!avoid || *avoid != i)) {
      h.probing = true;
      ++probes_issued_;
      ++outstanding_[i];
      ++picks_[i];
      if (probe) *probe = true;
      return i;
    }
  }

  // Relax `avoid`, then health: with everything ejected the broker still
  // forwards somewhere rather than failing outright.
  int pass = 0;
  size_t count = count_eligible(0, avoid);
  if (count == 0) {
    pass = 1;
    count = count_eligible(1, avoid);
  }
  if (count == 0) {
    pass = 2;
    count = outstanding_.size();
  }

  size_t chosen = pick_eligible(count, pass, avoid, now);
  ++outstanding_[chosen];
  ++picks_[chosen];
  return chosen;
}

void LoadBalancer::complete(size_t backend) {
  assert(backend < outstanding_.size() && outstanding_[backend] > 0);
  --outstanding_[backend];
}

ReplicaEvent LoadBalancer::report(size_t backend, bool ok, double now,
                                  double latency) {
  if (ok && latency >= 0.0) {
    // Peak-decaying update: a slower sample is adopted outright, a faster
    // one is approached at kDownGain per sample from the aged estimate.
    Ewma& e = ewma_.at(backend);
    double aged = ewma_seconds(backend, now);
    e.value = latency >= aged ? latency : aged + (latency - aged) * kDownGain;
    e.stamp = now;
  }
  if (health_config_.eject_after <= 0) return ReplicaEvent::kNone;
  Health& h = health_.at(backend);
  if (ok) {
    h.consecutive_failures = 0;
    if (h.ejected) {
      h.ejected = false;
      h.probing = false;
      h.eject_until = 0.0;
      return ReplicaEvent::kRecovered;
    }
    return ReplicaEvent::kNone;
  }
  ++h.consecutive_failures;
  if (h.probing) {
    // Failed half-open probe: a fresh ejection window starts.
    h.probing = false;
    h.eject_until = now + health_config_.eject_duration;
    return ReplicaEvent::kEjected;
  }
  if (!h.ejected && h.consecutive_failures >= health_config_.eject_after) {
    h.ejected = true;
    h.eject_until = now + health_config_.eject_duration;
    return ReplicaEvent::kEjected;
  }
  return ReplicaEvent::kNone;
}

size_t LoadBalancer::ejected_count() const {
  size_t n = 0;
  for (const Health& h : health_) n += h.ejected ? 1 : 0;
  return n;
}

}  // namespace sbroker::core
