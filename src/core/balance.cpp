#include "core/balance.h"

#include <algorithm>
#include <cassert>

namespace sbroker::core {

const char* balance_policy_name(BalancePolicy p) {
  switch (p) {
    case BalancePolicy::kRandom:
      return "random";
    case BalancePolicy::kRoundRobin:
      return "round-robin";
    case BalancePolicy::kLeastOutstanding:
      return "least-outstanding";
    case BalancePolicy::kWeighted:
      return "weighted";
  }
  return "?";
}

LoadBalancer::LoadBalancer(BalancePolicy policy, util::Rng rng)
    : policy_(policy), rng_(rng) {}

size_t LoadBalancer::add_backend(double weight) {
  outstanding_.push_back(0);
  weights_.push_back(std::max(weight, 0.01));
  picks_.push_back(0);
  return outstanding_.size() - 1;
}

std::optional<size_t> LoadBalancer::pick() {
  if (outstanding_.empty()) return std::nullopt;
  size_t chosen = 0;
  switch (policy_) {
    case BalancePolicy::kRandom:
      chosen = static_cast<size_t>(
          rng_.uniform_int(0, static_cast<int64_t>(outstanding_.size()) - 1));
      break;
    case BalancePolicy::kRoundRobin:
      chosen = rr_next_;
      rr_next_ = (rr_next_ + 1) % outstanding_.size();
      break;
    case BalancePolicy::kLeastOutstanding:
      for (size_t i = 1; i < outstanding_.size(); ++i) {
        if (outstanding_[i] < outstanding_[chosen]) chosen = i;
      }
      break;
    case BalancePolicy::kWeighted: {
      double best = static_cast<double>(outstanding_[0]) / weights_[0];
      for (size_t i = 1; i < outstanding_.size(); ++i) {
        double load = static_cast<double>(outstanding_[i]) / weights_[i];
        if (load < best) {
          best = load;
          chosen = i;
        }
      }
      break;
    }
  }
  ++outstanding_[chosen];
  ++picks_[chosen];
  return chosen;
}

void LoadBalancer::complete(size_t backend) {
  assert(backend < outstanding_.size() && outstanding_[backend] > 0);
  --outstanding_[backend];
}

}  // namespace sbroker::core
