#include "core/balance.h"

#include <algorithm>
#include <cassert>

namespace sbroker::core {

const char* balance_policy_name(BalancePolicy p) {
  switch (p) {
    case BalancePolicy::kRandom:
      return "random";
    case BalancePolicy::kRoundRobin:
      return "round-robin";
    case BalancePolicy::kLeastOutstanding:
      return "least-outstanding";
    case BalancePolicy::kWeighted:
      return "weighted";
  }
  return "?";
}

LoadBalancer::LoadBalancer(BalancePolicy policy, util::Rng rng, HealthConfig health)
    : policy_(policy), rng_(rng), health_config_(health) {}

size_t LoadBalancer::add_backend(double weight) {
  outstanding_.push_back(0);
  weights_.push_back(std::max(weight, 0.01));
  picks_.push_back(0);
  health_.push_back(Health{});
  return outstanding_.size() - 1;
}

size_t LoadBalancer::pick_among(const std::vector<size_t>& candidates) {
  assert(!candidates.empty());
  size_t chosen = candidates[0];
  switch (policy_) {
    case BalancePolicy::kRandom:
      chosen = candidates[static_cast<size_t>(
          rng_.uniform_int(0, static_cast<int64_t>(candidates.size()) - 1))];
      break;
    case BalancePolicy::kRoundRobin: {
      // Advance the cursor to the next candidate position so the rotation is
      // preserved across the holes left by ejected replicas.
      for (size_t step = 0; step < outstanding_.size(); ++step) {
        size_t index = (rr_next_ + step) % outstanding_.size();
        if (std::find(candidates.begin(), candidates.end(), index) !=
            candidates.end()) {
          chosen = index;
          rr_next_ = (index + 1) % outstanding_.size();
          break;
        }
      }
      break;
    }
    case BalancePolicy::kLeastOutstanding:
      for (size_t i : candidates) {
        if (outstanding_[i] < outstanding_[chosen]) chosen = i;
      }
      break;
    case BalancePolicy::kWeighted: {
      double best = static_cast<double>(outstanding_[chosen]) / weights_[chosen];
      for (size_t i : candidates) {
        double load = static_cast<double>(outstanding_[i]) / weights_[i];
        if (load < best) {
          best = load;
          chosen = i;
        }
      }
      break;
    }
  }
  return chosen;
}

std::optional<size_t> LoadBalancer::pick(double now, std::optional<size_t> avoid,
                                         bool* probe) {
  if (probe) *probe = false;
  if (outstanding_.empty()) return std::nullopt;

  // A replica whose ejection window elapsed gets exactly one half-open probe
  // request before anything else; its outcome (via report) decides recovery.
  // Retries never double as probes — `avoid` is the replica that just failed.
  for (size_t i = 0; i < health_.size(); ++i) {
    Health& h = health_[i];
    if (h.ejected && !h.probing && now >= h.eject_until &&
        (!avoid || *avoid != i)) {
      h.probing = true;
      ++probes_issued_;
      ++outstanding_[i];
      ++picks_[i];
      if (probe) *probe = true;
      return i;
    }
  }

  std::vector<size_t> candidates;
  candidates.reserve(outstanding_.size());
  for (size_t i = 0; i < outstanding_.size(); ++i) {
    if (!health_[i].ejected && (!avoid || *avoid != i)) candidates.push_back(i);
  }
  if (candidates.empty()) {
    // Relax `avoid`, then health: with everything ejected the broker still
    // forwards somewhere rather than failing outright.
    for (size_t i = 0; i < outstanding_.size(); ++i) {
      if (!health_[i].ejected) candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    for (size_t i = 0; i < outstanding_.size(); ++i) candidates.push_back(i);
  }

  size_t chosen = pick_among(candidates);
  ++outstanding_[chosen];
  ++picks_[chosen];
  return chosen;
}

void LoadBalancer::complete(size_t backend) {
  assert(backend < outstanding_.size() && outstanding_[backend] > 0);
  --outstanding_[backend];
}

ReplicaEvent LoadBalancer::report(size_t backend, bool ok, double now) {
  if (health_config_.eject_after <= 0) return ReplicaEvent::kNone;
  Health& h = health_.at(backend);
  if (ok) {
    h.consecutive_failures = 0;
    if (h.ejected) {
      h.ejected = false;
      h.probing = false;
      h.eject_until = 0.0;
      return ReplicaEvent::kRecovered;
    }
    return ReplicaEvent::kNone;
  }
  ++h.consecutive_failures;
  if (h.probing) {
    // Failed half-open probe: a fresh ejection window starts.
    h.probing = false;
    h.eject_until = now + health_config_.eject_duration;
    return ReplicaEvent::kEjected;
  }
  if (!h.ejected && h.consecutive_failures >= health_config_.eject_after) {
    h.ejected = true;
    h.eject_until = now + health_config_.eject_duration;
    return ReplicaEvent::kEjected;
  }
  return ReplicaEvent::kNone;
}

size_t LoadBalancer::ejected_count() const {
  size_t n = 0;
  for (const Health& h : health_) n += h.ejected ? 1 : 0;
  return n;
}

}  // namespace sbroker::core
