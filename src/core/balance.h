// Backend load balancing.
//
// "In the API-based architecture, since no state information is shared in
// individual accesses, it can only work in a speculative manner. The service
// brokers can track the traffic and monitor their workload and accurately
// distribute the workload among the backend servers" (Section III).
//
// kRandom and kRoundRobin are the speculative (stateless) policies the API
// model is limited to; kLeastOutstanding uses the broker's accurate
// per-backend in-flight counts; kWeighted additionally divides by a backend
// capacity weight so heterogeneous replicas are loaded proportionally.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace sbroker::core {

enum class BalancePolicy { kRandom, kRoundRobin, kLeastOutstanding, kWeighted };

const char* balance_policy_name(BalancePolicy p);

class LoadBalancer {
 public:
  LoadBalancer(BalancePolicy policy, util::Rng rng = util::Rng(7));

  /// Registers a backend with a relative capacity weight (>= minimum 0.01).
  /// Returns its index.
  size_t add_backend(double weight = 1.0);

  /// Picks a backend for the next request and charges it one in-flight
  /// request. nullopt when no backends are registered.
  std::optional<size_t> pick();

  /// Marks a request complete on `backend`.
  void complete(size_t backend);

  size_t outstanding(size_t backend) const { return outstanding_.at(backend); }
  size_t backend_count() const { return outstanding_.size(); }
  uint64_t picks(size_t backend) const { return picks_.at(backend); }
  BalancePolicy policy() const { return policy_; }

 private:
  BalancePolicy policy_;
  util::Rng rng_;
  std::vector<size_t> outstanding_;
  std::vector<double> weights_;
  std::vector<uint64_t> picks_;
  size_t rr_next_ = 0;
};

}  // namespace sbroker::core
