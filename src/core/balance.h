// Backend load balancing.
//
// "In the API-based architecture, since no state information is shared in
// individual accesses, it can only work in a speculative manner. The service
// brokers can track the traffic and monitor their workload and accurately
// distribute the workload among the backend servers" (Section III).
//
// kRandom and kRoundRobin are the speculative (stateless) policies the API
// model is limited to; kLeastOutstanding uses the broker's accurate
// per-backend in-flight counts; kWeighted additionally divides by a backend
// capacity weight so heterogeneous replicas are loaded proportionally.
// kEwma keeps a peak-decaying EWMA of each replica's observed response time
// (fed by the broker's completion outcomes via report()) and picks the
// replica minimising ewma * (outstanding + 1); kP2c samples two distinct
// replicas uniformly and keeps the one with the lower EWMA score — the
// power-of-two-choices construction that gets most of the latency awareness
// at O(1) comparison cost and without herding onto one briefly-idle replica.
//
// On top of the placement policy sits per-replica health: a backend that
// fails `HealthConfig::eject_after` exchanges in a row is ejected from the
// candidate set for `eject_duration` seconds, then offered exactly one
// half-open probe request; a successful probe recovers it, a failed one
// re-ejects it. Health is fed by the broker's completion outcomes via
// report(). Disabled by default (eject_after = 0). Probe and `avoid`
// semantics sit in front of the policy, so they behave identically under
// every policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace sbroker::core {

enum class BalancePolicy {
  kRandom,
  kRoundRobin,
  kLeastOutstanding,
  kWeighted,
  kEwma,  ///< min over replicas of peak-EWMA latency x (outstanding + 1)
  kP2c,   ///< power-of-two-choices over the same EWMA score
};

const char* balance_policy_name(BalancePolicy p);

/// Parses a policy name as it appears in configs / bench sweeps. Accepts the
/// canonical names from balance_policy_name() plus the short aliases "rr"
/// (round-robin) and "least" (least-outstanding). nullopt on unknown names.
std::optional<BalancePolicy> parse_balance_policy(std::string_view name);

/// Replica-health policy knobs. eject_after = 0 disables health tracking.
struct HealthConfig {
  int eject_after = 0;          ///< consecutive failures that eject a replica
  double eject_duration = 1.0;  ///< seconds ejected before a half-open probe
};

/// What a completion outcome did to the replica's health state.
enum class ReplicaEvent {
  kNone,
  kEjected,    ///< entered (or re-entered, after a failed probe) ejection
  kRecovered,  ///< a successful exchange ended the ejection
};

/// Decay time constant (seconds) of the per-replica latency EWMA. Estimates
/// age toward zero with exp(-dt/tau), so a replica that was slow and then
/// stopped receiving traffic is retried after a few tau rather than being
/// starved forever on a stale estimate.
inline constexpr double kDefaultEwmaTau = 0.5;

class LoadBalancer {
 public:
  explicit LoadBalancer(BalancePolicy policy, util::Rng rng = util::Rng(7),
                        HealthConfig health = {},
                        double ewma_tau = kDefaultEwmaTau);

  /// Registers a backend with a relative capacity weight (>= minimum 0.01).
  /// Returns its index.
  size_t add_backend(double weight = 1.0);

  /// Picks a backend for the next request and charges it one in-flight
  /// request. nullopt when no backends are registered. Ejected replicas are
  /// skipped — unless one is due its half-open probe (then it is chosen, and
  /// `*probe` set), or every replica is ejected (then the broker still
  /// forwards somewhere rather than failing outright). `avoid` deprioritises
  /// a replica (the one a retry just failed on) without forbidding it when
  /// it is the only choice.
  std::optional<size_t> pick(double now = 0.0,
                             std::optional<size_t> avoid = std::nullopt,
                             bool* probe = nullptr);

  /// Marks a request complete on `backend` (in-flight accounting only; pair
  /// with report() for the health/latency outcome).
  void complete(size_t backend);

  /// Feeds one exchange outcome into `backend`'s health state. A successful
  /// exchange with `latency` >= 0 (seconds) also feeds the replica's
  /// peak-decaying response-time EWMA; pass latency < 0 when no meaningful
  /// round-trip time exists (e.g. a harvested stall).
  ReplicaEvent report(size_t backend, bool ok, double now,
                      double latency = -1.0);

  /// Un-marks a half-open probe whose carrier could not actually be sent
  /// (connection pool saturated), so a later pick can offer it again.
  void abandon_probe(size_t backend) { health_.at(backend).probing = false; }

  size_t outstanding(size_t backend) const { return outstanding_.at(backend); }
  size_t backend_count() const { return outstanding_.size(); }
  uint64_t picks(size_t backend) const { return picks_.at(backend); }
  BalancePolicy policy() const { return policy_; }
  bool ejected(size_t backend) const { return health_.at(backend).ejected; }
  size_t ejected_count() const;
  uint64_t probes() const { return probes_issued_; }
  /// The replica's response-time estimate, seconds, aged to `now` (estimates
  /// decay toward 0 with tau between observations). 0 = never sampled.
  double ewma_seconds(size_t backend, double now) const;
  /// The raw (un-aged) estimate as of its last observation — what the
  /// status/metrics snapshots export, since they carry no timeline.
  double last_ewma_seconds(size_t backend) const {
    return ewma_.at(backend).value;
  }

 private:
  struct Health {
    int consecutive_failures = 0;
    bool ejected = false;
    double eject_until = 0.0;
    bool probing = false;  ///< the single half-open probe is in flight
  };

  /// Peak-decaying response-time estimate: jumps to a slower sample
  /// immediately (tail sensitivity), glides down toward faster ones, and
  /// ages toward zero while unsampled so cold/recovered replicas get tried.
  struct Ewma {
    double value = 0.0;  ///< seconds; 0 = no sample yet
    double stamp = 0.0;  ///< time of the last observation
  };

  /// Eligibility passes for one pick: strict (healthy, not avoided), then
  /// relaxing avoid, then health, so a pick always lands somewhere.
  bool eligible(size_t i, int pass, std::optional<size_t> avoid) const;
  /// Eligible replicas under `pass`; pick() relaxes pass until nonzero.
  size_t count_eligible(int pass, std::optional<size_t> avoid) const;
  /// Index of the rank-th eligible replica (rank < count_eligible(pass)).
  size_t nth_eligible(size_t rank, int pass, std::optional<size_t> avoid) const;
  /// Applies the policy over the eligible set without materialising it.
  size_t pick_eligible(size_t count, int pass, std::optional<size_t> avoid,
                       double now);
  /// EWMA selection score: aged estimate x (outstanding + 1). Never-sampled
  /// replicas score near zero, so they are explored before loaded ones.
  double ewma_score(size_t i, double now) const;

  BalancePolicy policy_;
  util::Rng rng_;
  HealthConfig health_config_;
  double ewma_tau_;
  std::vector<size_t> outstanding_;
  std::vector<double> weights_;
  std::vector<uint64_t> picks_;
  std::vector<Health> health_;
  std::vector<Ewma> ewma_;
  uint64_t probes_issued_ = 0;
  size_t rr_next_ = 0;
};

}  // namespace sbroker::core
