// Backend load balancing.
//
// "In the API-based architecture, since no state information is shared in
// individual accesses, it can only work in a speculative manner. The service
// brokers can track the traffic and monitor their workload and accurately
// distribute the workload among the backend servers" (Section III).
//
// kRandom and kRoundRobin are the speculative (stateless) policies the API
// model is limited to; kLeastOutstanding uses the broker's accurate
// per-backend in-flight counts; kWeighted additionally divides by a backend
// capacity weight so heterogeneous replicas are loaded proportionally.
//
// On top of the placement policy sits per-replica health: a backend that
// fails `HealthConfig::eject_after` exchanges in a row is ejected from the
// candidate set for `eject_duration` seconds, then offered exactly one
// half-open probe request; a successful probe recovers it, a failed one
// re-ejects it. Health is fed by the broker's completion outcomes via
// report(). Disabled by default (eject_after = 0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"

namespace sbroker::core {

enum class BalancePolicy { kRandom, kRoundRobin, kLeastOutstanding, kWeighted };

const char* balance_policy_name(BalancePolicy p);

/// Replica-health policy knobs. eject_after = 0 disables health tracking.
struct HealthConfig {
  int eject_after = 0;          ///< consecutive failures that eject a replica
  double eject_duration = 1.0;  ///< seconds ejected before a half-open probe
};

/// What a completion outcome did to the replica's health state.
enum class ReplicaEvent {
  kNone,
  kEjected,    ///< entered (or re-entered, after a failed probe) ejection
  kRecovered,  ///< a successful exchange ended the ejection
};

class LoadBalancer {
 public:
  explicit LoadBalancer(BalancePolicy policy, util::Rng rng = util::Rng(7),
                        HealthConfig health = {});

  /// Registers a backend with a relative capacity weight (>= minimum 0.01).
  /// Returns its index.
  size_t add_backend(double weight = 1.0);

  /// Picks a backend for the next request and charges it one in-flight
  /// request. nullopt when no backends are registered. Ejected replicas are
  /// skipped — unless one is due its half-open probe (then it is chosen, and
  /// `*probe` set), or every replica is ejected (then the broker still
  /// forwards somewhere rather than failing outright). `avoid` deprioritises
  /// a replica (the one a retry just failed on) without forbidding it when
  /// it is the only choice.
  std::optional<size_t> pick(double now = 0.0,
                             std::optional<size_t> avoid = std::nullopt,
                             bool* probe = nullptr);

  /// Marks a request complete on `backend` (in-flight accounting only; pair
  /// with report() for the health outcome).
  void complete(size_t backend);

  /// Feeds one exchange outcome into `backend`'s health state.
  ReplicaEvent report(size_t backend, bool ok, double now);

  /// Un-marks a half-open probe whose carrier could not actually be sent
  /// (connection pool saturated), so a later pick can offer it again.
  void abandon_probe(size_t backend) { health_.at(backend).probing = false; }

  size_t outstanding(size_t backend) const { return outstanding_.at(backend); }
  size_t backend_count() const { return outstanding_.size(); }
  uint64_t picks(size_t backend) const { return picks_.at(backend); }
  BalancePolicy policy() const { return policy_; }
  bool ejected(size_t backend) const { return health_.at(backend).ejected; }
  size_t ejected_count() const;
  uint64_t probes() const { return probes_issued_; }

 private:
  struct Health {
    int consecutive_failures = 0;
    bool ejected = false;
    double eject_until = 0.0;
    bool probing = false;  ///< the single half-open probe is in flight
  };

  size_t pick_among(const std::vector<size_t>& candidates);

  BalancePolicy policy_;
  util::Rng rng_;
  HealthConfig health_config_;
  std::vector<size_t> outstanding_;
  std::vector<double> weights_;
  std::vector<uint64_t> picks_;
  std::vector<Health> health_;
  uint64_t probes_issued_ = 0;
  size_t rr_next_ = 0;
};

}  // namespace sbroker::core
