#include "core/broker.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.h"

namespace sbroker::core {

ServiceBroker::ServiceBroker(std::string name, BrokerConfig config)
    : name_(std::move(name)),
      config_(config),
      admission_(config.rules),
      cache_(std::make_shared<ResultCache>(config.cache_capacity, config.cache_ttl)),
      load_(std::make_shared<LoadTracker>()),
      cluster_(config.cluster),
      pool_(config.pool),
      balancer_(config.balance, util::Rng(config.rng_seed), config.health),
      txn_(std::make_shared<TransactionTracker>(config.rules, config.txn)),
      prefetcher_(config.prefetch_idle_threshold),
      hotspot_(config.hotspot),
      rewriter_(config.rewrite, config.rules),
      metrics_(config.rules.num_levels),
      obs_(config.obs, config.rules.num_levels) {}

void ServiceBroker::add_backend(std::shared_ptr<Backend> backend, double weight) {
  assert(backend != nullptr);
  backends_.push_back(std::move(backend));
  balancer_.add_backend(weight);
}

void ServiceBroker::share_transactions(std::shared_ptr<TransactionTracker> shared) {
  assert(shared != nullptr);
  txn_ = std::move(shared);
}

void ServiceBroker::share_cache(std::shared_ptr<ResultCacheBase> shared) {
  assert(shared != nullptr);
  cache_ = std::move(shared);
}

void ServiceBroker::share_load(std::shared_ptr<LoadTracker> shared) {
  assert(shared != nullptr);
  assert(outstanding_ == 0);  // swapping mid-traffic would corrupt the count
  load_ = std::move(shared);
}

double ServiceBroker::compute_deadline(double now, uint32_t deadline_ms) const {
  const LifecycleConfig& lc = config_.lifecycle;
  double budget = deadline_ms > 0 ? static_cast<double>(deadline_ms) / 1000.0
                                  : lc.default_deadline;
  if (budget <= 0.0) return kNoDeadline;
  if (lc.max_deadline > 0.0) budget = std::min(budget, lc.max_deadline);
  return now + budget;
}

void ServiceBroker::submit(double now, const http::BrokerRequest& request,
                           ReplyFn reply) {
  QosLevel base_level = config_.rules.clamp_level(request.qos_level);
  metrics_.at(base_level).issued += 1;

  QosLevel effective =
      txn_->effective_level(request.txn_id, request.txn_step, base_level, now);

  // 1. Result cache.
  if (config_.enable_cache) {
    if (auto hit = cache_->get(request.payload, now)) {
      auto& c = metrics_.at(base_level);
      c.cache_hits += 1;
      c.completed += 1;
      c.response_time.add(0.0);
      obs_.record(base_level, obs::Stage::kTotal, 0.0);
      obs_.trace(now, request.request_id, obs::TraceEventKind::kCacheHit,
                 static_cast<uint8_t>(base_level));
      reply(http::BrokerReply{request.request_id, http::Fidelity::kCached, *hit});
      return;
    }
  }

  // 2. Admission, against the (possibly cross-shard) outstanding count.
  AdmissionDecision decision = admission_.decide(effective, load_->load(), now);
  if (decision != AdmissionDecision::kForward) {
    reply_drop(now, request, base_level, reply);
    return;
  }

  if (backends_.empty()) {
    auto& c = metrics_.at(base_level);
    c.errors += 1;
    c.completed += 1;
    c.response_time.add(0.0);
    obs_.record(base_level, obs::Stage::kTotal, 0.0);
    obs_.trace(now, request.request_id, obs::TraceEventKind::kComplete,
               static_cast<uint8_t>(base_level),
               static_cast<uint16_t>(http::Fidelity::kError));
    reply(http::BrokerReply{request.request_id, http::Fidelity::kError,
                            "no backend registered"});
    return;
  }

  // 3. Forward path: degrade the query if the fidelity rules say so, then
  //    open the request's lifecycle context and feed the cluster engine.
  RewriteOutcome rewritten =
      rewriter_.apply(request.payload, effective, hotspot_.state());
  ++outstanding_;
  load_->inc();
  hotspot_.observe(load_->load());

  RequestContext ctx;
  ctx.id = request.request_id;
  ctx.base_level = base_level;
  ctx.effective_level = effective;
  ctx.submitted_at = now;
  ctx.deadline = compute_deadline(now, request.deadline_ms);
  ctx.attempt_budget = std::max(1, config_.lifecycle.max_attempts);
  ctx.payload = rewritten.payload;
  ctx.degraded = rewritten.degraded;
  ctx.reply = std::move(reply);
  if (ctx.deadline != kNoDeadline) deadlines_.emplace(ctx.deadline, ctx.id);
  contexts_[request.request_id] = std::move(ctx);
  obs_.trace(now, request.request_id, obs::TraceEventKind::kAdmit,
             static_cast<uint8_t>(base_level), static_cast<uint16_t>(effective));

  if (auto batch = cluster_.add(request.request_id, std::move(rewritten.payload), now)) {
    enqueue_batch(std::move(*batch), now);
  }
  pump(now);
}

void ServiceBroker::reply_drop(double now, const http::BrokerRequest& request,
                               QosLevel base_level, ReplyFn& reply) {
  auto& c = metrics_.at(base_level);
  c.dropped += 1;
  c.completed += 1;
  c.response_time.add(0.0);
  obs_.record(base_level, obs::Stage::kTotal, 0.0);
  obs_.trace(now, request.request_id, obs::TraceEventKind::kDrop,
             static_cast<uint8_t>(base_level), /*detail=*/1);
  if (config_.serve_stale_on_drop) {
    if (auto stale = cache_->get_stale(request.payload)) {
      reply(http::BrokerReply{request.request_id, http::Fidelity::kCached, *stale});
      return;
    }
  }
  reply(http::BrokerReply{request.request_id, http::Fidelity::kBusy,
                          "system is busy"});
  (void)now;
}

void ServiceBroker::enqueue_batch(Batch batch, double now) {
  ReadyBatch ready;
  ready.priority = 1;
  uint16_t size = static_cast<uint16_t>(
      std::min<size_t>(batch.member_ids.size(), UINT16_MAX));
  for (uint64_t id : batch.member_ids) {
    auto it = contexts_.find(id);
    if (it != contexts_.end()) {
      RequestContext& ctx = it->second;
      ready.priority = std::max(ready.priority, ctx.effective_level);
      ctx.batched_at = now;
      obs_.record(ctx.base_level, obs::Stage::kBatchWait, now - ctx.submitted_at);
      obs_.trace(now, id, obs::TraceEventKind::kCluster,
                 static_cast<uint8_t>(ctx.base_level), size);
    }
  }
  ready.batch = std::move(batch);
  dispatch_queue_.push(ready.priority, std::move(ready));
}

void ServiceBroker::pump(double now) {
  while (!dispatch_queue_.empty() &&
         (config_.dispatch_window == 0 || in_flight_batches_ < config_.dispatch_window)) {
    auto next = dispatch_queue_.pop();
    assert(next.has_value());
    dispatch(std::move(*next), now);
  }
}

void ServiceBroker::dispatch(ReadyBatch ready, double now) {
  // Members can expire (deadline shed) between batching and dispatch; they
  // already received their reply. The exchange carries only what is left.
  size_t live = 0;
  double longest_remaining = 0.0;
  bool unbounded = false;
  for (uint64_t id : ready.batch.member_ids) {
    auto it = contexts_.find(id);
    if (it == contexts_.end()) continue;
    ++live;
    double remaining = it->second.remaining(now);
    if (remaining == kNoDeadline) {
      unbounded = true;
    } else {
      longest_remaining = std::max(longest_remaining, remaining);
    }
  }
  if (live == 0) return;

  bool probe = false;
  auto backend_index = balancer_.pick(now, ready.avoid, &probe);
  assert(backend_index.has_value());  // add_backend checked in submit

  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    // Every connection is saturated: degrade the whole batch.
    balancer_.complete(*backend_index);
    if (probe) balancer_.abandon_probe(*backend_index);
    for (uint64_t id : ready.batch.member_ids) {
      auto node = contexts_.extract(id);
      if (node.empty()) continue;
      // Mirror the admission-drop bookkeeping: the request was admitted but
      // cannot be carried, so it is shed with low fidelity.
      shed_context(std::move(node.mapped()), now, /*deadline_miss=*/false);
    }
    return;
  }

  ++in_flight_batches_;
  if (probe) ++metrics_.lifecycle.probes;
  uint64_t exchange_id = next_exchange_++;

  Backend::Call call;
  call.payload = ready.batch.combined_payload;
  call.needs_connection_setup = lease.fresh;
  // The exchange stays useful as long as its longest-lived member does;
  // shorter members expire individually out of the broker's deadline queue.
  // The slack keeps the transport's own timer strictly behind the broker's
  // deadline expiry, so the deadline path always claims the completion.
  call.timeout = unbounded
                     ? 0.0
                     : longest_remaining + config_.lifecycle.transport_slack;

  Exchange exchange;
  exchange.backend = *backend_index;
  exchange.connection = lease.connection;
  exchange.unfinished = live;
  exchange.cancel = std::make_shared<CancelToken>();
  for (uint64_t id : ready.batch.member_ids) {
    auto it = contexts_.find(id);
    if (it == contexts_.end()) continue;
    RequestContext& ctx = it->second;
    if (ctx.attempts == 0) {
      // QoS-queue residency: batch formation to first dispatch. Retries skip
      // this — their wait mixes in the failed attempt's channel time.
      double queued_since = ctx.batched_at > 0.0 ? ctx.batched_at : ctx.submitted_at;
      obs_.record(ctx.base_level, obs::Stage::kQueueWait, now - queued_since);
    }
    obs_.trace(now, id, obs::TraceEventKind::kDispatch,
               static_cast<uint8_t>(ctx.base_level),
               static_cast<uint16_t>(*backend_index));
    ctx.exchange = exchange_id;
    ctx.attempts += 1;
    ctx.dispatched_at = now;
    ctx.last_backend = *backend_index;
  }
  CancelTokenPtr token = exchange.cancel;
  exchange.batch = std::move(ready.batch);
  exchanges_.emplace(exchange_id, std::move(exchange));

  std::shared_ptr<Backend> backend = backends_[*backend_index];
  backend->invoke(call, token,
                  [this, exchange_id](double done_now, bool ok,
                                      const std::string& payload) {
                    on_exchange_complete(exchange_id, done_now, ok, payload);
                  });
}

void ServiceBroker::on_exchange_complete(uint64_t exchange_id, double now, bool ok,
                                         const std::string& payload) {
  auto it = exchanges_.find(exchange_id);
  if (it == exchanges_.end()) {
    // The deadline queue already harvested this exchange: every member was
    // answered and accounting settled, so the late result only gets counted.
    ++metrics_.lifecycle.late_completions;
    return;
  }
  Exchange exchange = std::move(it->second);
  exchanges_.erase(it);
  pool_.release(exchange.connection);
  balancer_.complete(exchange.backend);
  report_health(exchange.backend, ok, now);
  assert(in_flight_batches_ > 0);
  --in_flight_batches_;

  const Batch& batch = exchange.batch;
  if (ok) {
    std::vector<std::string> parts = ClusterEngine::split_reply(batch, payload);
    for (size_t i = 0; i < batch.member_ids.size(); ++i) {
      // Cache before replying: once the reply is on the wire, another shard
      // may already be looking the repeat up in the shared cache. A fresh
      // result is worth caching even when its member already expired.
      if (config_.enable_cache) cache_->put(batch.member_payloads[i], parts[i], now);
      uint64_t id = batch.member_ids[i];
      auto ctx_it = contexts_.find(id);
      if (ctx_it != contexts_.end() && ctx_it->second.exchange == exchange_id) {
        RequestContext ctx = std::move(ctx_it->second);
        contexts_.erase(ctx_it);
        obs_.record(ctx.base_level, obs::Stage::kChannelRtt,
                    now - ctx.dispatched_at);
        finish_context(std::move(ctx), now, http::Fidelity::kFull, parts[i],
                       /*count_error=*/false);
      }
    }
  } else {
    bool scheduled_retry = false;
    for (uint64_t id : batch.member_ids) {
      auto ctx_it = contexts_.find(id);
      if (ctx_it == contexts_.end() || ctx_it->second.exchange != exchange_id) continue;
      RequestContext& ctx = ctx_it->second;
      ctx.exchange = 0;
      obs_.record(ctx.base_level, obs::Stage::kChannelRtt, now - ctx.dispatched_at);
      if (may_retry(ctx, now)) {
        retries_.emplace(now + config_.lifecycle.retry_backoff * ctx.attempts, id);
        metrics_.at(ctx.base_level).retries += 1;
        obs_.trace(now, id, obs::TraceEventKind::kRetry,
                   static_cast<uint8_t>(ctx.base_level),
                   static_cast<uint16_t>(ctx.attempts));
        scheduled_retry = true;
      } else {
        RequestContext moved = std::move(ctx_it->second);
        contexts_.erase(ctx_it);
        finish_context(std::move(moved), now, http::Fidelity::kError, payload,
                       /*count_error=*/true);
      }
    }
    if (scheduled_retry) {
      drain_retries(now);  // zero-backoff configs re-dispatch immediately
      if (wakeup_) wakeup_();
    }
  }
  pump(now);
}

void ServiceBroker::finish_context(RequestContext ctx, double now,
                                   http::Fidelity fidelity,
                                   const std::string& payload, bool count_error) {
  assert(outstanding_ > 0);
  --outstanding_;
  load_->dec();
  hotspot_.observe(load_->load());

  if (ctx.degraded && fidelity == http::Fidelity::kFull) {
    fidelity = http::Fidelity::kDegraded;
  }
  auto& c = metrics_.at(ctx.base_level);
  if (fidelity == http::Fidelity::kFull || fidelity == http::Fidelity::kCached ||
      fidelity == http::Fidelity::kDegraded) {
    c.forwarded += 1;
  }
  if (count_error) c.errors += 1;
  c.completed += 1;
  c.response_time.add(now - ctx.submitted_at);
  obs_.record(ctx.base_level, obs::Stage::kTotal, now - ctx.submitted_at);
  obs_.trace(now, ctx.id, obs::TraceEventKind::kComplete,
             static_cast<uint8_t>(ctx.base_level),
             static_cast<uint16_t>(fidelity));
  ctx.reply(http::BrokerReply{ctx.id, fidelity, payload});
}

void ServiceBroker::shed_context(RequestContext ctx, double now, bool deadline_miss) {
  assert(outstanding_ > 0);
  --outstanding_;
  load_->dec();
  hotspot_.observe(load_->load());

  auto& c = metrics_.at(ctx.base_level);
  c.dropped += 1;
  if (deadline_miss) c.deadline_misses += 1;
  c.completed += 1;
  c.response_time.add(now - ctx.submitted_at);
  obs_.record(ctx.base_level, obs::Stage::kTotal, now - ctx.submitted_at);
  obs_.trace(now, ctx.id,
             deadline_miss ? obs::TraceEventKind::kDeadline
                           : obs::TraceEventKind::kDrop,
             static_cast<uint8_t>(ctx.base_level),
             deadline_miss ? static_cast<uint16_t>(ctx.attempts)
                           : /*pool saturated=*/static_cast<uint16_t>(2));
  if (config_.serve_stale_on_drop) {
    if (auto stale = cache_->get_stale(ctx.payload)) {
      ctx.reply(http::BrokerReply{ctx.id, http::Fidelity::kCached, *stale});
      return;
    }
  }
  ctx.reply(http::BrokerReply{
      ctx.id, http::Fidelity::kBusy,
      deadline_miss ? std::string(kDeadlineExceeded) : "system is busy"});
}

bool ServiceBroker::may_retry(const RequestContext& ctx, double now) const {
  if (ctx.attempts >= ctx.attempt_budget) return false;
  double ready_at = now + config_.lifecycle.retry_backoff * ctx.attempts;
  return ctx.deadline == kNoDeadline || ready_at < ctx.deadline;
}

void ServiceBroker::expire_deadlines(double now) {
  while (!deadlines_.empty() && deadlines_.top().first <= now) {
    uint64_t id = deadlines_.top().second;
    deadlines_.pop();
    auto it = contexts_.find(id);
    // Skip lazily-deleted entries (request already answered) and entries
    // stale against a later re-submitted deadline for the same id.
    if (it == contexts_.end() || !it->second.expired(now)) continue;
    uint64_t exchange_id = it->second.exchange;
    RequestContext ctx = std::move(it->second);
    contexts_.erase(it);
    shed_context(std::move(ctx), now, /*deadline_miss=*/true);
    if (exchange_id != 0) {
      auto ex_it = exchanges_.find(exchange_id);
      if (ex_it != exchanges_.end()) {
        assert(ex_it->second.unfinished > 0);
        if (--ex_it->second.unfinished == 0) harvest_exchange(exchange_id, now);
      }
    }
  }
}

void ServiceBroker::harvest_exchange(uint64_t exchange_id, double now) {
  auto it = exchanges_.find(exchange_id);
  if (it == exchanges_.end()) return;
  Exchange exchange = std::move(it->second);
  // Erase before firing the token: a backend that completes re-entrantly
  // from its cancel path must find the accounting already settled.
  exchanges_.erase(it);
  pool_.release(exchange.connection);
  balancer_.complete(exchange.backend);
  // A stall the broker had to abandon is a failure signal for the replica.
  report_health(exchange.backend, /*ok=*/false, now);
  assert(in_flight_batches_ > 0);
  --in_flight_batches_;
  ++metrics_.lifecycle.cancellations;
  exchange.cancel->cancel();
}

void ServiceBroker::report_health(size_t backend, bool ok, double now) {
  switch (balancer_.report(backend, ok, now)) {
    case ReplicaEvent::kEjected:
      ++metrics_.lifecycle.ejections;
      break;
    case ReplicaEvent::kRecovered:
      ++metrics_.lifecycle.recoveries;
      break;
    case ReplicaEvent::kNone:
      break;
  }
}

void ServiceBroker::drain_retries(double now) {
  while (!retries_.empty() && retries_.top().first <= now) {
    uint64_t id = retries_.top().second;
    retries_.pop();
    auto it = contexts_.find(id);
    // Valid only for a context that has consumed an attempt and is not in
    // flight — anything else is a lazily-deleted entry.
    if (it == contexts_.end() || it->second.exchange != 0 ||
        it->second.attempts == 0) {
      continue;
    }
    const RequestContext& ctx = it->second;
    ReadyBatch ready;
    ready.batch.member_ids = {id};
    ready.batch.member_payloads = {ctx.payload};
    ready.batch.combined_payload = ctx.payload;
    ready.priority = ctx.effective_level;
    ready.avoid = ctx.last_backend;
    dispatch_queue_.push(ready.priority, std::move(ready));
  }
}

void ServiceBroker::tick(double now) {
  if (auto batch = cluster_.flush(now)) {
    enqueue_batch(std::move(*batch), now);
  }
  expire_deadlines(now);
  drain_retries(now);
  pump(now);
  txn_->expire(now);

  if (!backends_.empty()) {
    for (const PrefetchEntry& entry :
         prefetcher_.due(now, static_cast<double>(outstanding_))) {
      issue_prefetch(entry, now);
    }
  }
}

void ServiceBroker::issue_prefetch(const PrefetchEntry& entry, double now) {
  auto backend_index = balancer_.pick(now);
  if (!backend_index) return;
  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    balancer_.complete(*backend_index);
    return;  // pool saturated — skip this cycle, the schedule already advanced
  }
  Backend::Call call{entry.payload, lease.fresh};
  std::shared_ptr<Backend> backend = backends_[*backend_index];
  size_t backend_idx = *backend_index;
  size_t connection = lease.connection;
  std::string cache_key = entry.cache_key;
  backend->invoke(call, [this, backend_idx, connection, cache_key](
                            double done_now, bool ok, const std::string& payload) {
    pool_.release(connection);
    balancer_.complete(backend_idx);
    if (ok) cache_->put(cache_key, payload, done_now);
  });
  (void)now;
}

ChannelStats ServiceBroker::channel_stats() const {
  ChannelStats total;
  for (const auto& backend : backends_) total.merge(backend->channel_stats());
  return total;
}

std::optional<double> ServiceBroker::next_deadline() const {
  std::optional<double> next = cluster_.next_deadline();
  auto fold = [&next](std::optional<double> t) {
    if (t && (!next || *t < *next)) next = t;
  };
  fold(prefetcher_.next_due());
  while (!deadlines_.empty() && !contexts_.count(deadlines_.top().second)) {
    deadlines_.pop();
  }
  if (!deadlines_.empty()) fold(deadlines_.top().first);
  while (!retries_.empty() && !contexts_.count(retries_.top().second)) {
    retries_.pop();
  }
  if (!retries_.empty()) fold(retries_.top().first);
  return next;
}

}  // namespace sbroker::core
