#include "core/broker.h"

#include <cassert>
#include <stdexcept>

#include "util/log.h"

namespace sbroker::core {

ServiceBroker::ServiceBroker(std::string name, BrokerConfig config)
    : name_(std::move(name)),
      config_(config),
      admission_(config.rules),
      cache_(std::make_shared<ResultCache>(config.cache_capacity, config.cache_ttl)),
      load_(std::make_shared<LoadTracker>()),
      cluster_(config.cluster),
      pool_(config.pool),
      balancer_(config.balance, util::Rng(config.rng_seed)),
      txn_(std::make_shared<TransactionTracker>(config.rules, config.txn)),
      prefetcher_(config.prefetch_idle_threshold),
      hotspot_(config.hotspot),
      rewriter_(config.rewrite, config.rules),
      metrics_(config.rules.num_levels) {}

void ServiceBroker::add_backend(std::shared_ptr<Backend> backend, double weight) {
  assert(backend != nullptr);
  backends_.push_back(std::move(backend));
  balancer_.add_backend(weight);
}

void ServiceBroker::share_transactions(std::shared_ptr<TransactionTracker> shared) {
  assert(shared != nullptr);
  txn_ = std::move(shared);
}

void ServiceBroker::share_cache(std::shared_ptr<ResultCacheBase> shared) {
  assert(shared != nullptr);
  cache_ = std::move(shared);
}

void ServiceBroker::share_load(std::shared_ptr<LoadTracker> shared) {
  assert(shared != nullptr);
  assert(outstanding_ == 0);  // swapping mid-traffic would corrupt the count
  load_ = std::move(shared);
}

void ServiceBroker::submit(double now, const http::BrokerRequest& request,
                           ReplyFn reply) {
  QosLevel base_level = config_.rules.clamp_level(request.qos_level);
  metrics_.at(base_level).issued += 1;

  QosLevel effective =
      txn_->effective_level(request.txn_id, request.txn_step, base_level, now);

  // 1. Result cache.
  if (config_.enable_cache) {
    if (auto hit = cache_->get(request.payload, now)) {
      auto& c = metrics_.at(base_level);
      c.cache_hits += 1;
      c.completed += 1;
      c.response_time.add(0.0);
      reply(http::BrokerReply{request.request_id, http::Fidelity::kCached, *hit});
      return;
    }
  }

  // 2. Admission, against the (possibly cross-shard) outstanding count.
  AdmissionDecision decision = admission_.decide(effective, load_->load(), now);
  if (decision != AdmissionDecision::kForward) {
    reply_drop(now, request, base_level, reply);
    return;
  }

  if (backends_.empty()) {
    auto& c = metrics_.at(base_level);
    c.errors += 1;
    c.completed += 1;
    c.response_time.add(0.0);
    reply(http::BrokerReply{request.request_id, http::Fidelity::kError,
                            "no backend registered"});
    return;
  }

  // 3. Forward path: degrade the query if the fidelity rules say so, then
  //    track the member and feed the cluster engine.
  RewriteOutcome rewritten =
      rewriter_.apply(request.payload, effective, hotspot_.state());
  ++outstanding_;
  load_->inc();
  hotspot_.observe(load_->load());
  pending_.emplace(request.request_id,
                   PendingMember{base_level, now, rewritten.payload,
                                 rewritten.degraded, std::move(reply)});
  effective_levels_[request.request_id] = effective;

  if (auto batch = cluster_.add(request.request_id, std::move(rewritten.payload), now)) {
    enqueue_batch(std::move(*batch), now);
  }
  pump(now);
}

void ServiceBroker::reply_drop(double now, const http::BrokerRequest& request,
                               QosLevel base_level, ReplyFn& reply) {
  auto& c = metrics_.at(base_level);
  c.dropped += 1;
  c.completed += 1;
  c.response_time.add(0.0);
  if (config_.serve_stale_on_drop) {
    if (auto stale = cache_->get_stale(request.payload)) {
      reply(http::BrokerReply{request.request_id, http::Fidelity::kCached, *stale});
      return;
    }
  }
  reply(http::BrokerReply{request.request_id, http::Fidelity::kBusy,
                          "system is busy"});
  (void)now;
}

void ServiceBroker::enqueue_batch(Batch batch, double now) {
  ReadyBatch ready;
  ready.priority = 1;
  for (uint64_t id : batch.member_ids) {
    auto it = effective_levels_.find(id);
    if (it != effective_levels_.end()) {
      ready.priority = std::max(ready.priority, it->second);
      effective_levels_.erase(it);
    }
  }
  ready.batch = std::move(batch);
  dispatch_queue_.push(ready.priority, std::move(ready));
  (void)now;
}

void ServiceBroker::pump(double now) {
  while (!dispatch_queue_.empty() &&
         (config_.dispatch_window == 0 || in_flight_batches_ < config_.dispatch_window)) {
    auto next = dispatch_queue_.pop();
    assert(next.has_value());
    dispatch(std::move(*next), now);
  }
}

void ServiceBroker::dispatch(ReadyBatch ready, double now) {
  auto backend_index = balancer_.pick();
  assert(backend_index.has_value());  // add_backend checked in submit

  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    // Every connection is saturated: degrade the whole batch.
    balancer_.complete(*backend_index);
    for (size_t i = 0; i < ready.batch.member_ids.size(); ++i) {
      uint64_t id = ready.batch.member_ids[i];
      auto it = pending_.find(id);
      if (it == pending_.end()) continue;
      // Mirror the admission-drop bookkeeping: the request was admitted but
      // cannot be carried, so it is shed with low fidelity.
      PendingMember member = std::move(it->second);
      pending_.erase(it);
      assert(outstanding_ > 0);
      --outstanding_;
      load_->dec();
      auto& c = metrics_.at(member.base_level);
      c.dropped += 1;
      c.completed += 1;
      c.response_time.add(now - member.submitted_at);
      if (config_.serve_stale_on_drop) {
        if (auto stale = cache_->get_stale(member.payload)) {
          member.reply(http::BrokerReply{id, http::Fidelity::kCached, *stale});
          continue;
        }
      }
      member.reply(http::BrokerReply{id, http::Fidelity::kBusy, "system is busy"});
    }
    return;
  }

  ++in_flight_batches_;
  Backend::Call call{ready.batch.combined_payload, lease.fresh};
  std::shared_ptr<Backend> backend = backends_[*backend_index];
  size_t backend_idx = *backend_index;
  size_t connection = lease.connection;

  // The batch is moved into the completion closure; member bookkeeping
  // happens when the backend answers.
  backend->invoke(call, [this, batch = std::move(ready.batch), backend_idx,
                         connection](double done_now, bool ok,
                                     const std::string& payload) {
    pool_.release(connection);
    balancer_.complete(backend_idx);
    assert(in_flight_batches_ > 0);
    --in_flight_batches_;

    if (ok) {
      std::vector<std::string> parts = ClusterEngine::split_reply(batch, payload);
      for (size_t i = 0; i < batch.member_ids.size(); ++i) {
        finish_member(batch.member_ids[i], done_now, http::Fidelity::kFull, parts[i],
                      /*count_error=*/false);
        if (config_.enable_cache) {
          cache_->put(batch.member_payloads[i], parts[i], done_now);
        }
      }
    } else {
      for (uint64_t id : batch.member_ids) {
        finish_member(id, done_now, http::Fidelity::kError, payload,
                      /*count_error=*/true);
      }
    }
    pump(done_now);
  });
}

void ServiceBroker::finish_member(uint64_t id, double now, http::Fidelity fidelity,
                                  const std::string& payload, bool count_error) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    SBROKER_WARN(name_) << "completion for unknown request id " << id;
    return;
  }
  PendingMember member = std::move(it->second);
  pending_.erase(it);
  assert(outstanding_ > 0);
  --outstanding_;
  load_->dec();
  hotspot_.observe(load_->load());

  if (member.degraded && fidelity == http::Fidelity::kFull) {
    fidelity = http::Fidelity::kDegraded;
  }
  auto& c = metrics_.at(member.base_level);
  if (fidelity == http::Fidelity::kFull || fidelity == http::Fidelity::kCached ||
      fidelity == http::Fidelity::kDegraded) {
    c.forwarded += 1;
  }
  if (count_error) c.errors += 1;
  c.completed += 1;
  c.response_time.add(now - member.submitted_at);
  member.reply(http::BrokerReply{id, fidelity, payload});
}

void ServiceBroker::tick(double now) {
  if (auto batch = cluster_.flush(now)) {
    enqueue_batch(std::move(*batch), now);
    pump(now);
  }
  txn_->expire(now);

  if (!backends_.empty()) {
    for (const PrefetchEntry& entry :
         prefetcher_.due(now, static_cast<double>(outstanding_))) {
      issue_prefetch(entry, now);
    }
  }
}

void ServiceBroker::issue_prefetch(const PrefetchEntry& entry, double now) {
  auto backend_index = balancer_.pick();
  if (!backend_index) return;
  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    balancer_.complete(*backend_index);
    return;  // pool saturated — skip this cycle, the schedule already advanced
  }
  Backend::Call call{entry.payload, lease.fresh};
  std::shared_ptr<Backend> backend = backends_[*backend_index];
  size_t backend_idx = *backend_index;
  size_t connection = lease.connection;
  std::string cache_key = entry.cache_key;
  backend->invoke(call, [this, backend_idx, connection, cache_key](
                            double done_now, bool ok, const std::string& payload) {
    pool_.release(connection);
    balancer_.complete(backend_idx);
    if (ok) cache_->put(cache_key, payload, done_now);
  });
  (void)now;
}

ChannelStats ServiceBroker::channel_stats() const {
  ChannelStats total;
  for (const auto& backend : backends_) total.merge(backend->channel_stats());
  return total;
}

std::optional<double> ServiceBroker::next_deadline() const {
  std::optional<double> deadline = cluster_.next_deadline();
  std::optional<double> prefetch = prefetcher_.next_due();
  if (deadline && prefetch) return std::min(*deadline, *prefetch);
  return deadline ? deadline : prefetch;
}

}  // namespace sbroker::core
