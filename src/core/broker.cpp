#include "core/broker.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/log.h"
#include "util/rng.h"

namespace sbroker::core {
namespace {

/// Fills in the TTL-jitter salt from the broker's run seed when the caller
/// left it unset, so sibling brokers de-synchronize their expiries while
/// staying reproducible from rng_seed alone.
CacheTuning salted(CacheTuning tuning, uint64_t rng_seed) {
  if (tuning.jitter_salt == 0) {
    tuning.jitter_salt = util::derive_seed(rng_seed, 0x7711);
  }
  return tuning;
}

}  // namespace

ServiceBroker::ServiceBroker(std::string name, BrokerConfig config)
    : name_(std::move(name)),
      config_(config),
      admission_(config.rules, config.overload),
      cache_(std::make_shared<ResultCache>(
          config.cache_capacity, config.cache_ttl,
          salted(config.cache_tuning, config.rng_seed))),
      load_(std::make_shared<LoadTracker>()),
      cluster_(config.cluster),
      pool_(config.pool),
      balancer_(config.balance, util::Rng(config.rng_seed), config.health,
                config.balance_ewma_tau),
      txn_(std::make_shared<TransactionTracker>(config.rules, config.txn)),
      prefetcher_(config.prefetch_idle_threshold),
      hotspot_(config.hotspot),
      rewriter_(config.rewrite, config.rules),
      metrics_(config.rules.num_levels),
      obs_(config.obs, config.rules.num_levels),
      flight_table_(std::make_shared<FlightTable>()) {}

ServiceBroker::~ServiceBroker() {
  // Requests still outstanding at teardown never get a reply (their owner is
  // going away with us); just reclaim their arenas.
  for (auto& [id, ctx] : contexts_) destroy_context(ctx);
  contexts_.clear();
}

void ServiceBroker::add_backend(std::shared_ptr<Backend> backend, double weight) {
  assert(backend != nullptr);
  backends_.push_back(std::move(backend));
  balancer_.add_backend(weight);
}

void ServiceBroker::share_transactions(std::shared_ptr<TransactionTracker> shared) {
  assert(shared != nullptr);
  txn_ = std::move(shared);
}

void ServiceBroker::share_cache(std::shared_ptr<ResultCacheBase> shared) {
  assert(shared != nullptr);
  cache_ = std::move(shared);
}

void ServiceBroker::share_load(std::shared_ptr<LoadTracker> shared) {
  assert(shared != nullptr);
  assert(outstanding_ == 0);  // swapping mid-traffic would corrupt the count
  load_ = std::move(shared);
}

void ServiceBroker::share_flights(std::shared_ptr<FlightTable> shared) {
  assert(shared != nullptr);
  assert(flights_.empty());  // swapping mid-traffic would strand claims
  flight_table_ = std::move(shared);
}

double ServiceBroker::compute_deadline(double now, uint32_t deadline_ms) const {
  const LifecycleConfig& lc = config_.lifecycle;
  double budget = deadline_ms > 0 ? static_cast<double>(deadline_ms) / 1000.0
                                  : lc.default_deadline;
  if (budget <= 0.0) return kNoDeadline;
  if (lc.max_deadline > 0.0) budget = std::min(budget, lc.max_deadline);
  return now + budget;
}

void ServiceBroker::submit(double now, const http::BrokerRequest& request,
                           ReplyFn reply) {
  QosLevel base_level = config_.rules.clamp_level(request.qos_level);
  metrics_.at(base_level).issued += 1;

  QosLevel effective =
      txn_->effective_level(request.txn_id, request.txn_step, base_level, now);

  // 1. Result cache. lookup() classifies the probe: fresh hits and
  //    grace-window stale values answer immediately (the one caller that won
  //    the refresh claim also kicks off the background revalidation), cached
  //    backend errors answer as errors, and only a true miss proceeds to the
  //    fetch path.
  if (config_.enable_cache) {
    LookupResult looked = cache_->lookup(request.payload, now);
    if (looked.outcome != LookupOutcome::kMiss) {
      serve_from_cache(now, request, base_level, looked.outcome, *looked.value,
                       [&reply](const ReplyView& r) {
                         reply(http::BrokerReply{r.request_id, r.fidelity,
                                                 std::string(r.payload)});
                       });
      return;
    }
  }

  submit_tail(now, request, std::move(reply), base_level, effective);
}

bool ServiceBroker::try_submit_fast(double now, const http::BrokerRequest& request,
                                    Arena& scratch, ReplyViewFn reply) {
  if (!config_.enable_cache) return false;
  LookupView looked = cache_->lookup_into(request.payload, now, scratch);
  if (looked.outcome == LookupOutcome::kMiss) return false;

  QosLevel base_level = config_.rules.clamp_level(request.qos_level);
  metrics_.at(base_level).issued += 1;
  // Side-effect parity with submit(): transaction progress advances even for
  // cache-answered steps (escalation must see step N served from cache).
  txn_->effective_level(request.txn_id, request.txn_step, base_level, now);
  serve_from_cache(now, request, base_level, looked.outcome, looked.value, reply);
  return true;
}

void ServiceBroker::submit_miss(double now, const http::BrokerRequest& request,
                                ReplyFn reply) {
  QosLevel base_level = config_.rules.clamp_level(request.qos_level);
  metrics_.at(base_level).issued += 1;
  QosLevel effective =
      txn_->effective_level(request.txn_id, request.txn_step, base_level, now);
  submit_tail(now, request, std::move(reply), base_level, effective);
}

void ServiceBroker::serve_from_cache(double now, const http::BrokerRequest& request,
                                     QosLevel base_level, LookupOutcome outcome,
                                     std::string_view value, ReplyViewFn reply) {
  if (outcome == LookupOutcome::kNegative) {
    auto& c = metrics_.at(base_level);
    c.errors += 1;
    c.completed += 1;
    c.response_time.add(0.0);
    metrics_.flight.negative_hits += 1;
    obs_.record(base_level, obs::Stage::kTotal, 0.0);
    obs_.trace(now, request.request_id, obs::TraceEventKind::kCacheHit,
               static_cast<uint8_t>(base_level), /*detail: negative=*/2);
    reply(ReplyView{request.request_id, http::Fidelity::kError, value});
    return;
  }
  auto& c = metrics_.at(base_level);
  c.cache_hits += 1;
  c.completed += 1;
  c.response_time.add(0.0);
  obs_.record(base_level, obs::Stage::kTotal, 0.0);
  if (outcome != LookupOutcome::kHit) {
    metrics_.flight.swr_hits += 1;
    obs_.trace(now, request.request_id, obs::TraceEventKind::kSwr,
               static_cast<uint8_t>(base_level),
               outcome == LookupOutcome::kStaleRefresh ? 1 : 0);
  }
  obs_.trace(now, request.request_id, obs::TraceEventKind::kCacheHit,
             static_cast<uint8_t>(base_level));
  reply(ReplyView{request.request_id, http::Fidelity::kCached, value});
  if (outcome == LookupOutcome::kStaleRefresh) {
    issue_refresh(request.payload, now);
  }
}

void ServiceBroker::submit_tail(double now, const http::BrokerRequest& request,
                                ReplyFn reply, QosLevel base_level,
                                QosLevel effective) {
  // 2. Admission, against the (possibly cross-shard) outstanding count —
  //    floored by the federation's gossiped tier pressure when installed.
  double admission_load = load_->load();
  if (tier_load_) admission_load = std::max(admission_load, tier_load_());
  AdmissionDecision decision = admission_.decide(effective, admission_load, now);
  if (decision != AdmissionDecision::kForward) {
    reply_drop(now, request, base_level, reply);
    return;
  }

  if (backends_.empty()) {
    auto& c = metrics_.at(base_level);
    c.errors += 1;
    c.completed += 1;
    c.response_time.add(0.0);
    obs_.record(base_level, obs::Stage::kTotal, 0.0);
    obs_.trace(now, request.request_id, obs::TraceEventKind::kComplete,
               static_cast<uint8_t>(base_level),
               static_cast<uint16_t>(http::Fidelity::kError));
    reply(http::BrokerReply{request.request_id, http::Fidelity::kError,
                            "no backend registered"});
    return;
  }

  // 3. Forward path: degrade the query if the fidelity rules say so, then
  //    open the request's lifecycle context and feed the cluster engine.
  RewriteOutcome rewritten =
      rewriter_.apply(request.payload, effective, hotspot_.state());
  ++outstanding_;
  load_->inc();
  hotspot_.observe(load_->load());

  // The context and its canonical payload bytes share one pooled arena,
  // freed in a single step by the exactly-once terminal (destroy_context).
  std::unique_ptr<Arena> arena = arena_pool_.acquire();
  RequestContext* ctx = arena->create<RequestContext>();
  ctx->arena = arena.release();
  ctx->id = request.request_id;
  ctx->base_level = base_level;
  ctx->effective_level = effective;
  ctx->submitted_at = now;
  ctx->deadline = compute_deadline(now, request.deadline_ms);
  ctx->attempt_budget = std::max(1, config_.lifecycle.max_attempts);
  ctx->payload = ctx->arena->store(rewritten.payload);
  ctx->degraded = rewritten.degraded;
  ctx->reply = std::move(reply);
  if (ctx->deadline != kNoDeadline) {
    deadlines_.emplace(ctx->deadline, ctx->id);
    // Track the budget in force so the overload controller can derive its
    // latency target from what the traffic actually demands.
    double budget = ctx->deadline - now;
    deadline_budget_ewma_ = deadline_budget_ewma_ > 0.0
                                ? 0.9 * deadline_budget_ewma_ + 0.1 * budget
                                : budget;
  }
  contexts_[request.request_id] = ctx;
  obs_.trace(now, request.request_id, obs::TraceEventKind::kAdmit,
             static_cast<uint8_t>(base_level), static_cast<uint16_t>(effective));

  // 4. Single-flight coalescing, keyed by the canonical (post-rewrite)
  //    query. The first miss leads the one backend fetch; identical misses
  //    arriving before it resolves park as waiters and are answered from its
  //    completion, each still subject to its own deadline. When another
  //    shard already owns the fetch (shared FlightTable), this request parks
  //    under a leaderless local flight and the resolution arrives through
  //    drain_flight_wakeups().
  if (single_flight_enabled()) {
    std::string_view key = ctx->payload;
    auto fit = flights_.find(key);
    if (fit == flights_.end() && !claim_flight(key)) {
      Flight flight;
      flight.owner = false;
      fit = flights_.emplace(key, std::move(flight)).first;
    }
    if (fit != flights_.end()) {
      fit->second.waiters.push_back(request.request_id);
      metrics_.flight.coalesced_waiters += 1;
      obs_.trace(now, request.request_id, obs::TraceEventKind::kCoalesce,
                 static_cast<uint8_t>(base_level),
                 static_cast<uint16_t>(
                     std::min<size_t>(fit->second.waiters.size(), UINT16_MAX)));
      return;
    }
    Flight flight;
    flight.leader = request.request_id;
    flight.owner = true;
    flights_.emplace(key, std::move(flight));
  }

  if (auto batch = cluster_.add(request.request_id, std::move(rewritten.payload), now)) {
    enqueue_batch(std::move(*batch), now);
  }
  pump(now);
}

void ServiceBroker::reply_drop(double now, const http::BrokerRequest& request,
                               QosLevel base_level, ReplyFn& reply) {
  auto& c = metrics_.at(base_level);
  c.dropped += 1;
  c.completed += 1;
  c.response_time.add(0.0);
  obs_.record(base_level, obs::Stage::kTotal, 0.0);
  obs_.trace(now, request.request_id, obs::TraceEventKind::kDrop,
             static_cast<uint8_t>(base_level), /*detail=*/1);
  if (config_.serve_stale_on_drop) {
    if (auto stale = cache_->get_stale(request.payload)) {
      reply(http::BrokerReply{request.request_id, http::Fidelity::kCached, *stale});
      return;
    }
  }
  reply(http::BrokerReply{request.request_id, http::Fidelity::kBusy,
                          "system is busy"});
  (void)now;
}

void ServiceBroker::enqueue_batch(Batch batch, double now) {
  ReadyBatch ready;
  ready.priority = 1;
  uint16_t size = static_cast<uint16_t>(
      std::min<size_t>(batch.member_ids.size(), UINT16_MAX));
  for (uint64_t id : batch.member_ids) {
    auto it = contexts_.find(id);
    if (it != contexts_.end()) {
      RequestContext& ctx = *it->second;
      ready.priority = std::max(ready.priority, ctx.effective_level);
      ctx.batched_at = now;
      obs_.record(ctx.base_level, obs::Stage::kBatchWait, now - ctx.submitted_at);
      obs_.trace(now, id, obs::TraceEventKind::kCluster,
                 static_cast<uint8_t>(ctx.base_level), size);
    }
  }
  ready.batch = std::move(batch);
  dispatch_queue_.push(ready.priority, std::move(ready));
}

void ServiceBroker::pump(double now) {
  while (!dispatch_queue_.empty() &&
         (config_.dispatch_window == 0 || in_flight_batches_ < config_.dispatch_window)) {
    auto next = dispatch_queue_.pop();
    assert(next.has_value());
    dispatch(std::move(*next), now);
  }
}

void ServiceBroker::dispatch(ReadyBatch ready, double now) {
  // Members can expire (deadline shed) between batching and dispatch; they
  // already received their reply. The exchange carries only what is left.
  size_t live = 0;
  double longest_remaining = 0.0;
  bool unbounded = false;
  for (uint64_t id : ready.batch.member_ids) {
    auto it = contexts_.find(id);
    if (it == contexts_.end()) continue;
    ++live;
    double remaining = it->second->remaining(now);
    if (remaining == kNoDeadline) {
      unbounded = true;
    } else {
      longest_remaining = std::max(longest_remaining, remaining);
    }
  }
  if (live == 0) return;

  bool probe = false;
  auto backend_index = balancer_.pick(now, ready.avoid, &probe);
  assert(backend_index.has_value());  // add_backend checked in submit

  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    // Every connection is saturated: degrade the whole batch.
    balancer_.complete(*backend_index);
    if (probe) balancer_.abandon_probe(*backend_index);
    for (size_t i = 0; i < ready.batch.member_ids.size(); ++i) {
      uint64_t id = ready.batch.member_ids[i];
      auto it = contexts_.find(id);
      if (it == contexts_.end()) continue;
      RequestContext* ctx = it->second;
      contexts_.erase(it);
      // Mirror the admission-drop bookkeeping: the request was admitted but
      // cannot be carried, so it is shed with low fidelity.
      shed_context(ctx, now, /*deadline_miss=*/false);
      // A shed flight leader hands its key to a waiter (who re-enters the
      // dispatch queue and, while the pool stays saturated, is shed in turn
      // until the waiter list drains — the loop terminates).
      if (single_flight_enabled()) {
        settle_abandoned_flight(ready.batch.member_payloads[i], id, now);
      }
    }
    return;
  }

  ++in_flight_batches_;
  if (probe) ++metrics_.lifecycle.probes;
  uint64_t exchange_id = next_exchange_++;

  Backend::Call call;
  call.payload = ready.batch.combined_payload;
  call.needs_connection_setup = lease.fresh;
  // The exchange stays useful as long as its longest-lived member does;
  // shorter members expire individually out of the broker's deadline queue.
  // The slack keeps the transport's own timer strictly behind the broker's
  // deadline expiry, so the deadline path always claims the completion.
  call.timeout = unbounded
                     ? 0.0
                     : longest_remaining + config_.lifecycle.transport_slack;

  Exchange exchange;
  exchange.backend = *backend_index;
  exchange.connection = lease.connection;
  exchange.unfinished = live;
  exchange.dispatched_at = now;
  exchange.cancel = std::make_shared<CancelToken>();
  for (uint64_t id : ready.batch.member_ids) {
    auto it = contexts_.find(id);
    if (it == contexts_.end()) continue;
    RequestContext& ctx = *it->second;
    if (ctx.attempts == 0) {
      // QoS-queue residency: batch formation to first dispatch. Retries skip
      // this — their wait mixes in the failed attempt's channel time.
      double queued_since = ctx.batched_at > 0.0 ? ctx.batched_at : ctx.submitted_at;
      obs_.record(ctx.base_level, obs::Stage::kQueueWait, now - queued_since);
    }
    obs_.trace(now, id, obs::TraceEventKind::kDispatch,
               static_cast<uint8_t>(ctx.base_level),
               static_cast<uint16_t>(*backend_index));
    ctx.exchange = exchange_id;
    ctx.attempts += 1;
    ctx.dispatched_at = now;
    ctx.last_backend = *backend_index;
  }
  CancelTokenPtr token = exchange.cancel;
  exchange.batch = std::move(ready.batch);
  exchanges_.emplace(exchange_id, std::move(exchange));

  std::shared_ptr<Backend> backend = backends_[*backend_index];
  backend->invoke(call, token,
                  [this, exchange_id](double done_now, bool ok,
                                      const std::string& payload) {
                    on_exchange_complete(exchange_id, done_now, ok, payload);
                  });
}

void ServiceBroker::on_exchange_complete(uint64_t exchange_id, double now, bool ok,
                                         const std::string& payload) {
  auto it = exchanges_.find(exchange_id);
  if (it == exchanges_.end()) {
    // The deadline queue already harvested this exchange: every member was
    // answered and accounting settled, so the late result only gets counted.
    ++metrics_.lifecycle.late_completions;
    return;
  }
  Exchange exchange = std::move(it->second);
  exchanges_.erase(it);
  pool_.release(exchange.connection);
  balancer_.complete(exchange.backend);
  report_health(exchange.backend, ok, now, now - exchange.dispatched_at);
  assert(in_flight_batches_ > 0);
  --in_flight_batches_;

  const Batch& batch = exchange.batch;
  if (ok) {
    std::vector<std::string> parts = ClusterEngine::split_reply(batch, payload);
    for (size_t i = 0; i < batch.member_ids.size(); ++i) {
      // Cache before replying: once the reply is on the wire, another shard
      // may already be looking the repeat up in the shared cache. A fresh
      // result is worth caching even when its member already expired.
      if (config_.enable_cache) cache_->put(batch.member_payloads[i], parts[i], now);
      uint64_t id = batch.member_ids[i];
      auto ctx_it = contexts_.find(id);
      if (ctx_it != contexts_.end() && ctx_it->second->exchange == exchange_id) {
        RequestContext* ctx = ctx_it->second;
        contexts_.erase(ctx_it);
        obs_.record(ctx->base_level, obs::Stage::kChannelRtt,
                    now - ctx->dispatched_at);
        finish_context(ctx, now, http::Fidelity::kFull, parts[i],
                       /*count_error=*/false);
      }
      // Put, then resolve: parked shards woken by the FlightTable re-probe
      // the shared cache and must find the value. Resolving by key alone is
      // deliberate — any fresh result for the key answers its waiters, even
      // when the member itself already expired.
      if (single_flight_enabled()) {
        resolve_flight(batch.member_payloads[i], now, /*ok=*/true, parts[i]);
      }
    }
  } else {
    bool scheduled_retry = false;
    for (size_t i = 0; i < batch.member_ids.size(); ++i) {
      uint64_t id = batch.member_ids[i];
      const std::string& key = batch.member_payloads[i];
      auto ctx_it = contexts_.find(id);
      if (ctx_it == contexts_.end() || ctx_it->second->exchange != exchange_id) {
        // The member expired (or moved on) mid-exchange; its fetch chain
        // ends here, so a flight it still leads must be re-led or dropped.
        if (single_flight_enabled()) settle_abandoned_flight(key, id, now);
        continue;
      }
      RequestContext& ctx = *ctx_it->second;
      ctx.exchange = 0;
      obs_.record(ctx.base_level, obs::Stage::kChannelRtt, now - ctx.dispatched_at);
      if (may_retry(ctx, now)) {
        // The flight (if any) stays with this member: its chain continues.
        retries_.emplace(now + config_.lifecycle.retry_backoff * ctx.attempts, id);
        metrics_.at(ctx.base_level).retries += 1;
        obs_.trace(now, id, obs::TraceEventKind::kRetry,
                   static_cast<uint8_t>(ctx.base_level),
                   static_cast<uint16_t>(ctx.attempts));
        scheduled_retry = true;
      } else {
        RequestContext* moved = ctx_it->second;
        contexts_.erase(ctx_it);
        // Publish the failure (a no-op over a resident positive entry and
        // when negative caching is off), then fail the waiters. The error
        // resolve is guarded by leader identity so an unrelated chain's
        // failure cannot error-out a healthier flight.
        if (config_.enable_cache) cache_->put_negative(key, payload, now);
        if (single_flight_enabled()) {
          auto fit = flights_.find(key);
          if (fit != flights_.end() && fit->second.leader == id) {
            resolve_flight(key, now, /*ok=*/false, payload);
          }
        }
        finish_context(moved, now, http::Fidelity::kError, payload,
                       /*count_error=*/true);
      }
    }
    if (scheduled_retry) {
      drain_retries(now);  // zero-backoff configs re-dispatch immediately
      if (wakeup_) wakeup_();
    }
  }
  pump(now);
}

void ServiceBroker::destroy_context(RequestContext* ctx) {
  std::unique_ptr<Arena> arena(ctx->arena);
  ctx->~RequestContext();  // the arena doesn't run destructors
  arena_pool_.release(std::move(arena));
}

void ServiceBroker::finish_context(RequestContext* ctx, double now,
                                   http::Fidelity fidelity,
                                   const std::string& payload, bool count_error) {
  assert(outstanding_ > 0);
  --outstanding_;
  load_->dec();
  hotspot_.observe(load_->load());

  if (ctx->degraded && fidelity == http::Fidelity::kFull) {
    fidelity = http::Fidelity::kDegraded;
  }
  auto& c = metrics_.at(ctx->base_level);
  if (fidelity == http::Fidelity::kFull || fidelity == http::Fidelity::kCached ||
      fidelity == http::Fidelity::kDegraded) {
    c.forwarded += 1;
  }
  if (count_error) c.errors += 1;
  c.completed += 1;
  c.response_time.add(now - ctx->submitted_at);
  obs_.record(ctx->base_level, obs::Stage::kTotal, now - ctx->submitted_at);
  obs_.trace(now, ctx->id, obs::TraceEventKind::kComplete,
             static_cast<uint8_t>(ctx->base_level),
             static_cast<uint16_t>(fidelity));
  ctx->reply(http::BrokerReply{ctx->id, fidelity, payload});
  destroy_context(ctx);
}

void ServiceBroker::shed_context(RequestContext* ctx, double now, bool deadline_miss) {
  assert(outstanding_ > 0);
  --outstanding_;
  load_->dec();
  hotspot_.observe(load_->load());

  auto& c = metrics_.at(ctx->base_level);
  c.dropped += 1;
  if (deadline_miss) {
    c.deadline_misses += 1;
    // Under LIFO discipline the aged-out entries shed here *are* the queue
    // tail the discipline sacrificed; count them so the win is observable.
    if (admission_.overload().lifo_active()) c.lifo_sheds += 1;
  }
  c.completed += 1;
  c.response_time.add(now - ctx->submitted_at);
  obs_.record(ctx->base_level, obs::Stage::kTotal, now - ctx->submitted_at);
  obs_.trace(now, ctx->id,
             deadline_miss ? obs::TraceEventKind::kDeadline
                           : obs::TraceEventKind::kDrop,
             static_cast<uint8_t>(ctx->base_level),
             deadline_miss ? static_cast<uint16_t>(ctx->attempts)
                           : /*pool saturated=*/static_cast<uint16_t>(2));
  if (config_.serve_stale_on_drop) {
    if (auto stale = cache_->get_stale(ctx->payload)) {
      ctx->reply(http::BrokerReply{ctx->id, http::Fidelity::kCached, *stale});
      destroy_context(ctx);
      return;
    }
  }
  ctx->reply(http::BrokerReply{
      ctx->id, http::Fidelity::kBusy,
      deadline_miss ? std::string(kDeadlineExceeded) : "system is busy"});
  destroy_context(ctx);
}

bool ServiceBroker::may_retry(const RequestContext& ctx, double now) const {
  if (ctx.attempts >= ctx.attempt_budget) return false;
  double ready_at = now + config_.lifecycle.retry_backoff * ctx.attempts;
  return ctx.deadline == kNoDeadline || ready_at < ctx.deadline;
}

void ServiceBroker::expire_deadlines(double now) {
  while (!deadlines_.empty() && deadlines_.top().first <= now) {
    uint64_t id = deadlines_.top().second;
    deadlines_.pop();
    auto it = contexts_.find(id);
    // Skip lazily-deleted entries (request already answered) and entries
    // stale against a later re-submitted deadline for the same id.
    if (it == contexts_.end() || !it->second->expired(now)) continue;
    uint64_t exchange_id = it->second->exchange;
    RequestContext* ctx = it->second;
    contexts_.erase(it);
    if (single_flight_enabled()) {
      auto fit = flights_.find(ctx->payload);
      if (fit != flights_.end()) {
        if (fit->second.leader != ctx->id) {
          // An expiring waiter detaches; the fetch it was parked on
          // continues for whoever remains.
          auto& w = fit->second.waiters;
          w.erase(std::remove(w.begin(), w.end(), ctx->id), w.end());
          if (w.empty() && fit->second.leader == 0 && !fit->second.owner) {
            flights_.erase(fit);  // parked on a remote fetch, nobody left
          }
        } else if (exchange_id == 0) {
          // The leader died with no live fetch chain (pre-dispatch, or
          // parked for a retry slot that now never fires): promote a waiter
          // or drop the flight. A leader with a live exchange keeps it —
          // the completion or the harvest settles the flight.
          settle_abandoned_flight(ctx->payload, ctx->id, now);
        }
      }
    }
    shed_context(ctx, now, /*deadline_miss=*/true);
    if (exchange_id != 0) {
      auto ex_it = exchanges_.find(exchange_id);
      if (ex_it != exchanges_.end()) {
        assert(ex_it->second.unfinished > 0);
        if (--ex_it->second.unfinished == 0) harvest_exchange(exchange_id, now);
      }
    }
  }
}

void ServiceBroker::harvest_exchange(uint64_t exchange_id, double now) {
  auto it = exchanges_.find(exchange_id);
  if (it == exchanges_.end()) return;
  Exchange exchange = std::move(it->second);
  // Erase before firing the token: a backend that completes re-entrantly
  // from its cancel path must find the accounting already settled.
  exchanges_.erase(it);
  pool_.release(exchange.connection);
  balancer_.complete(exchange.backend);
  // A stall the broker had to abandon is a failure signal for the replica.
  report_health(exchange.backend, /*ok=*/false, now);
  assert(in_flight_batches_ > 0);
  --in_flight_batches_;
  ++metrics_.lifecycle.cancellations;
  exchange.cancel->cancel();
  // Every member's fetch chain ended without a completion; flights they
  // still lead are re-led or dropped. (A late completion finds the exchange
  // record gone and returns before touching flights.)
  if (single_flight_enabled()) {
    for (size_t i = 0; i < exchange.batch.member_ids.size(); ++i) {
      settle_abandoned_flight(exchange.batch.member_payloads[i],
                              exchange.batch.member_ids[i], now);
    }
  }
}

void ServiceBroker::report_health(size_t backend, bool ok, double now,
                                  double latency) {
  switch (balancer_.report(backend, ok, now, latency)) {
    case ReplicaEvent::kEjected:
      ++metrics_.lifecycle.ejections;
      break;
    case ReplicaEvent::kRecovered:
      ++metrics_.lifecycle.recoveries;
      break;
    case ReplicaEvent::kNone:
      break;
  }
}

void ServiceBroker::drain_retries(double now) {
  while (!retries_.empty() && retries_.top().first <= now) {
    uint64_t id = retries_.top().second;
    retries_.pop();
    auto it = contexts_.find(id);
    // Valid only for a context that has consumed an attempt and is not in
    // flight — anything else is a lazily-deleted entry.
    if (it == contexts_.end() || it->second->exchange != 0 ||
        it->second->attempts == 0) {
      continue;
    }
    const RequestContext& ctx = *it->second;
    ReadyBatch ready;
    ready.batch.member_ids = {id};
    ready.batch.member_payloads = {std::string(ctx.payload)};
    ready.batch.combined_payload = std::string(ctx.payload);
    ready.priority = ctx.effective_level;
    ready.avoid = ctx.last_backend;
    dispatch_queue_.push(ready.priority, std::move(ready));
  }
}

void ServiceBroker::tick(double now) {
  ++ticks_;
  evaluate_overload(now);
  if (auto batch = cluster_.flush(now)) {
    enqueue_batch(std::move(*batch), now);
  }
  drain_flight_wakeups(now);
  expire_deadlines(now);
  drain_retries(now);
  pump(now);
  txn_->expire(now);

  if (!backends_.empty()) {
    for (const PrefetchEntry& entry :
         prefetcher_.due(now, static_cast<double>(outstanding_),
                         config_.prefetch_burst)) {
      issue_prefetch(entry, now);
    }
  }
}

void ServiceBroker::evaluate_overload(double now) {
  OverloadController& ctl = admission_.overload();
  // Static-without-lifo never reads the signal; and without histograms
  // there is no signal to read (feedback policies need obs.histograms on).
  if (!ctl.wants_feedback() || !config_.obs.histograms) return;
  if (now < next_overload_eval_) return;
  next_overload_eval_ = now + config_.overload.eval_interval;

  obs::LatencyHistogram total = obs_.merged_histogram(obs::Stage::kTotal);
  obs::LatencyHistogram queue = obs_.merged_histogram(obs::Stage::kQueueWait);
  // Sub-microsecond kTotal records are admission drops and cache hits; the
  // controller must judge the requests that did real work, so exclude the
  // [0,1us) bucket from the interval view.
  constexpr double kMinSignal = 1e-6;
  OverloadSignal signal;
  signal.samples = std::max(total.count_since(overload_total_base_, kMinSignal),
                            queue.count_since(overload_queue_base_, kMinSignal));
  signal.p95 =
      std::max(total.quantile_since(overload_total_base_, 0.95, kMinSignal),
               queue.quantile_since(overload_queue_base_, 0.95, kMinSignal));
  signal.budget = deadline_budget_ewma_;

  bool was_overloaded = ctl.overloaded();
  bool was_lifo = ctl.lifo_active();
  ctl.observe(signal, now);
  overload_total_base_ = std::move(total);
  overload_queue_base_ = std::move(queue);
  metrics_.overload = ctl.stats();

  if (ctl.overloaded() != was_overloaded) {
    obs_.trace(now, /*request_id=*/0, obs::TraceEventKind::kOverload,
               static_cast<uint8_t>(std::min(ctl.threshold(), 255.0)),
               ctl.overloaded() ? 1 : 0);
  }
  if (ctl.lifo_active() != was_lifo) {
    dispatch_queue_.set_lifo(ctl.lifo_active());
  }
}

void ServiceBroker::issue_prefetch(const PrefetchEntry& entry, double now) {
  // A prefetch is just a speculative flight: it registers in the
  // single-flight machinery so a demand miss arriving while it is on the
  // wire parks as a waiter instead of duplicating the fetch — and so two
  // shards never prefetch the same key at once.
  bool track = single_flight_enabled();
  if (track && flights_.count(entry.cache_key)) return;
  if (track && !claim_flight(entry.cache_key)) return;
  auto backend_index = balancer_.pick(now);
  if (!backend_index) {
    if (track) flight_table_->resolve(entry.cache_key);
    return;
  }
  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    balancer_.complete(*backend_index);
    if (track) flight_table_->resolve(entry.cache_key);
    return;  // pool saturated — skip this cycle, the schedule already advanced
  }
  if (track) {
    Flight flight;  // leaderless: no request context carries this fetch
    flight.owner = true;
    flights_.emplace(entry.cache_key, std::move(flight));
  }
  Backend::Call call{entry.payload, lease.fresh};
  std::shared_ptr<Backend> backend = backends_[*backend_index];
  size_t backend_idx = *backend_index;
  size_t connection = lease.connection;
  std::string cache_key = entry.cache_key;
  double issued_at = now;
  backend->invoke(call, [this, backend_idx, connection, cache_key, issued_at,
                         track](double done_now, bool ok,
                                const std::string& payload) {
    pool_.release(connection);
    balancer_.complete(backend_idx);
    if (ok) {
      // Stamp with the issue time, not the completion time: a demand fetch
      // that completed while this prefetch was on the wire stored a newer
      // result, and the cache's last-write-wins rule must keep it.
      cache_->put(cache_key, payload, issued_at);
      if (track) resolve_flight(cache_key, done_now, /*ok=*/true, payload);
    } else if (track) {
      // Speculative work does not poison the negative cache; just fail any
      // demand waiters that attached while the prefetch was out.
      resolve_flight(cache_key, done_now, /*ok=*/false, payload);
    }
  });
}

void ServiceBroker::issue_refresh(std::string_view key, double now) {
  if (backends_.empty()) return;
  bool track = single_flight_enabled();
  // A live flight for the key already carries a fetch that will land a
  // fresher value; a second revalidation would be the stampede this layer
  // exists to prevent.
  if (track && flights_.count(key)) return;
  if (track && !claim_flight(key)) return;  // another shard is refreshing
  auto backend_index = balancer_.pick(now);
  if (!backend_index) {
    if (track) flight_table_->resolve(std::string(key));
    return;
  }
  ConnectionPool::Lease lease = pool_.acquire();
  if (!lease.granted) {
    balancer_.complete(*backend_index);
    if (track) flight_table_->resolve(std::string(key));
    return;
  }
  if (track) {
    Flight flight;  // leaderless background fetch, like a prefetch
    flight.owner = true;
    flights_.emplace(key, std::move(flight));
  }
  metrics_.flight.refreshes += 1;
  Backend::Call call{std::string(key), lease.fresh};
  // Background refreshes carry no request deadline; the transport timeout is
  // the only bound on the exchange.
  call.timeout = config_.refresh_timeout;
  std::shared_ptr<Backend> backend = backends_[*backend_index];
  size_t backend_idx = *backend_index;
  size_t connection = lease.connection;
  std::string cache_key(key);
  backend->invoke(call, [this, backend_idx, connection, cache_key, track](
                            double done_now, bool ok, const std::string& payload) {
    pool_.release(connection);
    balancer_.complete(backend_idx);
    if (ok) {
      cache_->put(cache_key, payload, done_now);
      if (track) resolve_flight(cache_key, done_now, /*ok=*/true, payload);
    } else {
      // The stale value stays servable: put_negative never overwrites a
      // resident positive entry, and the entry's refresh claim self-heals
      // one grace window after it was taken.
      cache_->put_negative(cache_key, payload, done_now);
      if (track) resolve_flight(cache_key, done_now, /*ok=*/false, payload);
    }
  });
}

bool ServiceBroker::claim_flight(std::string_view key) {
  return flight_table_->claim(std::string(key), [this](const std::string& resolved) {
    // Runs on the resolving shard's thread: enqueue and poke, nothing else.
    {
      std::lock_guard<std::mutex> lock(flight_wakeup_mu_);
      flight_wakeups_.push_back(resolved);
    }
    flight_wakeups_pending_.store(true, std::memory_order_release);
    if (flight_notifier_) flight_notifier_();
  });
}

void ServiceBroker::resolve_flight(std::string_view key, double now, bool ok,
                                   const std::string& payload) {
  auto fit = flights_.find(key);
  if (fit == flights_.end()) return;
  Flight flight = std::move(fit->second);
  flights_.erase(fit);
  for (uint64_t id : flight.waiters) {
    auto it = contexts_.find(id);
    if (it == contexts_.end()) continue;  // waiter already shed on deadline
    RequestContext* ctx = it->second;
    contexts_.erase(it);
    finish_context(ctx, now,
                   ok ? http::Fidelity::kCached : http::Fidelity::kError,
                   payload, /*count_error=*/!ok);
  }
  // Release the cross-shard claim last: parked shards re-probe the cache on
  // wake-up, and the value (or negative entry) is already published.
  if (flight.owner) flight_table_->resolve(std::string(key));
}

void ServiceBroker::settle_abandoned_flight(std::string_view key,
                                            uint64_t member_id, double now) {
  auto fit = flights_.find(key);
  if (fit == flights_.end() || fit->second.leader != member_id) return;
  if (contexts_.count(member_id)) return;  // chain still alive (retry pending)
  promote_or_drop(key, now);
}

void ServiceBroker::promote_or_drop(std::string_view key, double now) {
  auto fit = flights_.find(key);
  if (fit == flights_.end()) return;
  Flight& flight = fit->second;
  auto& waiters = flight.waiters;
  waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                               [this](uint64_t id) {
                                 return contexts_.find(id) == contexts_.end();
                               }),
                waiters.end());
  if (waiters.empty()) {
    bool owner = flight.owner;
    flights_.erase(fit);
    if (owner) flight_table_->resolve(std::string(key));
    return;
  }
  if (!flight.owner) {
    // Try to take over the cross-shard claim; if another shard still holds
    // it, stay parked — its resolution (or death) wakes us again.
    if (!claim_flight(key)) {
      flight.leader = 0;
      return;
    }
    flight.owner = true;
  }
  uint64_t next_leader = waiters.front();
  waiters.erase(waiters.begin());
  flight.leader = next_leader;
  metrics_.flight.promotions += 1;
  // Re-enter the dispatch path as a single-member batch, exactly like a
  // retry; every caller reaches pump() before returning to the event loop.
  const RequestContext& ctx = *contexts_.at(next_leader);
  ReadyBatch ready;
  ready.batch.member_ids = {next_leader};
  ready.batch.member_payloads = {std::string(ctx.payload)};
  ready.batch.combined_payload = std::string(ctx.payload);
  ready.priority = ctx.effective_level;
  dispatch_queue_.push(ready.priority, std::move(ready));
  (void)now;
}

void ServiceBroker::drain_flight_wakeups(double now) {
  if (!flight_wakeups_pending_.load(std::memory_order_acquire)) return;
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(flight_wakeup_mu_);
    keys.swap(flight_wakeups_);
    flight_wakeups_pending_.store(false, std::memory_order_relaxed);
  }
  for (const std::string& key : keys) {
    auto fit = flights_.find(key);
    // Only leaderless, unowned flights are waiting on a remote resolution;
    // anything else was settled (or re-claimed) locally in the meantime.
    if (fit == flights_.end() || fit->second.owner || fit->second.leader != 0) {
      continue;
    }
    LookupResult looked = cache_->lookup(key, now);
    switch (looked.outcome) {
      case LookupOutcome::kHit:
      case LookupOutcome::kStaleServe:
      case LookupOutcome::kStaleRefresh:
        resolve_flight(key, now, /*ok=*/true, *looked.value);
        if (looked.outcome == LookupOutcome::kStaleRefresh) {
          issue_refresh(key, now);
        }
        break;
      case LookupOutcome::kNegative:
        resolve_flight(key, now, /*ok=*/false, *looked.value);
        break;
      case LookupOutcome::kMiss:
        // The remote fetch died without publishing anything: promote a
        // local waiter to lead a fresh fetch (re-claiming the table entry).
        promote_or_drop(key, now);
        break;
    }
  }
}

ChannelStats ServiceBroker::channel_stats() const {
  ChannelStats total;
  for (const auto& backend : backends_) total.merge(backend->channel_stats());
  return total;
}

std::optional<double> ServiceBroker::next_deadline() const {
  std::optional<double> next = cluster_.next_deadline();
  auto fold = [&next](std::optional<double> t) {
    if (t && (!next || *t < *next)) next = t;
  };
  // Fold the prefetch schedule only while the broker is idle enough to
  // actually issue prefetches: Prefetcher::due() refuses to fire above the
  // idle threshold, so arming a timer for an overdue entry while busy makes
  // every tick re-arm at `now` — a zero-delay wakeup spin that pins the
  // owner's event loop until load drains.
  if (static_cast<double>(outstanding_) <= config_.prefetch_idle_threshold) {
    fold(prefetcher_.next_due());
  }
  // Fold the overload-feedback cadence only while requests are in flight:
  // an idle broker has nothing to measure, and folding unconditionally
  // would re-arm a discrete-event owner's timer forever (the sim would
  // never drain). An overload mode latched at drain time simply waits for
  // traffic to resume before its exit evaluations run.
  if (outstanding_ > 0 && config_.obs.histograms &&
      admission_.overload().wants_feedback()) {
    fold(next_overload_eval_);
  }
  while (!deadlines_.empty() && !contexts_.count(deadlines_.top().second)) {
    deadlines_.pop();
  }
  if (!deadlines_.empty()) fold(deadlines_.top().first);
  while (!retries_.empty() && !contexts_.count(retries_.top().second)) {
    retries_.pop();
  }
  if (!retries_.empty()) fold(retries_.top().first);
  return next;
}

}  // namespace sbroker::core
