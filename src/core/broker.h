// ServiceBroker: the paper's contribution, as a composable facade.
//
// One broker fronts one backend service ("It is per service based",
// Section III). Web application processes pass it messages containing the
// query and QoS specification; the broker answers every message exactly
// once, with one of four fidelities:
//
//   kFull    — forwarded to a backend, fresh result
//   kCached  — answered from the result cache (hit, or stale copy on drop)
//   kBusy    — admission-dropped with a busy notice
//   kError   — backend failure
//
// Internally: TransactionTracker computes the effective QoS level; the
// ResultCache short-circuits repeats; the AdmissionController applies the
// threshold/contract rules; admitted requests join the ClusterEngine, whose
// batches wait in a QosScheduler (highest class first) for a dispatch-window
// slot; the LoadBalancer picks a backend replica and the ConnectionPool
// decides whether the call pays connection setup. The Prefetcher refreshes
// registered keys from tick() while the broker is idle.
//
// Every admitted request lives in a RequestContext from admission until its
// single reply: it records the QoS classification, the absolute deadline and
// the attempt budget. tick() owns a deadline queue that sheds expired
// requests (stale-cache reply when available, else busy) and — once every
// member of an in-flight exchange has expired — harvests the exchange:
// releases its pool lease, balancer charge and dispatch-window slot, and
// fires its CancelToken so the transport can abandon the stalled work. A
// failed exchange re-dispatches its members to a different replica after a
// backoff, within the attempt budget and the remaining deadline; completion
// outcomes feed the LoadBalancer's replica-health state.
//
// Time is injected: every entry point takes `now` (seconds). The owner must
// call tick(now) periodically (or whenever next_deadline() falls due) to
// flush time-based cluster batches, expire deadlines, re-dispatch retries
// and run prefetch. set_wakeup() tells the owner when the schedule moved
// earlier behind its back (a retry scheduled from a backend completion).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/admission.h"
#include "core/arena.h"
#include "core/backend.h"
#include "core/balance.h"
#include "core/cache.h"
#include "core/cluster.h"
#include "core/flight.h"
#include "core/load.h"
#include "core/metrics.h"
#include "core/pool.h"
#include "core/hotspot.h"
#include "core/prefetch.h"
#include "core/qos.h"
#include "core/request.h"
#include "core/rewrite.h"
#include "core/scheduler.h"
#include "core/txn.h"
#include "http/wire.h"
#include "obs/observer.h"

namespace sbroker::core {

struct BrokerConfig {
  QosRules rules;                  ///< levels + outstanding threshold
  /// Threshold policy (static vs AIMD feedback) and LIFO-under-overload
  /// queue discipline; the default reproduces the paper's fixed rule.
  OverloadConfig overload;
  bool enable_cache = true;
  size_t cache_capacity = 4096;
  double cache_ttl = 5.0;          ///< seconds
  bool serve_stale_on_drop = true; ///< low-fidelity cached reply on drops
  /// Single-flight miss coalescing: concurrent identical misses share one
  /// backend fetch, later arrivals wait on the first. Requires enable_cache
  /// (the completion is published through the cache). Kill switch for A/B
  /// comparison in the benches.
  bool single_flight = true;
  /// Anti-stampede cache tuning (stale-while-revalidate grace, per-key TTL
  /// jitter, negative-result TTL); applies to the broker-private cache.
  /// Shared caches installed via share_cache() carry their own tuning.
  CacheTuning cache_tuning;
  /// Transport timeout for background revalidation fetches, seconds
  /// (0 = unbounded). They carry no request deadline, so this is the only
  /// bound on a stale-refresh exchange.
  double refresh_timeout = 1.0;
  ClusterConfig cluster;           ///< degree 1 = no clustering
  PoolConfig pool;
  BalancePolicy balance = BalancePolicy::kLeastOutstanding;
  /// Decay time constant of the balancer's per-replica latency EWMA
  /// (kEwma / kP2c policies), seconds.
  double balance_ewma_tau = kDefaultEwmaTau;
  TxnConfig txn;
  HotSpotConfig hotspot;    ///< thresholds for WARM/HOT load classification
  RewriteConfig rewrite;    ///< fidelity-variation rules (disabled by default)
  /// Max batches in flight to backends; 0 = unbounded (paper's distributed
  /// model lets the backend queue; bound it to exercise the QoS scheduler).
  size_t dispatch_window = 0;
  double prefetch_idle_threshold = 1.0;
  /// Max prefetch fetches issued per tick (0 = unbounded): after a busy
  /// spell the overdue backlog trickles out instead of bursting at once.
  size_t prefetch_burst = 4;
  uint64_t rng_seed = 42;          ///< seeds the balancer's random policy
  LifecycleConfig lifecycle;       ///< deadlines, attempt budget, backoff
  HealthConfig health;             ///< replica ejection / half-open recovery
  obs::ObsConfig obs;              ///< latency histograms + flight recorder
};

class ServiceBroker {
 public:
  using ReplyFn = core::ReplyFn;

  ServiceBroker(std::string name, BrokerConfig config);
  /// Frees arenas of requests still outstanding at teardown (no replies).
  ~ServiceBroker();

  /// Registers a backend replica with a capacity weight. At least one
  /// backend must be added before submit().
  void add_backend(std::shared_ptr<Backend> backend, double weight = 1.0);

  /// Broker-to-broker state exchange (Section III): brokers that share a
  /// TransactionTracker see each other's transaction progress, so a step-2
  /// access at broker B is escalated even though step 1 ran at broker A —
  /// "transactions involving different backend servers are properly
  /// protected". Call before traffic flows; replaces the private tracker.
  void share_transactions(std::shared_ptr<TransactionTracker> shared);

  /// Replaces the private result cache with one shared across broker shards
  /// (a thread-safe StripedResultCache), so a result fetched by one shard
  /// serves repeats arriving at any other. Call before traffic flows.
  void share_cache(std::shared_ptr<ResultCacheBase> shared);

  /// Replaces the private outstanding-load counter with one shared across
  /// broker shards, so the admission threshold applies to the *global*
  /// outstanding count rather than 1/N of it. Call before traffic flows.
  void share_load(std::shared_ptr<LoadTracker> shared);

  /// Replaces the private single-flight table with one shared across broker
  /// shards, so concurrent identical misses arriving at different shards
  /// still collapse to one backend fetch. Call before traffic flows.
  void share_flights(std::shared_ptr<FlightTable> shared);

  /// Registers a thread-safe callback fired when a flight this broker is
  /// parked on resolves at another shard. The owner should arrange for
  /// tick() to run soon on the broker's own thread (the daemon posts a poke
  /// to its reactor); pure-pull users can rely on the regular tick cadence.
  void set_flight_notifier(std::function<void()> notifier) {
    flight_notifier_ = std::move(notifier);
  }

  /// Registers a tier-wide load source (the federation's gossip view, in
  /// outstanding-request units comparable to the LoadTracker). Admission
  /// then decides against max(local load, tier load): a node with local
  /// headroom sheds for the tier when its peers report overload. The
  /// callback runs on this broker's thread, once per non-cache-served
  /// submission; it must synchronize internally. Call before traffic flows.
  void set_tier_load(std::function<double()> tier_load) {
    tier_load_ = std::move(tier_load);
  }

  /// Handles one request message. `reply` fires exactly once — possibly
  /// re-entrantly (cache hit / drop) or later (backend completion).
  void submit(double now, const http::BrokerRequest& request, ReplyFn reply);

  /// Allocation-free fast path: when the cache answers the request
  /// (hit / negative / stale-within-grace), replies synchronously through
  /// `reply` — the payload view lives in `scratch` — and returns true.
  /// Returns false without consuming the request when it must take the full
  /// fetch path; the caller then calls submit_miss(). The cache probe and
  /// its counters/refresh-claim side effects happen exactly once across the
  /// pair, which is why the fallback must be submit_miss(), not submit().
  bool try_submit_fast(double now, const http::BrokerRequest& request,
                       Arena& scratch, ReplyViewFn reply);

  /// submit() for a request whose cache probe (via try_submit_fast) already
  /// missed: identical except the duplicate probe is skipped.
  void submit_miss(double now, const http::BrokerRequest& request, ReplyFn reply);

  /// Housekeeping: flushes overdue cluster batches, sheds deadline-expired
  /// requests (harvesting exchanges whose members all expired), re-dispatches
  /// due retries, issues due prefetches, expires idle transactions. Call at
  /// ~cluster.max_wait granularity, and whenever next_deadline() falls due.
  void tick(double now);

  /// Earliest time at which tick() has work (cluster flush, request
  /// deadline, pending retry, or prefetch refresh); nullopt when nothing is
  /// pending.
  std::optional<double> next_deadline() const;

  /// Registers a callback fired when the broker's schedule gains an entry
  /// earlier than the owner may have armed for — today: a retry scheduled
  /// from inside a backend completion. Owners re-arm their tick timer from
  /// it; pure-pull users (tests driving tick() manually) can ignore it.
  void set_wakeup(std::function<void()> wakeup) { wakeup_ = std::move(wakeup); }

  /// Requests forwarded to backends (or buffered for batching) and not yet
  /// answered *by this broker*. The admission threshold compares against the
  /// LoadTracker's count, which equals this unless share_load() installed a
  /// cross-shard counter.
  size_t outstanding() const { return outstanding_; }

  const std::string& name() const { return name_; }
  const BrokerConfig& config() const { return config_; }
  const BrokerMetrics& metrics() const { return metrics_; }
  /// tick() invocations so far; the wakeup-spin regression tests assert the
  /// broker is not re-arming a zero-delay timer forever.
  uint64_t ticks() const { return ticks_; }
  FlightTable& flight_table() { return *flight_table_; }
  /// Misses currently waiting on an in-flight identical fetch (local view).
  size_t waiting_flights() const { return flights_.size(); }
  /// Latency histograms (per class x stage) and the request flight recorder.
  /// Single-writer like the broker itself: touch only from the owning thread.
  obs::BrokerObserver& observer() { return obs_; }
  const obs::BrokerObserver& observer() const { return obs_; }
  /// Wire-level channel counters summed across this broker's backends
  /// (all-zero for simulated backends). The real-socket daemons fold this
  /// into their metrics snapshots.
  ChannelStats channel_stats() const;
  ResultCacheBase& cache() { return *cache_; }
  const ResultCacheBase& cache() const { return *cache_; }
  LoadTracker& load_tracker() { return *load_; }
  Prefetcher& prefetcher() { return prefetcher_; }
  AdmissionController& admission() { return admission_; }
  /// The overload controller every admission decision routes through: live
  /// effective threshold, overload mode, feedback stats.
  OverloadController& overload_control() { return admission_.overload(); }
  const OverloadController& overload_control() const {
    return admission_.overload();
  }
  TransactionTracker& transactions() { return *txn_; }
  HotSpotDetector& hotspot() { return hotspot_; }
  /// Current load classification of this broker's backend service.
  LoadState load_state() const { return hotspot_.state(); }
  const QueryRewriter& rewriter() const { return rewriter_; }
  const LoadBalancer& balancer() const { return balancer_; }
  const ConnectionPool& connection_pool() const { return pool_; }
  size_t backend_count() const { return backends_.size(); }

 private:
  struct ReadyBatch {
    Batch batch;
    QosLevel priority = 1;  ///< max effective level among members
    std::optional<size_t> avoid;  ///< replica the members' last attempt failed on
  };

  /// One in-flight backend exchange (a dispatched batch). Completion and
  /// deadline harvest race benignly: whichever runs first releases the pool
  /// lease / balancer charge / window slot and erases the record, so the
  /// loser finds nothing and accounting settles exactly once.
  struct Exchange {
    Batch batch;
    size_t backend = 0;
    size_t connection = 0;
    size_t unfinished = 0;  ///< live members not yet individually resolved
    double dispatched_at = 0.0;  ///< feeds the balancer's latency EWMA
    CancelTokenPtr cancel;
  };

  /// Min-heap of (time, request id); entries are lazily deleted — validity
  /// is re-checked against contexts_ when they surface.
  using TimeHeap = std::priority_queue<std::pair<double, uint64_t>,
                                       std::vector<std::pair<double, uint64_t>>,
                                       std::greater<>>;

  /// One key's local single-flight record. `leader` is the request id whose
  /// fetch chain carries the flight (0 for a background refresh/prefetch or
  /// a fetch owned by another shard); `owner` says whether this broker holds
  /// the FlightTable claim; `waiters` are admitted requests parked for the
  /// resolution, each still subject to its own deadline.
  struct Flight {
    uint64_t leader = 0;
    bool owner = false;
    std::vector<uint64_t> waiters;
  };

  double compute_deadline(double now, uint32_t deadline_ms) const;
  /// submit() minus the cache probe: admission, lifecycle-context creation
  /// (placement-new into a pooled arena) and the cluster/dispatch path.
  void submit_tail(double now, const http::BrokerRequest& request, ReplyFn reply,
                   QosLevel base_level, QosLevel effective);
  /// Shared cache-answer bookkeeping (metrics, traces, reply, refresh kick)
  /// for submit() and try_submit_fast(). `outcome` must be servable.
  void serve_from_cache(double now, const http::BrokerRequest& request,
                        QosLevel base_level, LookupOutcome outcome,
                        std::string_view value, ReplyViewFn reply);
  void enqueue_batch(Batch batch, double now);
  void pump(double now);
  void dispatch(ReadyBatch ready, double now);
  void on_exchange_complete(uint64_t exchange_id, double now, bool ok,
                            const std::string& payload);
  /// Runs ~RequestContext and returns its arena (context + payload bytes)
  /// to the pool — the exactly-once terminal's single free.
  void destroy_context(RequestContext* ctx);
  void finish_context(RequestContext* ctx, double now, http::Fidelity fidelity,
                      const std::string& payload, bool count_error);
  void shed_context(RequestContext* ctx, double now, bool deadline_miss);
  bool may_retry(const RequestContext& ctx, double now) const;
  /// Feedback-control evaluation on the tick path: snapshots the observer's
  /// total/queue-wait histograms, feeds the interval's p95 + deadline budget
  /// to the OverloadController, and flips the dispatch queue's LIFO
  /// discipline when the overload mode changed. No-op off the evaluation
  /// cadence, for static-without-lifo policies, and with histograms off.
  void evaluate_overload(double now);
  void expire_deadlines(double now);
  void drain_retries(double now);
  void harvest_exchange(uint64_t exchange_id, double now);
  void report_health(size_t backend, bool ok, double now,
                     double latency = -1.0);
  void reply_drop(double now, const http::BrokerRequest& request, QosLevel base_level,
                  ReplyFn& reply);
  void issue_prefetch(const PrefetchEntry& entry, double now);

  bool single_flight_enabled() const {
    return config_.enable_cache && config_.single_flight;
  }
  /// Claims `key` in the (possibly shared) flight table; on failure the
  /// parked notify enqueues the key for drain_flight_wakeups().
  bool claim_flight(std::string_view key);
  /// Answers and detaches every waiter, releases the table claim. `ok`
  /// selects kCached vs kError waiter replies. No-op when no flight exists.
  void resolve_flight(std::string_view key, double now, bool ok,
                      const std::string& payload);
  /// Called when `member_id`'s fetch chain died without resolving its key
  /// (expired pre-dispatch, harvested, or failed with no retry budget while
  /// already shed): if it still leads the flight, promote a live waiter to
  /// leader or drop the flight.
  void settle_abandoned_flight(std::string_view key, uint64_t member_id,
                               double now);
  void promote_or_drop(std::string_view key, double now);
  /// Processes keys whose flights resolved on other shards: re-probes the
  /// shared cache and answers the parked waiters (or promotes a new leader
  /// when the remote fetch died).
  void drain_flight_wakeups(double now);
  /// Issues the single background revalidation for a stale-served key.
  void issue_refresh(std::string_view key, double now);

  std::string name_;
  BrokerConfig config_;
  AdmissionController admission_;
  std::shared_ptr<ResultCacheBase> cache_;  ///< possibly shared across shards
  std::shared_ptr<LoadTracker> load_;       ///< possibly shared across shards
  ClusterEngine cluster_;
  QosScheduler<ReadyBatch> dispatch_queue_;
  ConnectionPool pool_;
  LoadBalancer balancer_;
  std::shared_ptr<TransactionTracker> txn_;  ///< possibly shared across brokers
  Prefetcher prefetcher_;
  HotSpotDetector hotspot_;
  QueryRewriter rewriter_;
  BrokerMetrics metrics_;
  obs::BrokerObserver obs_;

  /// Transparent hash so string_view payloads probe flights_ without a
  /// temporary std::string.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::shared_ptr<Backend>> backends_;
  /// Contexts live in their own arenas (ctx->arena); the map holds raw
  /// pointers. Erase + destroy_context() happen together at the terminal.
  std::unordered_map<uint64_t, RequestContext*> contexts_;
  /// Per-request arenas recycled across requests: steady state allocates
  /// nothing for context + payload + response scratch.
  ArenaPool arena_pool_;
  std::unordered_map<uint64_t, Exchange> exchanges_;
  /// Local single-flight state, keyed by canonical (post-rewrite) query.
  std::unordered_map<std::string, Flight, KeyHash, std::equal_to<>> flights_;
  std::shared_ptr<FlightTable> flight_table_;  ///< possibly shared across shards
  /// Keys resolved by other shards, pending local drain. The only
  /// cross-thread touchpoint in the broker: appended from the resolving
  /// shard's notify, drained from tick() on the owning thread.
  std::mutex flight_wakeup_mu_;
  std::vector<std::string> flight_wakeups_;
  std::atomic<bool> flight_wakeups_pending_{false};
  std::function<void()> flight_notifier_;
  uint64_t next_exchange_ = 1;
  /// Lazily-pruned from the const next_deadline(); logical state unchanged.
  mutable TimeHeap deadlines_;  ///< (absolute deadline, request id)
  mutable TimeHeap retries_;    ///< (earliest re-dispatch time, request id)
  std::function<void()> wakeup_;
  std::function<double()> tier_load_;  ///< federation gossip pressure; may be null
  size_t outstanding_ = 0;
  size_t in_flight_batches_ = 0;
  uint64_t ticks_ = 0;
  /// Overload-feedback state: next evaluation time, the previous evaluation's
  /// histogram snapshots (the histograms are cumulative; the controller
  /// judges per-interval deltas) and an EWMA of the deadline budgets seen at
  /// admission — the latency yardstick when no explicit target is set.
  double next_overload_eval_ = 0.0;
  double deadline_budget_ewma_ = 0.0;
  obs::LatencyHistogram overload_total_base_;
  obs::LatencyHistogram overload_queue_base_;
};

}  // namespace sbroker::core
