#include "core/cache.h"

#include <cassert>

namespace sbroker::core {

ResultCache::ResultCache(size_t capacity, double ttl) : capacity_(capacity), ttl_(ttl) {
  assert(capacity > 0);
}

std::optional<std::string> ResultCache::get(std::string_view key, double now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (!fresh(*it->second, now)) {
    ++expired_;
    ++misses_;
    // Keep the stale entry: get_stale may still serve it on drops; a later
    // put() refreshes it in place.
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

std::optional<std::string> ResultCache::get_stale(std::string_view key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second->value;
}

void ResultCache::put(std::string_view key, std::string value, double now) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->value = std::move(value);
    it->second->stored_at = now;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    // Evict the least recently used entry.
    assert(!lru_.empty());
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{std::string(key), std::move(value), now});
  map_[lru_.front().key] = lru_.begin();
}

bool ResultCache::invalidate(std::string_view key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void ResultCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace sbroker::core
