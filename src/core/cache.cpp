#include "core/cache.h"

#include <cassert>

namespace sbroker::core {

LookupView ResultCacheBase::lookup_into(std::string_view key, double now,
                                        Arena& scratch) {
  LookupResult r = lookup(key, now);
  if (!r.value) return {r.outcome, {}};
  return {r.outcome, scratch.store(*r.value)};
}

ResultCache::ResultCache(size_t capacity, double ttl)
    : ResultCache(capacity, ttl, CacheTuning{}) {}

ResultCache::ResultCache(size_t capacity, double ttl, CacheTuning tuning)
    : capacity_(capacity), ttl_(ttl), tuning_(tuning) {
  assert(capacity > 0);
  assert(tuning_.ttl_jitter >= 0.0 && tuning_.ttl_jitter < 1.0);
}

double ResultCache::effective_ttl(std::string_view key) const {
  if (ttl_ <= 0.0) return 0.0;  // expiry disabled
  if (tuning_.ttl_jitter <= 0.0) return ttl_;
  // Deterministic per-key jitter in [-ttl_jitter, +ttl_jitter]: a second
  // hash pass (golden-ratio mix) decorrelates it from the stripe selector,
  // and the per-instance salt decorrelates it across broker instances.
  uint64_t h = (std::hash<std::string_view>{}(key) ^ tuning_.jitter_salt) *
               0x9e3779b97f4a7c15ULL;
  double u = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return ttl_ * (1.0 + tuning_.ttl_jitter * (2.0 * u - 1.0));
}

std::optional<std::string> ResultCache::get(std::string_view key, double now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second->negative || !fresh(*it->second, now)) {
    ++expired_;
    ++misses_;
    // Keep the stale entry: get_stale may still serve it on drops; a later
    // put() refreshes it in place.
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

std::pair<LookupOutcome, const std::string*> ResultCache::lookup_entry(
    std::string_view key, double now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return {LookupOutcome::kMiss, nullptr};
  }
  Entry& e = *it->second;
  if (fresh(e, now)) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return {e.negative ? LookupOutcome::kNegative : LookupOutcome::kHit,
            &e.value};
  }
  // Expired. Positive entries get the grace window; negatives never do — a
  // cached error past its short TTL must not keep answering.
  if (!e.negative && tuning_.swr_grace > 0.0 &&
      now - e.expires_at <= tuning_.swr_grace) {
    ++hits_;
    if (now - e.refresh_claimed_at > tuning_.swr_grace) {
      e.refresh_claimed_at = now;
      return {LookupOutcome::kStaleRefresh, &e.value};
    }
    return {LookupOutcome::kStaleServe, &e.value};
  }
  ++expired_;
  ++misses_;
  return {LookupOutcome::kMiss, nullptr};
}

LookupResult ResultCache::lookup(std::string_view key, double now) {
  auto [outcome, value] = lookup_entry(key, now);
  if (value == nullptr) return {outcome, std::nullopt};
  return {outcome, *value};
}

LookupView ResultCache::lookup_into(std::string_view key, double now,
                                    Arena& scratch) {
  auto [outcome, value] = lookup_entry(key, now);
  if (value == nullptr) return {outcome, {}};
  return {outcome, scratch.store(*value)};
}

std::optional<std::string> ResultCache::get_stale(std::string_view key) const {
  auto it = map_.find(key);
  if (it == map_.end() || it->second->negative) return std::nullopt;
  return it->second->value;
}

void ResultCache::store(std::string_view key, std::string value, double now,
                        bool negative, double ttl_for_entry) {
  double expires_at = ttl_for_entry > 0.0 ? now + ttl_for_entry : kClaimInf;
  auto it = map_.find(key);
  if (it != map_.end()) {
    Entry& e = *it->second;
    // Last-write-wins on stored_at: a completion carrying an older origin
    // timestamp (a slow prefetch issued before the resident value's fetch)
    // must not overwrite newer data.
    if (e.stored_at > now) return;
    e.value = std::move(value);
    e.stored_at = now;
    e.expires_at = expires_at;
    e.negative = negative;
    e.refresh_claimed_at = -kClaimInf;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    // Evict the least recently used entry.
    assert(!lru_.empty());
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{std::string(key), std::move(value), now, expires_at,
                        negative, -kClaimInf});
  map_[lru_.front().key] = lru_.begin();
}

void ResultCache::put(std::string_view key, std::string value, double now) {
  store(key, std::move(value), now, /*negative=*/false, effective_ttl(key));
}

void ResultCache::put_negative(std::string_view key, std::string value,
                               double now) {
  if (tuning_.negative_ttl <= 0.0) return;
  auto it = map_.find(key);
  // Never displace positive data, even stale positive data: get_stale can
  // still serve it at low fidelity, which beats re-serving the error.
  if (it != map_.end() && !it->second->negative) return;
  store(key, std::move(value), now, /*negative=*/true, tuning_.negative_ttl);
}

bool ResultCache::invalidate(std::string_view key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void ResultCache::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace sbroker::core
