// Result cache.
//
// "Since service brokers receive all the query results from the same
// backend servers, they can cache some of the results to serve similar
// requests" (Section III). Entries are keyed by the canonical query text,
// bounded by entry count with LRU eviction, and expire after a TTL. A
// *stale* lookup path exists for the degraded reply the distributed model
// sends on admission drops: "cached results from previous queries with lower
// fidelity" (Section IV).
//
// Anti-stampede machinery lives here too (CacheTuning):
//   * stale-while-revalidate — within a grace window past expiry, lookup()
//     serves the stale value and hands exactly one caller a refresh claim;
//   * per-key TTL jitter — co-inserted keys de-synchronize their expiries
//     instead of turning every hot key into a periodic miss storm;
//   * negative entries — backend error replies cached for a short TTL so a
//     failing hot key cannot stampede the backend either.
//
// `ResultCacheBase` is the interface the broker programs against; the
// single-threaded `ResultCache` here is the default implementation, and
// `StripedResultCache` (striped_cache.h) is the thread-safe one shared by
// the shards of a multi-threaded broker daemon.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/arena.h"

namespace sbroker::core {

/// Anti-stampede knobs; the all-zero default reproduces the plain LRU+TTL
/// behaviour exactly.
struct CacheTuning {
  /// Seconds past expiry during which lookup() still serves the stale value
  /// (kStaleRefresh/kStaleServe). 0 disables stale-while-revalidate.
  double swr_grace = 0.0;
  /// Fractional ±jitter applied to each entry's TTL, keyed by a hash of the
  /// entry key so it is deterministic per key. 0.1 = ±10%. 0 disables.
  double ttl_jitter = 0.0;
  /// TTL for negative (error-reply) entries, seconds. 0 disables negative
  /// caching entirely (put_negative becomes a no-op).
  double negative_ttl = 0.0;
  /// Salt mixed into the per-key jitter hash. Without it every cache
  /// instance jitters identically (same key -> same effective TTL on every
  /// broker), so a federation's members still expire a hot key in lockstep.
  /// 0 = unsalted; brokers fill it from their rng_seed via derive_seed.
  uint64_t jitter_salt = 0;
};

/// Classified result of ResultCacheBase::lookup().
enum class LookupOutcome {
  kMiss,          ///< nothing servable; caller must fetch
  kHit,           ///< fresh positive value
  kNegative,      ///< fresh negative (cached backend error) value
  kStaleServe,    ///< stale-within-grace value; refresh already claimed
  kStaleRefresh,  ///< stale-within-grace value; caller won the refresh claim
};

struct LookupResult {
  LookupOutcome outcome = LookupOutcome::kMiss;
  std::optional<std::string> value;
};

/// lookup_into() result: the value lives in the caller's arena (valid until
/// its reset), so the hot path serves a hit with zero heap allocations.
struct LookupView {
  LookupOutcome outcome = LookupOutcome::kMiss;
  std::string_view value;  ///< empty view on kMiss
};

/// Interface over the result cache: everything the broker data path and the
/// benchmark harnesses touch. Keys are `string_view` so hot-path probes do
/// not allocate. Implementations state their own thread-safety.
class ResultCacheBase {
 public:
  virtual ~ResultCacheBase() = default;

  /// Fresh lookup: returns the value only when present, unexpired and
  /// positive. Refreshes LRU position on hit.
  virtual std::optional<std::string> get(std::string_view key, double now) = 0;

  /// Classified lookup: distinguishes fresh hits, negative hits and
  /// grace-window stale values, and atomically assigns the single refresh
  /// claim for a stale entry (kStaleRefresh for exactly one caller per grace
  /// window — under the striped cache this claim is cross-shard).
  virtual LookupResult lookup(std::string_view key, double now) = 0;

  /// lookup() with the value copied into `scratch` instead of a heap
  /// std::string — the servable-outcome classification and refresh-claim
  /// semantics are identical. The base implementation wraps lookup();
  /// concrete caches override it to copy straight from the entry (for the
  /// striped cache, under the stripe lock — a raw view would race with
  /// eviction by other shards once the lock drops).
  virtual LookupView lookup_into(std::string_view key, double now, Arena& scratch);

  /// Stale-permitted lookup: returns the value even when expired (used for
  /// low-fidelity replies). Negative entries are never served stale. Does
  /// not count as a hit and does not refresh LRU.
  virtual std::optional<std::string> get_stale(std::string_view key) const = 0;

  /// Inserts/overwrites; evicts the LRU entry when full. Last-write-wins on
  /// `now`: a put carrying an older timestamp than the resident entry's
  /// stored_at is discarded (a slow prefetch response must not clobber a
  /// newer demand-fetched value).
  virtual void put(std::string_view key, std::string value, double now) = 0;

  /// Caches a backend error reply with the (short) negative TTL. No-op when
  /// negative caching is disabled or when a positive entry holds the key —
  /// stale truth beats fresh failure.
  virtual void put_negative(std::string_view key, std::string value,
                            double now) = 0;

  /// Removes a key; returns true when something was erased.
  virtual bool invalidate(std::string_view key) = 0;
  virtual void clear() = 0;

  virtual size_t size() const = 0;
  virtual size_t capacity() const = 0;
  virtual double ttl() const = 0;

  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
  virtual uint64_t expired() const = 0;
  virtual uint64_t evictions() const = 0;

  double hit_ratio() const {
    uint64_t total = hits() + misses();
    return total == 0 ? 0.0
                      : static_cast<double>(hits()) / static_cast<double>(total);
  }
};

/// Sentinel magnitude for "never claimed" / "never expires" times.
inline constexpr double kClaimInf = 1e300;

/// Single-threaded LRU+TTL cache. `final` so direct calls devirtualize.
class ResultCache final : public ResultCacheBase {
 public:
  /// `capacity` entries; `ttl` seconds of freshness (<=0 disables expiry).
  ResultCache(size_t capacity, double ttl);
  ResultCache(size_t capacity, double ttl, CacheTuning tuning);

  std::optional<std::string> get(std::string_view key, double now) override;
  LookupResult lookup(std::string_view key, double now) override;
  LookupView lookup_into(std::string_view key, double now, Arena& scratch) override;
  std::optional<std::string> get_stale(std::string_view key) const override;
  void put(std::string_view key, std::string value, double now) override;
  void put_negative(std::string_view key, std::string value, double now) override;
  bool invalidate(std::string_view key) override;
  void clear() override;

  size_t size() const override { return map_.size(); }
  size_t capacity() const override { return capacity_; }
  double ttl() const override { return ttl_; }
  const CacheTuning& tuning() const { return tuning_; }

  uint64_t hits() const override { return hits_; }
  uint64_t misses() const override { return misses_; }
  uint64_t expired() const override { return expired_; }
  uint64_t evictions() const override { return evictions_; }

  /// Effective TTL for `key` after jitter: ttl * (1 ± ttl_jitter), keyed by
  /// a hash of the key so it is stable across refreshes. Exposed for tests.
  double effective_ttl(std::string_view key) const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    double stored_at = 0.0;
    double expires_at = 0.0;  ///< absolute; +inf when expiry is disabled
    bool negative = false;
    /// Time the in-grace refresh was claimed; reclaimable once swr_grace
    /// has passed since the claim (a claimed refresh that never lands must
    /// not wedge the key). Cleared by put().
    double refresh_claimed_at = -kClaimInf;
  };

  // Transparent hash/equal: get()/get_stale() probe with the request payload
  // as a string_view without materializing a temporary std::string.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool fresh(const Entry& e, double now) const { return now <= e.expires_at; }
  void store(std::string_view key, std::string value, double now,
             bool negative, double ttl_for_entry);
  /// Shared classification for lookup()/lookup_into(): outcome plus a
  /// pointer at the resident value (null on kMiss).
  std::pair<LookupOutcome, const std::string*> lookup_entry(std::string_view key,
                                                            double now);

  size_t capacity_;
  double ttl_;
  CacheTuning tuning_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator, KeyHash,
                     std::equal_to<>>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t expired_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sbroker::core
