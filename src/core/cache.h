// Result cache.
//
// "Since service brokers receive all the query results from the same
// backend servers, they can cache some of the results to serve similar
// requests" (Section III). Entries are keyed by the canonical query text,
// bounded by entry count with LRU eviction, and expire after a TTL. A
// *stale* lookup path exists for the degraded reply the distributed model
// sends on admission drops: "cached results from previous queries with lower
// fidelity" (Section IV).
//
// `ResultCacheBase` is the interface the broker programs against; the
// single-threaded `ResultCache` here is the default implementation, and
// `StripedResultCache` (striped_cache.h) is the thread-safe one shared by
// the shards of a multi-threaded broker daemon.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sbroker::core {

/// Interface over the result cache: everything the broker data path and the
/// benchmark harnesses touch. Keys are `string_view` so hot-path probes do
/// not allocate. Implementations state their own thread-safety.
class ResultCacheBase {
 public:
  virtual ~ResultCacheBase() = default;

  /// Fresh lookup: returns the value only when present and unexpired.
  /// Refreshes LRU position on hit.
  virtual std::optional<std::string> get(std::string_view key, double now) = 0;

  /// Stale-permitted lookup: returns the value even when expired (used for
  /// low-fidelity replies). Does not count as a hit and does not refresh LRU.
  virtual std::optional<std::string> get_stale(std::string_view key) const = 0;

  /// Inserts/overwrites; evicts the LRU entry when full.
  virtual void put(std::string_view key, std::string value, double now) = 0;

  /// Removes a key; returns true when something was erased.
  virtual bool invalidate(std::string_view key) = 0;
  virtual void clear() = 0;

  virtual size_t size() const = 0;
  virtual size_t capacity() const = 0;
  virtual double ttl() const = 0;

  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
  virtual uint64_t expired() const = 0;
  virtual uint64_t evictions() const = 0;

  double hit_ratio() const {
    uint64_t total = hits() + misses();
    return total == 0 ? 0.0
                      : static_cast<double>(hits()) / static_cast<double>(total);
  }
};

/// Single-threaded LRU+TTL cache. `final` so direct calls devirtualize.
class ResultCache final : public ResultCacheBase {
 public:
  /// `capacity` entries; `ttl` seconds of freshness (<=0 disables expiry).
  ResultCache(size_t capacity, double ttl);

  std::optional<std::string> get(std::string_view key, double now) override;
  std::optional<std::string> get_stale(std::string_view key) const override;
  void put(std::string_view key, std::string value, double now) override;
  bool invalidate(std::string_view key) override;
  void clear() override;

  size_t size() const override { return map_.size(); }
  size_t capacity() const override { return capacity_; }
  double ttl() const override { return ttl_; }

  uint64_t hits() const override { return hits_; }
  uint64_t misses() const override { return misses_; }
  uint64_t expired() const override { return expired_; }
  uint64_t evictions() const override { return evictions_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
    double stored_at;
  };

  // Transparent hash/equal: get()/get_stale() probe with the request payload
  // as a string_view without materializing a temporary std::string.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool fresh(const Entry& e, double now) const {
    return ttl_ <= 0.0 || now - e.stored_at <= ttl_;
  }

  size_t capacity_;
  double ttl_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator, KeyHash,
                     std::equal_to<>>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t expired_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sbroker::core
