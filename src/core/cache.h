// Result cache.
//
// "Since service brokers receive all the query results from the same
// backend servers, they can cache some of the results to serve similar
// requests" (Section III). Entries are keyed by the canonical query text,
// bounded by entry count with LRU eviction, and expire after a TTL. A
// *stale* lookup path exists for the degraded reply the distributed model
// sends on admission drops: "cached results from previous queries with lower
// fidelity" (Section IV).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

namespace sbroker::core {

class ResultCache {
 public:
  /// `capacity` entries; `ttl` seconds of freshness (<=0 disables expiry).
  ResultCache(size_t capacity, double ttl);

  /// Fresh lookup: returns the value only when present and unexpired.
  /// Refreshes LRU position on hit.
  std::optional<std::string> get(const std::string& key, double now);

  /// Stale-permitted lookup: returns the value even when expired (used for
  /// low-fidelity replies). Does not count as a hit and does not refresh LRU.
  std::optional<std::string> get_stale(const std::string& key) const;

  /// Inserts/overwrites; evicts the LRU entry when full.
  void put(const std::string& key, std::string value, double now);

  /// Removes a key; returns true when something was erased.
  bool invalidate(const std::string& key);
  void clear();

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  double ttl() const { return ttl_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t expired() const { return expired_; }
  uint64_t evictions() const { return evictions_; }
  double hit_ratio() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
    double stored_at;
  };

  bool fresh(const Entry& e, double now) const {
    return ttl_ <= 0.0 || now - e.stored_at <= ttl_;
  }

  size_t capacity_;
  double ttl_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t expired_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sbroker::core
