#include "core/centralized.h"

#include <cstdlib>

namespace sbroker::core {

CentralizedController::CentralizedController(QosRules rules,
                                             double report_staleness_limit,
                                             const OverloadConfig& overload)
    : rules_(rules),
      overload_(make_overload_controller(overload, rules)),
      staleness_limit_(report_staleness_limit) {}

void CentralizedController::register_profile(std::string url, ResourceProfile profile) {
  profiles_[std::move(url)] = std::move(profile);
}

void CentralizedController::on_load_report(const std::string& service,
                                           double outstanding, double now) {
  LoadEntry& entry = loads_[service];
  entry.outstanding = outstanding;
  entry.reported_at = now;
  ++reports_;
}

CentralizedController::Verdict CentralizedController::admit(const std::string& url,
                                                            QosLevel level, double now) {
  auto profile_it = profiles_.find(url);
  if (profile_it == profiles_.end()) {
    ++rejects_;
    return Verdict::kRejectUnknownUrl;
  }
  for (const std::string& service : profile_it->second.services) {
    auto load_it = loads_.find(service);
    if (load_it == loads_.end() || load_it->second.reported_at < 0) {
      // Never heard from this broker. Fail closed only when staleness
      // checking is enabled; otherwise assume idle (cold start).
      if (staleness_limit_ > 0) {
        ++rejects_;
        return Verdict::kRejectStale;
      }
      continue;
    }
    const LoadEntry& entry = load_it->second;
    if (staleness_limit_ > 0 && now - entry.reported_at > staleness_limit_) {
      ++rejects_;
      return Verdict::kRejectStale;
    }
    if (!overload_->admit(level, entry.outstanding)) {
      ++rejects_;
      return Verdict::kRejectOverload;
    }
  }
  ++admits_;
  return Verdict::kAdmit;
}

const char* verdict_name(CentralizedController::Verdict v) {
  using Verdict = CentralizedController::Verdict;
  switch (v) {
    case Verdict::kAdmit:
      return "admit";
    case Verdict::kRejectOverload:
      return "reject-overload";
    case Verdict::kRejectUnknownUrl:
      return "reject-unknown-url";
    case Verdict::kRejectStale:
      return "reject-stale";
  }
  std::abort();  // exhaustive switch above (-Wswitch keeps it that way)
}

}  // namespace sbroker::core
