// Centralized deployment model (paper Section IV, Figure 4).
//
// "The Web server manages all the load and QoS requirements. The load
// information from the service brokers are obtained through a listener
// thread and all the requested URLs' resource profiles are accessible to
// the Web server. For a particular incoming request, the Web server checks
// its resource requirements and current load status of the brokers before
// the request proceeds to the normal handling process."
//
// The controller holds per-URL resource profiles (which services a URL
// touches) and the latest load report per service. admit() rejects a request
// up front when any touched service is over the requester's QoS bound —
// "the request is aborted before any real processing starts".
//
// The paper's scalability concern — the listener "could be overwhelmed with
// update messages, which may erode away computing power from the Web server
// processes" — is modeled by counting reports and exposing the CPU seconds
// they cost; the ablation bench charges that against front-end capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/overload.h"
#include "core/qos.h"

namespace sbroker::core {

struct ResourceProfile {
  /// Service names this URL's handler will call, in order.
  std::vector<std::string> services;
};

class CentralizedController {
 public:
  enum class Verdict {
    kAdmit,
    kRejectOverload,   ///< some touched service over the QoS bound
    kRejectUnknownUrl, ///< no resource profile registered
    kRejectStale,      ///< a touched service has no fresh load report
  };

  /// `rules`: the shared QoS thresholds. `report_staleness_limit`: maximum
  /// age (seconds) of a load report before it is distrusted (<=0 disables
  /// the staleness check). `overload` selects the threshold policy — the
  /// same pluggable OverloadController the distributed brokers use, so the
  /// ablation compares deployment models, not admission rules.
  CentralizedController(QosRules rules, double report_staleness_limit = 0.0,
                        const OverloadConfig& overload = {});

  void register_profile(std::string url, ResourceProfile profile);

  /// Listener-thread path: a broker reported `outstanding` for `service`.
  void on_load_report(const std::string& service, double outstanding, double now);

  /// Front-door admission for a request of class `level` targeting `url`.
  Verdict admit(const std::string& url, QosLevel level, double now);

  uint64_t reports_processed() const { return reports_; }
  uint64_t admits() const { return admits_; }
  uint64_t rejects() const { return rejects_; }

  /// CPU seconds the listener consumed, at `per_report_cost` seconds per
  /// update — the capacity erosion the distributed model avoids.
  double listener_cpu_seconds(double per_report_cost) const {
    return per_report_cost * static_cast<double>(reports_);
  }

  const QosRules& rules() const { return rules_; }

  /// The threshold policy behind admit(); a centralized deployment feeds it
  /// front-end latency measurements the same way the brokers do.
  OverloadController& overload() { return *overload_; }
  const OverloadController& overload() const { return *overload_; }

 private:
  struct LoadEntry {
    double outstanding = 0.0;
    double reported_at = -1.0;
  };

  QosRules rules_;
  std::unique_ptr<OverloadController> overload_;
  double staleness_limit_;
  std::unordered_map<std::string, ResourceProfile> profiles_;
  std::unordered_map<std::string, LoadEntry> loads_;
  uint64_t reports_ = 0;
  uint64_t admits_ = 0;
  uint64_t rejects_ = 0;
};

const char* verdict_name(CentralizedController::Verdict v);

}  // namespace sbroker::core
