#include "core/cluster.h"

#include <cassert>

#include "db/parser.h"

namespace sbroker::core {

ClusterEngine::ClusterEngine(ClusterConfig config) : config_(config) {
  assert(config_.degree >= 1);
}

std::optional<Batch> ClusterEngine::add(uint64_t request_id, std::string payload,
                                        double now) {
  if (pending_ids_.empty()) oldest_arrival_ = now;
  pending_ids_.push_back(request_id);
  pending_payloads_.push_back(std::move(payload));
  if (pending_ids_.size() >= config_.degree) return build_batch();
  return std::nullopt;
}

std::optional<Batch> ClusterEngine::flush(double now, bool force) {
  if (pending_ids_.empty()) return std::nullopt;
  if (!force && now - oldest_arrival_ < config_.max_wait) return std::nullopt;
  return build_batch();
}

std::optional<double> ClusterEngine::next_deadline() const {
  if (pending_ids_.empty()) return std::nullopt;
  return oldest_arrival_ + config_.max_wait;
}

Batch ClusterEngine::build_batch() {
  Batch batch;
  batch.member_ids = std::move(pending_ids_);
  batch.member_payloads = std::move(pending_payloads_);
  pending_ids_.clear();
  pending_payloads_.clear();
  ++batches_emitted_;

  if (config_.strategy == RewriteStrategy::kSqlRepeat && batch.member_ids.size() > 1) {
    bool homogeneous = true;
    for (size_t i = 1; i < batch.member_payloads.size(); ++i) {
      if (batch.member_payloads[i] != batch.member_payloads[0]) {
        homogeneous = false;
        break;
      }
    }
    if (homogeneous) {
      // Rewrite "Q" x n as "Q REPEAT n" when Q parses as our SQL subset.
      try {
        db::SelectQuery q = db::parse_select(batch.member_payloads[0]);
        q.repeat *= batch.member_ids.size();
        batch.combined_payload = q.to_string();
        batch.used_strategy = RewriteStrategy::kSqlRepeat;
        return batch;
      } catch (const db::ParseError&) {
        // Not SQL; fall through to record separation.
      }
    }
  }

  batch.combined_payload = join_payloads(batch.member_payloads);
  batch.used_strategy = RewriteStrategy::kRecordSeparated;
  return batch;
}

std::vector<std::string> ClusterEngine::split_reply(const Batch& batch,
                                                    const std::string& combined_reply) {
  size_t n = batch.member_ids.size();
  if (n == 1) return {combined_reply};

  if (batch.used_strategy == RewriteStrategy::kSqlRepeat) {
    // The REPEAT result concatenates n identical result sets; every member
    // asked the identical query, so each gets one copy. The backend joins
    // per-repeat chunks with the record separator (see srv/db_backend);
    // if it did not, fall through to the degraded path below.
    auto records = split_records(combined_reply);
    if (records.size() == n) return records;
    return std::vector<std::string>(n, combined_reply);
  }

  auto records = split_records(combined_reply);
  if (records.size() == n) return records;
  // Mismatch: deliver the whole reply to everyone rather than dropping.
  return std::vector<std::string>(n, combined_reply);
}

std::string ClusterEngine::join_payloads(const std::vector<std::string>& payloads) {
  std::string out;
  for (size_t i = 0; i < payloads.size(); ++i) {
    if (i) out += kRecordSep;
    out += payloads[i];
  }
  return out;
}

std::vector<std::string> ClusterEngine::split_records(const std::string& joined) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = joined.find(kRecordSep, start);
    if (pos == std::string::npos) {
      out.push_back(joined.substr(start));
      return out;
    }
    out.push_back(joined.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace sbroker::core
