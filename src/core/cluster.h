// Request clustering engine.
//
// "The service broker in the front-end Web server could gather all the
// requests and rewrite the query command to notify the script to repeat the
// same workload multiple times to achieve clustering" (Section V-A). The
// engine buffers submitted requests and flushes a *batch* when either the
// configured degree is reached or the oldest member has waited past the
// flush deadline. One batch maps to one backend access.
//
// Two rewrite strategies are provided:
//   * kRecordSeparated — member payloads joined with the ASCII record
//     separator (0x1e). Backends in this repo execute each record and join
//     the per-record results the same way, so splitting is exact.
//   * kSqlRepeat — when all member payloads are the identical SQL text, the
//     batch is rewritten as a single `... REPEAT n` statement, reproducing
//     the paper's script-repeats-workload trick. Falls back to
//     kRecordSeparated for heterogeneous members.
//
// MGET batching for plain HTTP targets lives in http/mget.h; the broker
// picks it when payloads look like URI targets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sbroker::core {

/// ASCII record separator joining batched payloads and batched results.
inline constexpr char kRecordSep = '\x1e';

enum class RewriteStrategy { kRecordSeparated, kSqlRepeat };

struct ClusterConfig {
  size_t degree = 1;        ///< members per batch; 1 disables clustering
  double max_wait = 0.05;   ///< seconds the oldest member may wait
  RewriteStrategy strategy = RewriteStrategy::kRecordSeparated;
};

/// One flushed batch.
struct Batch {
  std::vector<uint64_t> member_ids;       ///< request ids, arrival order
  std::vector<std::string> member_payloads;
  std::string combined_payload;           ///< what goes to the backend
  RewriteStrategy used_strategy = RewriteStrategy::kRecordSeparated;
};

class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig config);

  /// Adds a request. Returns a flushed batch when this arrival completed
  /// one, else nullopt (request is buffered).
  std::optional<Batch> add(uint64_t request_id, std::string payload, double now);

  /// Flushes the pending partial batch when its oldest member has waited
  /// past max_wait, or unconditionally when `force`.
  std::optional<Batch> flush(double now, bool force = false);

  /// Time at which the pending batch must be flushed; nullopt when empty.
  std::optional<double> next_deadline() const;

  size_t pending() const { return pending_ids_.size(); }
  const ClusterConfig& config() const { return config_; }
  uint64_t batches_emitted() const { return batches_emitted_; }

  /// Splits a combined backend reply into per-member payloads. `batch` must
  /// be the batch the reply answers. Returns one payload per member; when
  /// the reply does not split cleanly (backend bug or corruption) every
  /// member receives the full reply (degraded but never silent).
  static std::vector<std::string> split_reply(const Batch& batch,
                                              const std::string& combined_reply);

  /// Joins payloads with the record separator (what backends must undo).
  static std::string join_payloads(const std::vector<std::string>& payloads);

  /// Splits a record-separated string. Single segment for sep-free input.
  static std::vector<std::string> split_records(const std::string& joined);

 private:
  Batch build_batch();

  ClusterConfig config_;
  std::vector<uint64_t> pending_ids_;
  std::vector<std::string> pending_payloads_;
  double oldest_arrival_ = 0.0;
  uint64_t batches_emitted_ = 0;
};

}  // namespace sbroker::core
