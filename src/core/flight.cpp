#include "core/flight.h"

#include <utility>

namespace sbroker::core {

FlightTable::FlightTable(size_t stripes) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

bool FlightTable::claim(const std::string& key, Notify notify) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto [it, inserted] = s.flights.try_emplace(key);
  if (inserted) {
    claims_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (notify) it->second.push_back(std::move(notify));
  parked_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void FlightTable::resolve(const std::string& key) {
  std::vector<Notify> subscribers;
  {
    Stripe& s = stripe_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.flights.find(key);
    if (it == s.flights.end()) return;
    subscribers = std::move(it->second);
    s.flights.erase(it);
  }
  resolves_.fetch_add(1, std::memory_order_relaxed);
  // Fired outside the stripe lock: a subscriber may re-enter claim() for the
  // same stripe (a parked shard promoting a local waiter to the new leader).
  for (Notify& fn : subscribers) fn(key);
}

size_t FlightTable::in_flight() const {
  size_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->flights.size();
  }
  return total;
}

}  // namespace sbroker::core
