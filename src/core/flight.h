// Cross-shard single-flight registry.
//
// The result cache dedupes *completed* queries; this table dedupes the
// in-flight ones. The first broker shard to miss on a key claims the flight
// and performs the one backend fetch; every other shard that misses on the
// same key while the claim is held parks its requests locally and subscribes
// for the resolution. resolve() — called by the claim owner after the result
// (or error) has been published to the shared cache — fires each subscriber
// exactly once, outside the stripe lock.
//
// Single-threaded brokers use a private table (claims then always succeed,
// and the same structure carries the local waiter bookkeeping); the sharded
// daemon shares one table across shards the same way it shares the striped
// cache. Mutex-striped by key hash like StripedResultCache: the table is
// touched only on cache misses, never on the hit path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sbroker::core {

class FlightTable {
 public:
  /// Fired (once) when the flight for `key` resolves. May run on the
  /// resolving shard's thread — implementations must be thread-safe and
  /// cheap (the brokers enqueue the key and poke their own reactor).
  using Notify = std::function<void(const std::string& key)>;

  explicit FlightTable(size_t stripes = 8);

  /// Attempts to become the fetch owner for `key`. Returns true when the
  /// caller won (it must eventually resolve()); false when another shard
  /// already holds the claim, in which case `notify` is parked and fires at
  /// resolution.
  bool claim(const std::string& key, Notify notify);

  /// Ends the flight: clears the claim and fires every parked subscriber.
  /// No-op when the key holds no claim.
  void resolve(const std::string& key);

  uint64_t claims() const { return claims_.load(std::memory_order_relaxed); }
  uint64_t parked() const { return parked_.load(std::memory_order_relaxed); }
  uint64_t resolves() const { return resolves_.load(std::memory_order_relaxed); }
  /// Keys currently claimed (snapshot; races with concurrent claims).
  size_t in_flight() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::vector<Notify>> flights;
  };

  Stripe& stripe_for(const std::string& key) const {
    return *stripes_[std::hash<std::string_view>{}(key) % stripes_.size()];
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> claims_{0};
  std::atomic<uint64_t> parked_{0};
  std::atomic<uint64_t> resolves_{0};
};

}  // namespace sbroker::core
