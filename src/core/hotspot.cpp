#include "core/hotspot.h"

namespace sbroker::core {

const char* load_state_name(LoadState s) {
  switch (s) {
    case LoadState::kNormal:
      return "normal";
    case LoadState::kWarm:
      return "warm";
    case LoadState::kHot:
      return "hot";
  }
  return "?";
}

HotSpotDetector::HotSpotDetector(HotSpotConfig config) : config_(config) {}

LoadState HotSpotDetector::observe(double outstanding) {
  if (!primed_) {
    ewma_ = outstanding;
    primed_ = true;
  } else {
    ewma_ = config_.alpha * outstanding + (1.0 - config_.alpha) * ewma_;
  }

  double warm_up = config_.warm_threshold;
  double hot_up = config_.hot_threshold;
  double warm_down = warm_up * (1.0 - config_.hysteresis);
  double hot_down = hot_up * (1.0 - config_.hysteresis);

  switch (state_) {
    case LoadState::kNormal:
      if (ewma_ >= hot_up) {
        move_to(LoadState::kHot);
      } else if (ewma_ >= warm_up) {
        move_to(LoadState::kWarm);
      }
      break;
    case LoadState::kWarm:
      if (ewma_ >= hot_up) {
        move_to(LoadState::kHot);
      } else if (ewma_ < warm_down) {
        move_to(LoadState::kNormal);
      }
      break;
    case LoadState::kHot:
      if (ewma_ < warm_down) {
        move_to(LoadState::kNormal);
      } else if (ewma_ < hot_down) {
        move_to(LoadState::kWarm);
      }
      break;
  }
  return state_;
}

void HotSpotDetector::move_to(LoadState next) {
  LoadState prev = state_;
  state_ = next;
  ++transitions_;
  if (on_transition_) on_transition_(prev, next);
}

void HotSpotDetector::reset() {
  state_ = LoadState::kNormal;
  ewma_ = 0.0;
  primed_ = false;
}

}  // namespace sbroker::core
