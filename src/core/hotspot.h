// Hot-spot detection (paper Sections II-III).
//
// "When the traffic to the same backend server is beyond its capacity, a hot
// spot is generated and this backend server is likely to become bottleneck
// of the entire request handling process. ... Service brokers can notify
// request schedulers about the onset of hot spots or respond to the requests
// with lower fidelity results."
//
// The detector tracks an exponentially weighted moving average of the
// broker's outstanding count (sampled at every observation) and classifies
// the backend as NORMAL / WARM / HOT against two thresholds, with hysteresis
// (a band below each threshold must be crossed to de-escalate) so the state
// does not flap at the boundary. Transitions invoke a registered callback —
// the hook the centralized model's load reports and the rewrite rules use.
#pragma once

#include <cstdint>
#include <functional>

namespace sbroker::core {

enum class LoadState { kNormal = 0, kWarm = 1, kHot = 2 };

const char* load_state_name(LoadState s);

struct HotSpotConfig {
  double warm_threshold = 10.0;  ///< EWMA outstanding at which WARM begins
  double hot_threshold = 18.0;   ///< EWMA outstanding at which HOT begins
  double alpha = 0.2;            ///< EWMA weight of the newest sample
  double hysteresis = 0.1;       ///< fractional band for de-escalation
};

class HotSpotDetector {
 public:
  /// (previous state, new state) on every transition.
  using TransitionFn = std::function<void(LoadState, LoadState)>;

  explicit HotSpotDetector(HotSpotConfig config);

  /// Feeds one sample of the instantaneous outstanding count.
  /// Returns the (possibly updated) state.
  LoadState observe(double outstanding);

  LoadState state() const { return state_; }
  double ewma() const { return ewma_; }
  uint64_t transitions() const { return transitions_; }

  void set_on_transition(TransitionFn fn) { on_transition_ = std::move(fn); }

  /// Resets to NORMAL with an empty average.
  void reset();

 private:
  void move_to(LoadState next);

  HotSpotConfig config_;
  LoadState state_ = LoadState::kNormal;
  double ewma_ = 0.0;
  bool primed_ = false;
  uint64_t transitions_ = 0;
  TransitionFn on_transition_;
};

}  // namespace sbroker::core
