// Shared outstanding-request counter for admission under sharding.
//
// The paper's threshold rule compares a QoS class bound against "the number
// of the outstanding requests" at the broker (Section V-B-1). When the
// broker is sharded across N reactor threads, each shard seeing only its own
// outstanding count would multiply every admission bound by N and let load
// N times the configured threshold through. All shards therefore debit and
// credit one atomic counter, and every shard's AdmissionController decides
// against the *global* load.
//
// Relaxed ordering is sufficient: the counter is a load estimate feeding a
// threshold comparison, not a synchronization point; admission was already
// approximate across the instants of concurrent arrivals.
#pragma once

#include <atomic>
#include <cstdint>

namespace sbroker::core {

class LoadTracker {
 public:
  void inc() { outstanding_.fetch_add(1, std::memory_order_relaxed); }
  void dec() { outstanding_.fetch_sub(1, std::memory_order_relaxed); }

  int64_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  double load() const { return static_cast<double>(outstanding()); }

 private:
  std::atomic<int64_t> outstanding_{0};
};

}  // namespace sbroker::core
