// Per-class broker metrics.
//
// Everything the evaluation section reports comes from these counters:
// completed requests per class (Table I), drop ratios per broker per class
// (Tables II-IV), and processing-time series (Figures 9 and 10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/overload.h"
#include "util/stats.h"

namespace sbroker::core {

class BrokerMetrics {
 public:
  explicit BrokerMetrics(int num_levels = 3) : per_class_(static_cast<size_t>(num_levels)) {}

  struct ClassCounters {
    uint64_t issued = 0;      ///< requests submitted to the broker
    uint64_t forwarded = 0;   ///< sent to a backend
    uint64_t dropped = 0;     ///< shed with busy/stale reply (admission,
                              ///< saturation, or deadline expiry)
    uint64_t cache_hits = 0;  ///< served from the result cache
    uint64_t completed = 0;   ///< replies delivered (any fidelity)
    uint64_t errors = 0;      ///< backend failures surfaced to the client
    uint64_t deadline_misses = 0;  ///< deadline-expired sheds (subset of dropped)
    uint64_t lifo_sheds = 0;  ///< deadline sheds taken while the class queue
                              ///< ran LIFO (subset of deadline_misses)
    uint64_t retries = 0;     ///< broker-level re-dispatches to another replica
    util::Summary response_time;  ///< submit -> reply, seconds

    double drop_ratio() const {
      return issued == 0 ? 0.0
                         : static_cast<double>(dropped) / static_cast<double>(issued);
    }
  };

  int num_levels() const { return static_cast<int>(per_class_.size()); }

  ClassCounters& at(int level) {
    return per_class_.at(static_cast<size_t>(clamp(level)) - 1);
  }
  const ClassCounters& at(int level) const {
    return per_class_.at(static_cast<size_t>(clamp(level)) - 1);
  }

  /// Aggregates across classes.
  ClassCounters total() const {
    ClassCounters t;
    for (const auto& c : per_class_) {
      t.issued += c.issued;
      t.forwarded += c.forwarded;
      t.dropped += c.dropped;
      t.cache_hits += c.cache_hits;
      t.completed += c.completed;
      t.errors += c.errors;
      t.deadline_misses += c.deadline_misses;
      t.lifo_sheds += c.lifo_sheds;
      t.retries += c.retries;
      t.response_time.merge(c.response_time);
    }
    return t;
  }

  /// Request-lifecycle events that are not per-class: exchange abandonment
  /// and replica-health transitions. Maintained by the broker, merged across
  /// shards like everything else.
  struct LifecycleStats {
    uint64_t cancellations = 0;     ///< in-flight exchanges abandoned at expiry
    uint64_t late_completions = 0;  ///< backend answers after the broker gave up
    uint64_t ejections = 0;         ///< replica ejections (incl. failed probes)
    uint64_t recoveries = 0;        ///< replicas recovered via half-open probe
    uint64_t probes = 0;            ///< half-open probe requests issued

    void merge(const LifecycleStats& other) {
      cancellations += other.cancellations;
      late_completions += other.late_completions;
      ejections += other.ejections;
      recoveries += other.recoveries;
      probes += other.probes;
    }
  };

  /// Anti-stampede counters, not per-class: how much backend work the
  /// single-flight / stale-while-revalidate layer absorbed or deferred.
  struct FlightStats {
    uint64_t coalesced_waiters = 0;  ///< misses attached to an in-flight fetch
    uint64_t swr_hits = 0;           ///< stale values served within the grace window
    uint64_t refreshes = 0;          ///< background revalidations issued
    uint64_t negative_hits = 0;      ///< errors answered from the negative cache
    uint64_t promotions = 0;         ///< waiters promoted to leader after a dead fetch

    void merge(const FlightStats& other) {
      coalesced_waiters += other.coalesced_waiters;
      swr_hits += other.swr_hits;
      refreshes += other.refreshes;
      negative_hits += other.negative_hits;
      promotions += other.promotions;
    }
  };

  void reset() {
    for (auto& c : per_class_) c = ClassCounters{};
    transport = ChannelStats{};
    lifecycle = LifecycleStats{};
    flight = FlightStats{};
    overload = OverloadStats{};
  }

  /// Wire-level channel counters, filled in by the owner of the transport
  /// (the real-socket daemon folds its backends' ChannelStats in when it
  /// snapshots metrics). Always zero for pure-simulation brokers.
  ChannelStats transport;

  LifecycleStats lifecycle;

  FlightStats flight;

  /// Overload-control feedback counters (overload.h), copied out of the
  /// shard's OverloadController at each evaluation.
  OverloadStats overload;

  /// Accumulates another broker's counters class-by-class — the sharded
  /// daemon folds its per-shard metrics into one report with this.
  void merge(const BrokerMetrics& other) {
    if (other.per_class_.size() > per_class_.size()) {
      per_class_.resize(other.per_class_.size());
    }
    for (size_t i = 0; i < other.per_class_.size(); ++i) {
      ClassCounters& mine = per_class_[i];
      const ClassCounters& theirs = other.per_class_[i];
      mine.issued += theirs.issued;
      mine.forwarded += theirs.forwarded;
      mine.dropped += theirs.dropped;
      mine.cache_hits += theirs.cache_hits;
      mine.completed += theirs.completed;
      mine.errors += theirs.errors;
      mine.deadline_misses += theirs.deadline_misses;
      mine.lifo_sheds += theirs.lifo_sheds;
      mine.retries += theirs.retries;
      mine.response_time.merge(theirs.response_time);
    }
    transport.merge(other.transport);
    lifecycle.merge(other.lifecycle);
    flight.merge(other.flight);
    overload.merge(other.overload);
  }

 private:
  int clamp(int level) const {
    if (level < 1) return 1;
    if (level > num_levels()) return num_levels();
    return level;
  }

  std::vector<ClassCounters> per_class_;
};

}  // namespace sbroker::core
