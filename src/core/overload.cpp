#include "core/overload.h"

#include <algorithm>
#include <cstdlib>

namespace sbroker::core {

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kStatic:
      return "static";
    case OverloadPolicy::kAimd:
      return "aimd";
  }
  std::abort();  // exhaustive switch above (-Wswitch keeps it that way)
}

std::optional<OverloadPolicy> parse_overload_policy(std::string_view name) {
  if (name == "static") return OverloadPolicy::kStatic;
  if (name == "aimd" || name == "aimd+lifo" || name == "lifo") {
    return OverloadPolicy::kAimd;
  }
  if (name == "static+lifo") return OverloadPolicy::kStatic;
  return std::nullopt;
}

std::optional<OverloadConfig> parse_overload_spec(std::string_view spec,
                                                  OverloadConfig base) {
  std::optional<OverloadPolicy> policy = parse_overload_policy(spec);
  if (!policy) return std::nullopt;
  base.policy = *policy;
  base.lifo = spec == "aimd+lifo" || spec == "static+lifo" || spec == "lifo";
  return base;
}

OverloadController::OverloadController(const OverloadConfig& config,
                                       QosRules rules)
    : config_(config), rules_(rules), threshold_(rules.threshold) {}

void OverloadController::observe(const OverloadSignal& signal, double now) {
  (void)now;
  double target = config_.target_p95 > 0.0
                      ? config_.target_p95
                      : config_.budget_fraction * signal.budget;
  // No evidence (too few fresh samples) or no yardstick (deadline-free
  // traffic with no explicit target): the interval carries no signal.
  if (signal.samples < config_.min_samples || target <= 0.0) return;

  ++stats_.evals;
  bool breached = signal.p95 > target;
  adjust(breached);

  if (breached) {
    ++breach_streak_;
    clear_streak_ = 0;
  } else {
    ++clear_streak_;
    breach_streak_ = 0;
  }
  if (!overloaded_ && breach_streak_ >= config_.enter_breaches) {
    overloaded_ = true;
    ++stats_.enters;
  } else if (overloaded_ && clear_streak_ >= config_.exit_clears) {
    overloaded_ = false;
    ++stats_.exits;
  }
}

AimdOverloadController::AimdOverloadController(const OverloadConfig& config,
                                               QosRules rules)
    : OverloadController(config, rules),
      ceiling_(config.ceiling > 0.0 ? config.ceiling : 4.0 * rules.threshold) {
  ceiling_ = std::max(ceiling_, config_.floor);
}

void AimdOverloadController::adjust(bool breached) {
  if (breached) {
    // Pinned at the floor = no movement: don't count phantom decreases.
    if (threshold_ > config_.floor) {
      threshold_ = std::max(config_.floor, threshold_ * config_.decrease);
      ++stats_.decreases;
    }
  } else if (threshold_ < ceiling_) {
    threshold_ = std::min(ceiling_, threshold_ + config_.increase);
    ++stats_.increases;
  }
}

std::unique_ptr<OverloadController> make_overload_controller(
    const OverloadConfig& config, QosRules rules) {
  switch (config.policy) {
    case OverloadPolicy::kStatic:
      return std::make_unique<StaticOverloadController>(config, rules);
    case OverloadPolicy::kAimd:
      return std::make_unique<AimdOverloadController>(config, rules);
  }
  std::abort();  // exhaustive switch above
}

}  // namespace sbroker::core
