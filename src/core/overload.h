// Pluggable overload control: the single home of the admission threshold.
//
// The paper fixes the outstanding-request threshold at 20 per broker and
// shares the forward-or-drop comparison between three call sites (the
// broker's submit path, the AdmissionController, the CentralizedController).
// This layer extracts that comparison into one OverloadController so every
// admission decision routes through a single, live effective threshold —
// and makes the threshold itself a policy:
//
//   kStatic — the paper's rule verbatim: the effective threshold never
//     moves. Zero feedback, zero overhead; bit-for-bit the old behavior.
//
//   kAimd — "Design of QoS-aware Provisioning Systems" (PAPERS.md):
//     replace the hand-tuned constant with a measurement-driven feedback
//     loop. Each evaluation interval the owner feeds the controller the
//     p95 of the latencies it observed (queue wait / total, from
//     obs::BrokerObserver) plus the deadline budget those requests carry.
//     While p95 stays under `budget_fraction * budget` the threshold grows
//     additively (+increase); the first breached interval cuts it
//     multiplicatively (*decrease) — TCP's AIMD law, applied to admission.
//     The threshold therefore converges to the largest backlog the backend
//     can drain inside the latency target, instead of whatever constant was
//     tuned for last year's traffic.
//
// Independently of the threshold policy, the controller tracks an
// *overload mode* with enter/exit hysteresis (`enter_breaches` consecutive
// breached intervals to enter, `exit_clears` clear ones to leave, so a
// single noisy interval cannot flap the mode). When `lifo` is set, owners
// flip their per-class wait queues from FIFO to LIFO while the mode is on —
// the "Combined LIFO-Priority Scheme" (PAPERS.md): under overload the
// newest request is the one that can still meet its deadline, so serve it
// first and let the oldest age out through the existing exactly-once
// deadline-expiry path instead of everyone timing out in arrival order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "core/qos.h"

namespace sbroker::core {

enum class OverloadPolicy {
  kStatic,  ///< fixed threshold (the paper's rule)
  kAimd,    ///< additive-increase/multiplicative-decrease feedback
};

const char* overload_policy_name(OverloadPolicy policy);
/// Accepts "static", "aimd", "aimd+lifo" / "lifo" (nullopt on anything else;
/// the +lifo spelling also sets OverloadConfig::lifo at the call sites that
/// use parse_overload_spec below).
std::optional<OverloadPolicy> parse_overload_policy(std::string_view name);

struct OverloadConfig {
  OverloadPolicy policy = OverloadPolicy::kStatic;
  /// Flip per-class wait queues FIFO->LIFO while overload mode is on.
  bool lifo = false;
  /// Absolute p95 latency target, seconds. 0 = derive from the measured
  /// deadline budget: target = budget_fraction * budget.
  double target_p95 = 0.0;
  double budget_fraction = 0.5;
  /// AIMD law: threshold += increase per clear interval (up to ceiling),
  /// threshold *= decrease on a breached interval (down to floor).
  double increase = 1.0;
  double decrease = 0.7;
  double floor = 1.0;
  /// 0 = 4x the configured QosRules threshold (feedback may discover the
  /// backend can hold more backlog than the hand-tuned constant).
  double ceiling = 0.0;
  /// Seconds between feedback evaluations on the owner's tick path.
  double eval_interval = 0.05;
  /// Intervals with fewer fresh samples than this carry no signal: they
  /// leave the threshold, the mode and both hysteresis streaks untouched.
  uint64_t min_samples = 8;
  /// Consecutive breached intervals to enter overload mode.
  int enter_breaches = 2;
  /// Consecutive clear intervals to leave it.
  int exit_clears = 4;
};

/// One feedback interval's measurement, produced by the owner from its
/// observer histograms (delta since the previous evaluation).
struct OverloadSignal {
  double p95 = 0.0;       ///< observed wait/total p95 over the interval, s
  uint64_t samples = 0;   ///< fresh observations behind that quantile
  double budget = 0.0;    ///< deadline budget in force, seconds (0 = none)
};

/// Feedback-loop counters, merged across shards like every other stat.
struct OverloadStats {
  uint64_t evals = 0;      ///< intervals that carried enough samples to act
  uint64_t increases = 0;  ///< additive threshold raises
  uint64_t decreases = 0;  ///< multiplicative threshold cuts
  uint64_t enters = 0;     ///< overload-mode entries
  uint64_t exits = 0;      ///< overload-mode exits

  void merge(const OverloadStats& other) {
    evals += other.evals;
    increases += other.increases;
    decreases += other.decreases;
    enters += other.enters;
    exits += other.exits;
  }
};

class OverloadController {
 public:
  OverloadController(const OverloadConfig& config, QosRules rules);
  virtual ~OverloadController() = default;

  /// The paper's binary forward-or-drop rule, against the *live* effective
  /// threshold. The only place this comparison exists.
  bool admit(QosLevel level, double outstanding) const {
    return outstanding < bound(level);
  }

  /// Admission bound for `level`: per-level fraction of the effective
  /// threshold (level/num_levels, as in QosRules::bound).
  double bound(QosLevel level) const {
    level = rules_.clamp_level(level);
    return threshold_ * static_cast<double>(level) /
           static_cast<double>(rules_.num_levels);
  }

  /// Feeds one interval's measurement. Applies the hysteresis state machine
  /// and delegates threshold movement to the policy. Intervals below
  /// min_samples (or with no usable target) are ignored entirely.
  void observe(const OverloadSignal& signal, double now);

  double threshold() const { return threshold_; }
  bool overloaded() const { return overloaded_; }
  /// True when the owner's wait queues should run LIFO right now.
  bool lifo_active() const { return config_.lifo && overloaded_; }
  /// True when the owner should measure and call observe() periodically.
  /// Static without lifo never looks at the signal, so the owner can skip
  /// the histogram snapshots entirely.
  bool wants_feedback() const {
    return policy() != OverloadPolicy::kStatic || config_.lifo;
  }
  virtual OverloadPolicy policy() const = 0;

  const OverloadConfig& config() const { return config_; }
  const QosRules& rules() const { return rules_; }
  const OverloadStats& stats() const { return stats_; }

 protected:
  /// Policy hook: move threshold_ for one evaluated interval.
  virtual void adjust(bool breached) = 0;

  OverloadConfig config_;
  QosRules rules_;
  double threshold_;
  OverloadStats stats_;

 private:
  bool overloaded_ = false;
  int breach_streak_ = 0;
  int clear_streak_ = 0;
};

/// The paper's fixed rule: adjust() is a no-op, so the threshold equals
/// QosRules::threshold forever (overload-mode tracking still runs when
/// lifo is requested).
class StaticOverloadController : public OverloadController {
 public:
  StaticOverloadController(const OverloadConfig& config, QosRules rules)
      : OverloadController(config, rules) {}
  OverloadPolicy policy() const override { return OverloadPolicy::kStatic; }

 protected:
  void adjust(bool) override {}
};

/// AIMD feedback on the effective threshold.
class AimdOverloadController : public OverloadController {
 public:
  AimdOverloadController(const OverloadConfig& config, QosRules rules);
  OverloadPolicy policy() const override { return OverloadPolicy::kAimd; }

 protected:
  void adjust(bool breached) override;

 private:
  double ceiling_;
};

std::unique_ptr<OverloadController> make_overload_controller(
    const OverloadConfig& config, QosRules rules);

/// Parses a bench/CLI spec — "static", "aimd", "aimd+lifo", "static+lifo",
/// "lifo" (= aimd+lifo) — into policy + lifo flag on top of `base`.
std::optional<OverloadConfig> parse_overload_spec(std::string_view spec,
                                                  OverloadConfig base = {});

}  // namespace sbroker::core
