#include "core/pool.h"

#include <algorithm>
#include <cassert>

namespace sbroker::core {

ConnectionPool::ConnectionPool(PoolConfig config) : config_(config) {
  assert(config_.max_connections > 0 && config_.multiplex_capacity > 0);
}

ConnectionPool::Lease ConnectionPool::acquire() {
  if (!config_.persistent) {
    // API model: every access opens (and later closes) its own connection.
    if (transient_open_ >= config_.max_connections) {
      ++rejections_;
      return Lease{0, false, false};
    }
    ++transient_open_;
    ++setups_;
    return Lease{0, true, true};
  }

  // Persistent mode: pick the least-loaded connection with spare capacity.
  size_t best = in_flight_.size();
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i] < config_.multiplex_capacity &&
        (best == in_flight_.size() || in_flight_[i] < in_flight_[best])) {
      best = i;
    }
  }
  if (best < in_flight_.size()) {
    ++in_flight_[best];
    ++multiplexed_acquires_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_[best]);
    return Lease{best, false, true};
  }
  if (in_flight_.size() < config_.max_connections) {
    in_flight_.push_back(1);
    ++setups_;
    peak_in_flight_ = std::max<size_t>(peak_in_flight_, 1);
    return Lease{in_flight_.size() - 1, true, true};
  }
  ++rejections_;
  return Lease{0, false, false};
}

void ConnectionPool::release(size_t connection) {
  if (!config_.persistent) {
    // Close the per-request connection.
    assert(transient_open_ > 0);
    --transient_open_;
    return;
  }
  assert(connection < in_flight_.size() && in_flight_[connection] > 0);
  --in_flight_[connection];
}

size_t ConnectionPool::in_flight_total() const {
  if (!config_.persistent) return transient_open_;
  size_t total = 0;
  for (size_t n : in_flight_) total += n;
  return total;
}

}  // namespace sbroker::core
