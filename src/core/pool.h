// Persistent connection pool / channel multiplexing accounting.
//
// "In the proposed approach, DB brokers maintain persistent connection thus
// saving the cost of connection setup" and "a single connection between the
// service broker and the backend server can be multiplexed to serve multiple
// applications" (Section III). The pool is pure bookkeeping: it tells the
// caller whether an acquire needs a fresh connection (so the caller charges
// the setup latency exactly once per physical connection) and how many
// in-flight requests each connection multiplexes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbroker::core {

struct PoolConfig {
  size_t max_connections = 4;      ///< physical connections to one backend
  size_t multiplex_capacity = 64;  ///< in-flight requests per connection
  bool persistent = true;          ///< false models the API per-request cycle
};

class ConnectionPool {
 public:
  explicit ConnectionPool(PoolConfig config);

  struct Lease {
    size_t connection = 0;   ///< index of the connection used
    bool fresh = true;       ///< true -> caller must pay setup cost
    bool granted = false;    ///< false -> all connections saturated
  };

  /// Reserves an in-flight slot. Least-loaded connection wins; a new
  /// physical connection is opened only when all existing ones are busy and
  /// the limit allows. In non-persistent mode every lease is fresh.
  Lease acquire();

  /// Releases a slot. In non-persistent mode the connection closes (the
  /// caller already paid teardown as part of the API cycle).
  void release(size_t connection);

  size_t open_connections() const {
    return config_.persistent ? in_flight_.size() : transient_open_;
  }
  size_t in_flight_total() const;
  uint64_t setups() const { return setups_; }
  uint64_t rejections() const { return rejections_; }
  /// Deepest multiplexing any single connection reached — how far the
  /// "single connection ... multiplexed to serve multiple applications"
  /// claim was actually exercised. The real pipelined channel reports the
  /// matching wire-side number in its ChannelStats.
  size_t peak_in_flight() const { return peak_in_flight_; }
  /// Leases granted on an already-open connection (no setup paid).
  uint64_t multiplexed_acquires() const { return multiplexed_acquires_; }
  const PoolConfig& config() const { return config_; }

 private:
  PoolConfig config_;
  std::vector<size_t> in_flight_;  ///< per open persistent connection
  size_t transient_open_ = 0;      ///< open per-request connections
  size_t peak_in_flight_ = 0;
  uint64_t multiplexed_acquires_ = 0;
  uint64_t setups_ = 0;
  uint64_t rejections_ = 0;
};

}  // namespace sbroker::core
