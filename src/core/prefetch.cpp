#include "core/prefetch.h"

#include <algorithm>
#include <cassert>

namespace sbroker::core {

void Prefetcher::add(std::string cache_key, std::string payload, double period) {
  assert(period > 0);
  entries_.push_back(PrefetchEntry{std::move(cache_key), std::move(payload), period, 0.0});
}

std::vector<PrefetchEntry> Prefetcher::due(double now, double current_load,
                                           size_t max_issues) {
  std::vector<PrefetchEntry> out;
  if (current_load > idle_threshold_) return out;
  for (auto& entry : entries_) {
    if (entry.next_due > now) continue;
    if (max_issues != 0 && out.size() >= max_issues) break;
    out.push_back(entry);
    entry.next_due = now + entry.period;
    ++issued_;
  }
  return out;
}

std::optional<double> Prefetcher::next_due() const {
  if (entries_.empty()) return std::nullopt;
  double best = entries_.front().next_due;
  for (const auto& e : entries_) best = std::min(best, e.next_due);
  return best;
}

bool Prefetcher::remove(const std::string& cache_key) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const PrefetchEntry& e) { return e.cache_key == cache_key; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

}  // namespace sbroker::core
