// Prefetcher.
//
// "A news provider website periodically updates the online headlines.
// Service brokers can be synchronized to prefetch them when the server load
// is not high. So the requests for the news can be served immediately
// without accessing the backend servers" (Section III).
//
// The prefetcher holds a registry of (cache key, query, period) entries.
// The broker's tick() asks for due entries; an entry is issued only when the
// broker's current load is below the idle threshold, and its next due time
// advances whether or not the fetch succeeded (periodic refresh, not retry
// storm).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sbroker::core {

struct PrefetchEntry {
  std::string cache_key;  ///< where the result is stored
  std::string payload;    ///< query sent to the backend
  double period;          ///< refresh interval, seconds
  double next_due = 0.0;
};

class Prefetcher {
 public:
  /// `idle_threshold`: maximum broker outstanding count at which prefetch
  /// traffic may be issued (the "server load is not high" condition).
  explicit Prefetcher(double idle_threshold = 1.0) : idle_threshold_(idle_threshold) {}

  /// Registers a periodic prefetch; first fetch is due immediately.
  void add(std::string cache_key, std::string payload, double period);

  /// Entries due at `now` given current load; advances the schedules of the
  /// entries returned. Empty when the broker is not idle enough.
  ///
  /// `max_issues` caps how many entries one call may return (0 = unbounded).
  /// After a long busy period every entry is overdue at once; the cap
  /// staggers the backlog across ticks — entries beyond it keep their past
  /// next_due and surface on subsequent calls — instead of firing the whole
  /// registry in one burst (exactly the "retry storm" this header promises
  /// to avoid).
  std::vector<PrefetchEntry> due(double now, double current_load,
                                 size_t max_issues = 0);

  /// Earliest next_due across entries; nullopt when none registered.
  std::optional<double> next_due() const;

  size_t size() const { return entries_.size(); }
  uint64_t issued() const { return issued_; }
  bool remove(const std::string& cache_key);

 private:
  double idle_threshold_;
  std::vector<PrefetchEntry> entries_;
  uint64_t issued_ = 0;
};

}  // namespace sbroker::core
