// QoS classes and the paper's threshold admission rule.
//
// Section V-B-1: "QoS level means that the request is forwarded to the
// backend servers if the number of the outstanding requests is [below a
// per-level fraction] of the threshold. ... The thresholds at each broker
// were set to be 20."
//
// We implement the per-level fraction as level/num_levels: with 3 levels and
// threshold 20, class 3 is admitted while outstanding < 20, class 2 while
// outstanding < 13.33, class 1 while outstanding < 6.67. Higher classes thus
// keep backend access longer as load grows, lower classes are shed first,
// and the ordering of drop ratios in the paper's Tables II-IV follows.
#pragma once

#include <algorithm>
#include <cassert>

namespace sbroker::core {

/// A QoS class. Classes are 1-based; higher value = higher priority.
using QosLevel = int;

struct QosRules {
  int num_levels = 3;
  /// Maximum outstanding (forwarded, uncompleted) requests per backend.
  double threshold = 20.0;

  /// Admission bound for `level`: the outstanding count below which a
  /// request of this class may be forwarded. The forward-or-drop comparison
  /// itself lives in core::OverloadController (overload.h), the one place
  /// every admission call site routes through — the effective threshold may
  /// have moved away from the configured constant under feedback control.
  double bound(QosLevel level) const {
    level = clamp_level(level);
    return threshold * static_cast<double>(level) / static_cast<double>(num_levels);
  }

  QosLevel clamp_level(QosLevel level) const {
    return std::clamp(level, 1, num_levels);
  }
};

}  // namespace sbroker::core
