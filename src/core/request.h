// Per-request lifecycle state.
//
// The broker answers every message exactly once, at some fidelity — the
// paper's promise only holds if the broker can give up on a request that a
// backend will never answer. RequestContext carries everything needed to do
// that: the identity and QoS classification fixed at submit time, the
// absolute deadline after which the broker sheds the request itself, and the
// attempt budget that bounds retries against other replicas. One context
// exists per admitted request, from admission until its single reply.
//
// CancelToken is the backend-facing half: when the broker abandons an
// in-flight exchange (all its members expired), it fires the token so the
// transport can kill the stalled connection and recover its other queued
// exchanges, instead of leaking the socket until process exit.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "core/arena.h"
#include "core/qos.h"
#include "http/wire.h"

namespace sbroker::core {

/// Sentinel for "no deadline": comparisons against it never expire.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Diagnostic payload of a deadline-shed reply. The HTTP gateway maps busy
/// replies carrying this marker to 504 Gateway Timeout (vs. 503 for
/// admission drops).
inline constexpr std::string_view kDeadlineExceeded = "deadline exceeded";

/// Reply delivery callback; fires exactly once per submitted request.
using ReplyFn = std::function<void(const http::BrokerReply&)>;

/// Allocation-free reply for the cache-served fast path: the payload is a
/// view into the caller's arena (or the cache entry copy made there), valid
/// only for the duration of the callback.
struct ReplyView {
  uint64_t request_id = 0;
  http::Fidelity fidelity = http::Fidelity::kCached;
  std::string_view payload;
};

/// Non-owning callable reference for ReplyView delivery. A std::function
/// here would defeat the point — capturing the connection pointer pushes
/// most closures past the SBO threshold and back onto the heap. The referent
/// must outlive the try_submit_fast() call, which always invokes it
/// synchronously or not at all.
class ReplyViewFn {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ReplyViewFn>>>
  ReplyViewFn(F&& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* obj, const ReplyView& r) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(r);
        }) {}

  void operator()(const ReplyView& r) const { call_(obj_, r); }

 private:
  void* obj_;
  void (*call_)(void*, const ReplyView&);
};

/// Deadline / retry policy knobs, part of BrokerConfig.
struct LifecycleConfig {
  /// Deadline applied to requests that do not carry their own, in seconds
  /// after submit. 0 = no implicit deadline.
  double default_deadline = 0.0;
  /// Upper clamp on client-supplied deadlines, seconds. 0 = no clamp.
  double max_deadline = 0.0;
  /// Backend exchanges one request may consume (first attempt included).
  /// 1 = no broker-level retry, the pre-lifecycle behaviour.
  int max_attempts = 1;
  /// Base pause before a retry is re-dispatched; attempt n waits n*backoff.
  double retry_backoff = 0.005;
  /// Headroom added to the transport timeout handed to backends on top of
  /// the longest remaining member deadline. The broker cancels the exchange
  /// itself when the deadline expires, so the transport bound is only a
  /// backstop — the slack makes it lose any race against the deadline tick
  /// (a transport-timeout win would burn the attempt and turn a clean
  /// deadline shed into an error completion).
  double transport_slack = 0.05;
};

/// One admitted request, from admission until its single reply. Replaces the
/// scattered PendingMember / effective-level / outstanding bookkeeping.
///
/// Contexts are placement-new'd into a per-request Arena that also holds the
/// canonical (post-rewrite) payload bytes; `arena` points back at it so the
/// exactly-once terminal (finish/shed) can free everything in one step. The
/// broker owns construction and destruction — see destroy_context().
struct RequestContext {
  uint64_t id = 0;
  QosLevel base_level = 1;       ///< as classified at submit (metrics key)
  QosLevel effective_level = 1;  ///< after transaction escalation
  double submitted_at = 0.0;
  double deadline = kNoDeadline; ///< absolute, caller's clock
  double batched_at = 0.0;       ///< joined a cluster batch; 0 = not yet
  double dispatched_at = 0.0;    ///< last handoff to a backend exchange
  int attempts = 0;              ///< backend exchanges consumed so far
  int attempt_budget = 1;
  uint64_t exchange = 0;         ///< in-flight exchange id; 0 = none
  std::optional<size_t> last_backend;  ///< replica of the last attempt
  /// Post-rewrite payload sent to backends; bytes live in `arena`.
  std::string_view payload;
  bool degraded = false;         ///< rewritten to lower fidelity
  Arena* arena = nullptr;        ///< owns this context and its payload bytes
  ReplyFn reply;

  bool expired(double now) const { return deadline <= now; }
  /// Seconds of deadline budget left; kNoDeadline when none was set.
  double remaining(double now) const {
    return deadline == kNoDeadline ? kNoDeadline : deadline - now;
  }
};

/// Cooperative cancellation handle threaded into Backend::invoke. Single
/// threaded, like everything reachable from the broker core: the owner and
/// the backend live on the same reactor/sim timeline. The callback fires at
/// most once; arming an already-cancelled token fires it immediately.
class CancelToken {
 public:
  void set_callback(std::function<void()> fn) {
    if (cancelled_) {
      if (fn) fn();
      return;
    }
    on_cancel_ = std::move(fn);
  }

  void cancel() {
    if (cancelled_) return;
    cancelled_ = true;
    if (on_cancel_) {
      auto fn = std::move(on_cancel_);
      on_cancel_ = nullptr;
      fn();
    }
  }

  bool cancelled() const { return cancelled_; }

 private:
  bool cancelled_ = false;
  std::function<void()> on_cancel_;
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace sbroker::core
