#include "core/rewrite.h"

#include <algorithm>

#include "db/parser.h"

namespace sbroker::core {

QueryRewriter::QueryRewriter(RewriteConfig config, QosRules rules)
    : config_(config), rules_(rules) {}

RewriteOutcome QueryRewriter::apply(const std::string& payload, QosLevel level,
                                    LoadState load) const {
  RewriteOutcome out{payload, false};
  if (!config_.enabled || load == LoadState::kNormal) return out;

  level = rules_.clamp_level(level);
  std::optional<uint64_t> cap;
  if (load == LoadState::kHot && level < rules_.num_levels) {
    cap = config_.hot_limit;
  } else if (load == LoadState::kWarm && level <= config_.warm_degrade_below) {
    cap = config_.warm_limit;
  }
  if (!cap) return out;

  db::SelectQuery query;
  try {
    query = db::parse_select(payload);
  } catch (const db::ParseError&) {
    return out;  // not SQL — nothing to degrade
  }
  if (query.limit && *query.limit <= *cap) return out;  // already cheap enough
  query.limit = *cap;
  out.payload = query.to_string();
  out.degraded = true;
  ++rewrites_;
  return out;
}

}  // namespace sbroker::core
