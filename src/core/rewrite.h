// QoS-aware message rewriting — fidelity variation.
//
// "Service brokers receive, sort and rewrite these messages according to
// their QoS levels" (Section III), and the experiments "demonstrate notable
// scalability improvement through fidelity variations" (Section I). Instead
// of the binary forward/drop decision, a rewrite rule can *degrade* a query
// so it still gets a (cheaper, lower-fidelity) answer: under WARM load the
// result-set LIMIT of low classes is capped; under HOT load every class
// below the protected top class is capped harder.
//
// Rules apply to payloads that parse as the SQL subset; anything else passes
// through unchanged. The rewritten query keeps the original semantics except
// for the LIMIT clamp, so callers always receive a prefix of the full
// result — the classic content-adaptation notion of fidelity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/hotspot.h"
#include "core/qos.h"

namespace sbroker::core {

struct RewriteConfig {
  bool enabled = false;
  /// Classes <= this are degraded under WARM load.
  QosLevel warm_degrade_below = 2;
  uint64_t warm_limit = 50;   ///< LIMIT cap applied under WARM
  /// Classes < the top class are degraded under HOT load.
  uint64_t hot_limit = 10;    ///< LIMIT cap applied under HOT
};

struct RewriteOutcome {
  std::string payload;   ///< possibly rewritten query text
  bool degraded = false; ///< true when a cap was applied
};

class QueryRewriter {
 public:
  QueryRewriter(RewriteConfig config, QosRules rules);

  /// Applies the fidelity rules for a request of class `level` given the
  /// backend's load state. Non-SQL payloads and disabled rewriters return
  /// the input unchanged.
  RewriteOutcome apply(const std::string& payload, QosLevel level,
                       LoadState load) const;

  const RewriteConfig& config() const { return config_; }
  uint64_t rewrites() const { return rewrites_; }

 private:
  RewriteConfig config_;
  QosRules rules_;
  mutable uint64_t rewrites_ = 0;
};

}  // namespace sbroker::core
