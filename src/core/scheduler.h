// QoS-aware request scheduler.
//
// "Service brokers receive, sort and rewrite these messages according to
// their QoS levels" (Section III): when the backend is busy, pending
// requests wait here and are released highest-class-first, FIFO within a
// class — a higher-priority arrival overtakes queued lower-priority work,
// which is exactly the reshuffling that prevents priority inversion.
//
// Under declared overload the OverloadController can flip the *within-class*
// discipline to LIFO (set_lifo): the newest entry of the selected class pops
// first, because it is the one that can still meet its deadline, while the
// oldest entries age out through the owner's deadline-expiry shed path
// ("Combined LIFO-Priority Scheme", PAPERS.md). Class priority ordering is
// never affected — LIFO applies strictly within one class's queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "core/qos.h"

namespace sbroker::core {

template <typename T>
class QosScheduler {
 public:
  explicit QosScheduler(size_t per_class_limit = SIZE_MAX)
      : per_class_limit_(per_class_limit) {}

  /// Enqueues `item` at `level`. Returns false when the class queue is full.
  bool push(QosLevel level, T item) {
    auto& q = queues_[-level];
    if (q.size() >= per_class_limit_) {
      ++rejected_;
      return false;
    }
    q.push_back(std::move(item));
    ++size_;
    return true;
  }

  /// Removes and returns the highest-priority item (FIFO within class, or
  /// newest-first while the LIFO discipline is on).
  std::optional<T> pop() {
    if (size_ == 0) return std::nullopt;
    auto it = queues_.begin();
    while (it != queues_.end() && it->second.empty()) it = queues_.erase(it);
    if (it == queues_.end()) return std::nullopt;
    auto& q = it->second;
    T item = lifo_ ? std::move(q.back()) : std::move(q.front());
    if (lifo_) {
      q.pop_back();
    } else {
      q.pop_front();
    }
    if (q.empty()) queues_.erase(it);
    --size_;
    return item;
  }

  /// Flips the within-class pop order; queued items keep their positions, so
  /// flipping back mid-stream resumes FIFO over the surviving entries.
  void set_lifo(bool lifo) { lifo_ = lifo; }
  bool lifo() const { return lifo_; }

  /// Level of the item pop() would return; nullopt when empty.
  std::optional<QosLevel> front_level() const {
    for (const auto& [neg_level, q] : queues_) {
      if (!q.empty()) return -neg_level;
    }
    return std::nullopt;
  }

  /// Drops up to `n` items from the *lowest* class upward (load shedding).
  /// `on_drop` is invoked for each victim. Returns the number dropped.
  size_t shed_lowest(size_t n, const std::function<void(QosLevel, T&)>& on_drop) {
    size_t dropped = 0;
    while (dropped < n && size_ > 0) {
      auto it = queues_.rbegin();
      while (it != queues_.rend() && it->second.empty()) ++it;
      if (it == queues_.rend()) break;
      QosLevel level = -it->first;
      T item = std::move(it->second.front());
      it->second.pop_front();
      --size_;
      on_drop(level, item);
      ++dropped;
    }
    return dropped;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t rejected() const { return rejected_; }

  size_t size_at(QosLevel level) const {
    auto it = queues_.find(-level);
    return it == queues_.end() ? 0 : it->second.size();
  }

 private:
  // Key is -level so begin() is the highest class.
  std::map<int, std::deque<T>> queues_;
  size_t per_class_limit_;
  size_t size_ = 0;
  uint64_t rejected_ = 0;
  bool lifo_ = false;
};

}  // namespace sbroker::core
