#include "core/striped_cache.h"

#include <cassert>

namespace sbroker::core {

StripedResultCache::StripedResultCache(size_t capacity, double ttl, size_t stripes)
    : StripedResultCache(capacity, ttl, stripes, CacheTuning{}) {}

StripedResultCache::StripedResultCache(size_t capacity, double ttl,
                                       size_t stripes, CacheTuning tuning)
    : capacity_(capacity), ttl_(ttl) {
  assert(capacity > 0);
  if (stripes == 0) stripes = 1;
  if (stripes > capacity) stripes = capacity;
  per_stripe_capacity_ = (capacity + stripes - 1) / stripes;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(
        std::make_unique<Stripe>(per_stripe_capacity_, ttl, tuning));
  }
}

std::optional<std::string> StripedResultCache::get(std::string_view key, double now) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.get(key, now);
}

LookupResult StripedResultCache::lookup(std::string_view key, double now) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.lookup(key, now);
}

LookupView StripedResultCache::lookup_into(std::string_view key, double now,
                                           Arena& scratch) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.lookup_into(key, now, scratch);
}

std::optional<std::string> StripedResultCache::get_stale(std::string_view key) const {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.get_stale(key);
}

void StripedResultCache::put(std::string_view key, std::string value, double now) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.cache.put(key, std::move(value), now);
}

void StripedResultCache::put_negative(std::string_view key, std::string value,
                                      double now) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.cache.put_negative(key, std::move(value), now);
}

bool StripedResultCache::invalidate(std::string_view key) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cache.invalidate(key);
}

void StripedResultCache::clear() {
  for (auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->cache.clear();
  }
}

size_t StripedResultCache::size() const {
  size_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->cache.size();
  }
  return total;
}

#define SBROKER_STRIPED_SUM(field)                  \
  uint64_t total = 0;                               \
  for (const auto& s : stripes_) {                  \
    std::lock_guard<std::mutex> lock(s->mu);        \
    total += s->cache.field();                      \
  }                                                 \
  return total;

uint64_t StripedResultCache::hits() const { SBROKER_STRIPED_SUM(hits) }
uint64_t StripedResultCache::misses() const { SBROKER_STRIPED_SUM(misses) }
uint64_t StripedResultCache::expired() const { SBROKER_STRIPED_SUM(expired) }
uint64_t StripedResultCache::evictions() const { SBROKER_STRIPED_SUM(evictions) }

#undef SBROKER_STRIPED_SUM

}  // namespace sbroker::core
