// Thread-safe striped result cache.
//
// The sharded broker daemon runs one single-threaded ServiceBroker per
// reactor thread, but the result cache must stay *global*: a result fetched
// through shard A has to serve the identical request arriving at shard B, or
// sharding divides the hit rate by the shard count. This wraps the existing
// LRU+TTL `ResultCache` logic in K independently-locked stripes. A key maps
// to one stripe by hash, so concurrent probes for different keys rarely
// contend, and the single-stripe critical section is exactly the old
// single-threaded code path.
//
// Capacity is divided across stripes (ceil(capacity / stripes) each), so the
// total resident entry count is bounded by `capacity + stripes - 1` in the
// worst hash skew. LRU is per-stripe: eviction order is approximate with
// respect to the global access order, which is the standard striped-LRU
// trade-off.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/cache.h"

namespace sbroker::core {

class StripedResultCache final : public ResultCacheBase {
 public:
  /// `capacity` total entries split over `stripes` locks; `ttl` as ResultCache.
  StripedResultCache(size_t capacity, double ttl, size_t stripes = 8);
  StripedResultCache(size_t capacity, double ttl, size_t stripes,
                     CacheTuning tuning);

  std::optional<std::string> get(std::string_view key, double now) override;
  /// The stale-refresh claim is taken under the stripe lock, so exactly one
  /// shard per grace window wins kStaleRefresh for a key — the cross-shard
  /// half of "trigger exactly one background refresh".
  LookupResult lookup(std::string_view key, double now) override;
  /// Copies into the caller's arena while the stripe lock is held — a raw
  /// view into the entry would race with eviction by other shards.
  LookupView lookup_into(std::string_view key, double now, Arena& scratch) override;
  std::optional<std::string> get_stale(std::string_view key) const override;
  void put(std::string_view key, std::string value, double now) override;
  void put_negative(std::string_view key, std::string value, double now) override;
  bool invalidate(std::string_view key) override;
  void clear() override;

  size_t size() const override;
  size_t capacity() const override { return capacity_; }
  double ttl() const override { return ttl_; }

  uint64_t hits() const override;
  uint64_t misses() const override;
  uint64_t expired() const override;
  uint64_t evictions() const override;

  size_t stripes() const { return stripes_.size(); }
  /// Hard bound on size() regardless of hash skew.
  size_t max_resident() const { return per_stripe_capacity_ * stripes_.size(); }

 private:
  struct Stripe {
    mutable std::mutex mu;
    ResultCache cache;
    Stripe(size_t cap, double ttl, CacheTuning tuning)
        : cache(cap, ttl, tuning) {}
  };

  Stripe& stripe_for(std::string_view key) const {
    return *stripes_[std::hash<std::string_view>{}(key) % stripes_.size()];
  }

  size_t capacity_;
  size_t per_stripe_capacity_;
  double ttl_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace sbroker::core
