#include "core/txn.h"

#include <algorithm>

namespace sbroker::core {

TransactionTracker::TransactionTracker(QosRules rules, TxnConfig config)
    : rules_(rules), config_(config) {}

QosLevel TransactionTracker::effective_level(uint64_t txn_id, int step,
                                             QosLevel base_level, double now) {
  if (txn_id == 0) return rules_.clamp_level(base_level);
  step = std::max(step, 1);
  Entry& entry = txns_[txn_id];
  entry.highest_step = std::max(entry.highest_step, step);
  entry.last_seen = now;
  int boosted = base_level + config_.boost_per_step * (entry.highest_step - 1);
  return rules_.clamp_level(boosted);
}

void TransactionTracker::complete(uint64_t txn_id) { txns_.erase(txn_id); }

size_t TransactionTracker::expire(double now) {
  size_t removed = 0;
  for (auto it = txns_.begin(); it != txns_.end();) {
    if (now - it->second.last_seen > config_.idle_expiry) {
      it = txns_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

int TransactionTracker::highest_step(uint64_t txn_id) const {
  auto it = txns_.find(txn_id);
  return it == txns_.end() ? 0 : it->second.highest_step;
}

}  // namespace sbroker::core
