// Transaction integrity tracking.
//
// Paper Section III, "Transaction integrity assurance": a supply-chain
// purchase touches vendors in several steps; brokers "recognize the subtlety
// of each access by proper tagging and gradually increase the priority of
// the subsequent accesses that belong to the same transaction", so a
// transaction deep in its flow is not aborted by overload while a step-1
// access may be shed.
//
// The tracker maps (transaction id, step) to an *effective* QoS level:
//   effective = base + boost_per_step * (step - 1), clamped to max level.
// It also remembers the highest step seen per transaction so out-of-order
// tagging cannot demote an in-flight transaction, and expires idle entries.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/qos.h"

namespace sbroker::core {

struct TxnConfig {
  int boost_per_step = 1;     ///< QoS levels gained per completed step
  double idle_expiry = 60.0;  ///< seconds after which a quiet txn is dropped
};

class TransactionTracker {
 public:
  TransactionTracker(QosRules rules, TxnConfig config);

  /// Effective QoS level for a request of class `base_level` that is step
  /// `step` of transaction `txn_id` at time `now`. txn_id 0 (no transaction)
  /// returns the base level unchanged. Records/advances the transaction.
  QosLevel effective_level(uint64_t txn_id, int step, QosLevel base_level, double now);

  /// Marks a transaction finished, releasing its state immediately.
  void complete(uint64_t txn_id);

  /// Removes transactions idle since before `now - idle_expiry`.
  size_t expire(double now);

  size_t active() const { return txns_.size(); }
  int highest_step(uint64_t txn_id) const;

 private:
  struct Entry {
    int highest_step = 1;
    double last_seen = 0.0;
  };

  QosRules rules_;
  TxnConfig config_;
  std::unordered_map<uint64_t, Entry> txns_;
};

}  // namespace sbroker::core
