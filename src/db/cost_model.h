// Cost model: converts executor work accounting into simulated service time.
//
// The DES testbeds need a service time for each backend database job. We
// charge a fixed per-query overhead (parse/plan/protocol) plus per-row costs
// for examined and returned rows. REPEAT-k batches pay the fixed overhead
// once and the row work k times — that asymmetry is exactly what produces
// the right-hand rise of the paper's Figure 7 U-curve (batched work is
// serialized in one script invocation).
//
// Defaults are calibrated so a single 42,000-row indexed lookup costs a few
// milliseconds and a full scan tens of milliseconds — the same order as the
// paper's MySQL-on-2003-hardware testbed.
#pragma once

#include "db/executor.h"

namespace sbroker::db {

struct CostModel {
  double fixed_seconds = 0.004;          ///< parse/plan/protocol per request
  double per_row_examined = 0.0000009;   ///< predicate evaluation per row
  double per_row_returned = 0.00002;     ///< materialize + serialize per row
  double per_repeat_seconds = 0.0005;    ///< script loop overhead per repeat

  /// Service time for one backend invocation with the given stats.
  double service_time(const ExecStats& stats) const {
    return fixed_seconds +
           per_repeat_seconds * static_cast<double>(stats.repeats) +
           per_row_examined * static_cast<double>(stats.rows_examined) +
           per_row_returned * static_cast<double>(stats.rows_returned);
  }
};

}  // namespace sbroker::db
