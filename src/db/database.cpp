#include "db/database.h"

#include <stdexcept>

namespace sbroker::db {

Table& Database::create_table(const std::string& name, Schema schema) {
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(name, std::move(schema)));
  if (!inserted) throw std::invalid_argument("table already exists: " + name);
  return *it->second;
}

Table* Database::find_table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table& Database::table(const std::string& name) {
  Table* t = find_table(name);
  if (!t) throw std::invalid_argument("no such table: " + name);
  return *t;
}

const Table& Database::table(const std::string& name) const {
  const Table* t = find_table(name);
  if (!t) throw std::invalid_argument("no such table: " + name);
  return *t;
}

bool Database::drop_table(const std::string& name) { return tables_.erase(name) > 0; }

}  // namespace sbroker::db
