// Database catalog: owns named tables.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "db/table.h"

namespace sbroker::db {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; throws std::invalid_argument if the name exists.
  Table& create_table(const std::string& name, Schema schema);

  /// Returns nullptr when absent.
  Table* find_table(const std::string& name);
  const Table* find_table(const std::string& name) const;

  /// Returns the table or throws std::invalid_argument.
  Table& table(const std::string& name);
  const Table& table(const std::string& name) const;

  bool drop_table(const std::string& name);
  size_t table_count() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace sbroker::db
