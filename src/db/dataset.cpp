#include "db/dataset.h"

namespace sbroker::db {

void load_benchmark_table(Database& db, util::Rng& rng, uint64_t records,
                          int64_t categories) {
  Table& t = db.create_table(
      "records", Schema({{"id", Type::kInt},
                         {"category", Type::kInt},
                         {"score", Type::kReal},
                         {"payload", Type::kText}}));
  for (uint64_t i = 0; i < records; ++i) {
    Row row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(rng.uniform_int(0, categories - 1));
    row.emplace_back(rng.uniform_real(0.0, 1.0));
    row.emplace_back("payload-" + std::to_string(i));
    t.insert(std::move(row));
  }
  t.create_hash_index("id");
  t.create_ordered_index("category");
}

void load_movie_schedule(Database& db, util::Rng& rng, int64_t movies,
                         int64_t theaters, int64_t shows_per_day) {
  Table& t = db.create_table("schedule", Schema({{"movie_id", Type::kInt},
                                                 {"title", Type::kText},
                                                 {"theater", Type::kText},
                                                 {"showtime", Type::kInt}}));
  for (int64_t m = 0; m < movies; ++m) {
    std::string title = "Movie #" + std::to_string(m);
    for (int64_t th = 0; th < theaters; ++th) {
      for (int64_t s = 0; s < shows_per_day; ++s) {
        Row row;
        row.emplace_back(m);
        row.emplace_back(title);
        row.emplace_back("Theater " + std::to_string(th));
        // Showtimes between 10:00 and 23:00, minute granularity.
        row.emplace_back(rng.uniform_int(10 * 60, 23 * 60));
        t.insert(std::move(row));
      }
    }
  }
  t.create_hash_index("movie_id");
}

void load_vendor_catalog(Database& db, util::Rng& rng, int64_t skus) {
  Table& t = db.create_table("catalog", Schema({{"sku", Type::kInt},
                                                {"vendor", Type::kText},
                                                {"kind", Type::kText},
                                                {"price", Type::kReal},
                                                {"stock", Type::kInt}}));
  const char* vendors[] = {"acme-monitors", "visionworks", "pixelcraft"};
  const char* kinds[] = {"monitor", "video_card", "cable"};
  for (int64_t i = 0; i < skus; ++i) {
    Row row;
    row.emplace_back(i);
    row.emplace_back(std::string(vendors[rng.uniform_int(0, 2)]));
    row.emplace_back(std::string(kinds[rng.uniform_int(0, 2)]));
    row.emplace_back(rng.uniform_real(20.0, 900.0));
    row.emplace_back(rng.uniform_int(0, 200));
    t.insert(std::move(row));
  }
  t.create_hash_index("sku");
  t.create_ordered_index("price");
}

}  // namespace sbroker::db
