// Dataset generators for the experiments and examples.
#pragma once

#include <cstdint>

#include "db/database.h"
#include "util/rng.h"

namespace sbroker::db {

/// The clustering-experiment table (paper Section V-A): `records`, default
/// 42,000 rows, schema (id INT, category INT, score REAL, payload TEXT).
/// A hash index on `id` and an ordered index on `category` are created.
/// Categories are uniform in [0, categories).
void load_benchmark_table(Database& db, util::Rng& rng, uint64_t records = 42000,
                          int64_t categories = 100);

/// Movie-schedule table for the caching example (paper Section III):
/// (movie_id INT, title TEXT, theater TEXT, showtime INT). `movies` titles
/// across `theaters` theaters with `shows_per_day` showtimes each.
void load_movie_schedule(Database& db, util::Rng& rng, int64_t movies = 50,
                         int64_t theaters = 12, int64_t shows_per_day = 5);

/// Product catalog used by the supply-chain transaction example:
/// (sku INT, vendor TEXT, kind TEXT, price REAL, stock INT).
void load_vendor_catalog(Database& db, util::Rng& rng, int64_t skus = 500);

}  // namespace sbroker::db
