#include "db/executor.h"

#include <algorithm>
#include <stdexcept>

#include "db/database.h"
#include "db/parser.h"

namespace sbroker::db {
namespace {

bool is_equality(CompareOp op) { return op == CompareOp::kEq; }

bool is_range(CompareOp op) {
  return op == CompareOp::kLt || op == CompareOp::kLe || op == CompareOp::kGt ||
         op == CompareOp::kGe;
}

/// Runs the plan once, appending matches to `out`.
void run_once(const Table& t, const SelectQuery& q,
              const std::vector<size_t>& pred_cols,
              const std::vector<size_t>& out_cols,
              std::optional<size_t> order_col, ExecStats& stats,
              std::vector<Row>& out) {
  // COUNT(*) and ORDER BY must see every match, so the scan-time limit only
  // applies to the plain streaming path.
  bool materialize_all = q.count_only || order_col.has_value();
  uint64_t limit = materialize_all ? UINT64_MAX : q.limit.value_or(UINT64_MAX);
  uint64_t matched = 0;
  uint64_t match_count = 0;
  std::vector<const Row*> collected;  // ORDER BY path

  auto emit = [&](const Row& row) {
    ++matched;
    if (q.count_only) {
      ++match_count;
      return;
    }
    if (order_col) {
      collected.push_back(&row);
      return;
    }
    Row projected;
    projected.reserve(out_cols.size());
    for (size_t c : out_cols) projected.push_back(row[c]);
    out.push_back(std::move(projected));
    ++stats.rows_returned;
  };

  auto matches_all = [&](const Row& row, size_t skip_pred) {
    for (size_t i = 0; i < q.where.size(); ++i) {
      if (i == skip_pred) continue;
      if (!eval_compare(q.where[i].op, row[pred_cols[i]], q.where[i].literal)) {
        return false;
      }
    }
    return true;
  };

  // Plan selection: hash index on an equality predicate wins, then ordered
  // index on a range or equality predicate, then full scan.
  size_t chosen = q.where.size();
  bool chosen_hash = false;
  for (size_t i = 0; i < q.where.size(); ++i) {
    if (is_equality(q.where[i].op) && t.has_hash_index(pred_cols[i])) {
      chosen = i;
      chosen_hash = true;
      break;
    }
  }
  if (chosen == q.where.size()) {
    for (size_t i = 0; i < q.where.size(); ++i) {
      if ((is_range(q.where[i].op) || is_equality(q.where[i].op)) &&
          t.has_ordered_index(pred_cols[i])) {
        chosen = i;
        break;
      }
    }
  }

  if (chosen < q.where.size()) {
    stats.used_index = true;
    const Predicate& p = q.where[chosen];
    std::vector<RowId> ids;
    if (chosen_hash) {
      ids = t.hash_lookup(pred_cols[chosen], p.literal);
    } else {
      switch (p.op) {
        case CompareOp::kEq:
          ids = t.range_lookup(pred_cols[chosen], &p.literal, true, &p.literal, true);
          break;
        case CompareOp::kLt:
          ids = t.range_lookup(pred_cols[chosen], nullptr, false, &p.literal, false);
          break;
        case CompareOp::kLe:
          ids = t.range_lookup(pred_cols[chosen], nullptr, false, &p.literal, true);
          break;
        case CompareOp::kGt:
          ids = t.range_lookup(pred_cols[chosen], &p.literal, false, nullptr, false);
          break;
        case CompareOp::kGe:
          ids = t.range_lookup(pred_cols[chosen], &p.literal, true, nullptr, false);
          break;
        case CompareOp::kNe:
          // Not index-friendly; should not be chosen.
          throw std::logic_error("!= predicate chose an index plan");
      }
    }
    for (RowId id : ids) {
      if (matched >= limit) break;
      const Row* row = t.get(id);
      if (!row) continue;
      ++stats.rows_examined;
      if (matches_all(*row, chosen)) emit(*row);
    }
  }

  if (chosen == q.where.size()) {
    t.scan([&](RowId, const Row& row) {
      if (matched >= limit) return false;
      ++stats.rows_examined;
      if (matches_all(row, q.where.size())) emit(row);
      return true;
    });
  }

  if (q.count_only) {
    out.push_back(Row{Value(static_cast<int64_t>(match_count))});
    ++stats.rows_returned;
    return;
  }

  if (order_col) {
    // Stable sort keeps insertion order for equal keys (deterministic).
    std::stable_sort(collected.begin(), collected.end(),
                     [&](const Row* a, const Row* b) {
                       int c = (*a)[*order_col].compare((*b)[*order_col]);
                       return q.order_by->descending ? c > 0 : c < 0;
                     });
    uint64_t cap = q.limit.value_or(UINT64_MAX);
    uint64_t emitted = 0;  // per-repeat, not across the whole result set
    for (const Row* row : collected) {
      if (emitted >= cap) break;
      Row projected;
      projected.reserve(out_cols.size());
      for (size_t c : out_cols) projected.push_back((*row)[c]);
      out.push_back(std::move(projected));
      ++stats.rows_returned;
      ++emitted;
    }
  }
}

}  // namespace

std::string ResultSet::to_text() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += '\t';
    out += columns[i];
  }
  out += '\n';
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += '\t';
      out += row[i].to_string();
    }
    out += '\n';
  }
  return out;
}

ResultSet execute(const Database& db, const SelectQuery& q) {
  const Table& t = db.table(q.table);
  const Schema& schema = t.schema();

  // Resolve output columns.
  std::vector<size_t> out_cols;
  ResultSet result;
  if (q.count_only) {
    result.columns.push_back("count");
  } else if (q.columns.empty()) {
    for (size_t i = 0; i < schema.column_count(); ++i) {
      out_cols.push_back(i);
      result.columns.push_back(schema.column(i).name);
    }
  } else {
    for (const std::string& name : q.columns) {
      auto idx = schema.find(name);
      if (!idx) throw std::invalid_argument("no such column: " + name);
      out_cols.push_back(*idx);
      result.columns.push_back(name);
    }
  }

  // Resolve predicate columns.
  std::vector<size_t> pred_cols;
  for (const Predicate& p : q.where) {
    auto idx = schema.find(p.column);
    if (!idx) throw std::invalid_argument("no such column: " + p.column);
    pred_cols.push_back(*idx);
  }

  // Resolve the ORDER BY column.
  std::optional<size_t> order_col;
  if (q.order_by) {
    auto idx = schema.find(q.order_by->column);
    if (!idx) throw std::invalid_argument("no such column: " + q.order_by->column);
    order_col = *idx;
  }

  result.stats.repeats = q.repeat;
  for (uint64_t r = 0; r < q.repeat; ++r) {
    run_once(t, q, pred_cols, out_cols, order_col, result.stats, result.rows);
  }
  return result;
}

ResultSet execute_sql(const Database& db, std::string_view sql) {
  return execute(db, parse_select(sql));
}

}  // namespace sbroker::db
