// Query executor: runs a SelectQuery against a Database.
//
// Plan selection is deliberately simple (this stands in for MySQL, it does
// not compete with it): the executor picks the first equality predicate on a
// hash-indexed column, else the first range predicate on an ordered-indexed
// column, else a full scan. Remaining predicates are applied as filters.
// `ExecStats` records the work done; the cost model converts it into a
// simulated service time for the DES testbeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/query.h"
#include "db/schema.h"
#include "db/table.h"

namespace sbroker::db {

/// Work accounting for one execution (summed over REPEAT iterations).
struct ExecStats {
  uint64_t rows_examined = 0;  ///< rows touched by scan or index probe
  uint64_t rows_returned = 0;
  uint64_t repeats = 1;
  bool used_index = false;
};

/// A materialized result.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  ExecStats stats;

  /// Tab-separated rendering (header + rows) used by the HTTP layer.
  std::string to_text() const;
};

class Database;  // defined in database.h

/// Executes `q` against `db`. Throws std::invalid_argument for unknown
/// tables/columns. REPEAT k runs the plan k times and concatenates results —
/// this reproduces the paper's clustered-script behaviour where the backend
/// "repeats the same workload multiple times".
ResultSet execute(const Database& db, const SelectQuery& q);

/// Parses `sql` then executes it.
ResultSet execute_sql(const Database& db, std::string_view sql);

}  // namespace sbroker::db
