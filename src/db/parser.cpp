#include "db/parser.h"

#include <cctype>

#include "util/strings.h"

namespace sbroker::db {
namespace {

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= sql_.size()) {
      current_ = {TokKind::kEnd, ""};
      return;
    }
    char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) || sql_[pos_] == '_' ||
              sql_[pos_] == '.')) {
        ++pos_;
      }
      current_ = {TokKind::kIdent, std::string(sql_.substr(start, pos_ - start))};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      bool seen_dot = false;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              (sql_[pos_] == '.' && !seen_dot))) {
        if (sql_[pos_] == '.') seen_dot = true;
        ++pos_;
      }
      current_ = {TokKind::kNumber, std::string(sql_.substr(start, pos_ - start))};
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string text;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') {
        text += sql_[pos_++];
      }
      if (pos_ >= sql_.size()) throw ParseError("unterminated string literal");
      ++pos_;  // closing quote
      current_ = {TokKind::kString, std::move(text)};
      return;
    }
    // Multi-char operators first.
    for (std::string_view op : {"<=", ">=", "!=", "<>"}) {
      if (sql_.substr(pos_).substr(0, 2) == op) {
        pos_ += 2;
        current_ = {TokKind::kSymbol, std::string(op == "<>" ? "!=" : op)};
        return;
      }
    }
    if (c == '=' || c == '<' || c == '>' || c == ',' || c == '*' || c == ';' ||
        c == '(' || c == ')') {
      ++pos_;
      current_ = {TokKind::kSymbol, std::string(1, c)};
      return;
    }
    throw ParseError(std::string("unexpected character '") + c + "' in query");
  }

  std::string_view sql_;
  size_t pos_ = 0;
  Token current_;
};

bool is_keyword(const Token& t, std::string_view kw) {
  return t.kind == TokKind::kIdent && util::iequals(t.text, kw);
}

Token expect_ident(Lexer& lex, const char* what) {
  Token t = lex.take();
  if (t.kind != TokKind::kIdent) {
    throw ParseError(std::string("expected ") + what + ", got '" + t.text + "'");
  }
  return t;
}

CompareOp parse_op(Lexer& lex) {
  Token t = lex.take();
  if (t.kind != TokKind::kSymbol) throw ParseError("expected comparison operator");
  if (t.text == "=") return CompareOp::kEq;
  if (t.text == "!=") return CompareOp::kNe;
  if (t.text == "<") return CompareOp::kLt;
  if (t.text == "<=") return CompareOp::kLe;
  if (t.text == ">") return CompareOp::kGt;
  if (t.text == ">=") return CompareOp::kGe;
  throw ParseError("unknown operator '" + t.text + "'");
}

Value parse_literal(Lexer& lex) {
  Token t = lex.take();
  if (t.kind == TokKind::kString) return Value(std::move(t.text));
  if (t.kind == TokKind::kNumber) {
    if (t.text.find('.') != std::string::npos) {
      auto d = util::parse_double(t.text);
      if (!d) throw ParseError("bad numeric literal '" + t.text + "'");
      return Value(*d);
    }
    auto i = util::parse_int(t.text);
    if (!i) throw ParseError("bad integer literal '" + t.text + "'");
    return Value(*i);
  }
  if (is_keyword(t, "null")) return Value();
  throw ParseError("expected literal, got '" + t.text + "'");
}

uint64_t parse_uint(Lexer& lex, const char* what) {
  Token t = lex.take();
  if (t.kind != TokKind::kNumber) {
    throw ParseError(std::string("expected number after ") + what);
  }
  auto v = util::parse_int(t.text);
  if (!v || *v < 0) throw ParseError(std::string("bad count after ") + what);
  return static_cast<uint64_t>(*v);
}

}  // namespace

SelectQuery parse_select(std::string_view sql) {
  Lexer lex(sql);
  SelectQuery q;

  if (!is_keyword(lex.peek(), "select")) throw ParseError("query must start with SELECT");
  lex.take();

  // Select list.
  if (lex.peek().kind == TokKind::kSymbol && lex.peek().text == "*") {
    lex.take();
  } else if (is_keyword(lex.peek(), "count")) {
    lex.take();
    // COUNT(*) — the lexer folds "(*" handling into explicit symbol checks.
    Token open = lex.take();
    if (open.kind != TokKind::kSymbol || open.text != "(") {
      throw ParseError("expected '(' after COUNT");
    }
    Token star = lex.take();
    if (star.kind != TokKind::kSymbol || star.text != "*") {
      throw ParseError("expected '*' in COUNT(*)");
    }
    Token close = lex.take();
    if (close.kind != TokKind::kSymbol || close.text != ")") {
      throw ParseError("expected ')' after COUNT(*");
    }
    q.count_only = true;
  } else {
    q.columns.push_back(expect_ident(lex, "column name").text);
    while (lex.peek().kind == TokKind::kSymbol && lex.peek().text == ",") {
      lex.take();
      q.columns.push_back(expect_ident(lex, "column name").text);
    }
  }

  if (!is_keyword(lex.peek(), "from")) throw ParseError("expected FROM");
  lex.take();
  q.table = expect_ident(lex, "table name").text;

  if (is_keyword(lex.peek(), "where")) {
    lex.take();
    while (true) {
      Predicate p;
      p.column = expect_ident(lex, "column name").text;
      p.op = parse_op(lex);
      p.literal = parse_literal(lex);
      q.where.push_back(std::move(p));
      if (is_keyword(lex.peek(), "and")) {
        lex.take();
        continue;
      }
      break;
    }
  }

  if (is_keyword(lex.peek(), "order")) {
    lex.take();
    if (!is_keyword(lex.peek(), "by")) throw ParseError("expected BY after ORDER");
    lex.take();
    OrderBy order;
    order.column = expect_ident(lex, "ORDER BY column").text;
    if (is_keyword(lex.peek(), "asc")) {
      lex.take();
    } else if (is_keyword(lex.peek(), "desc")) {
      lex.take();
      order.descending = true;
    }
    q.order_by = order;
  }

  if (is_keyword(lex.peek(), "limit")) {
    lex.take();
    q.limit = parse_uint(lex, "LIMIT");
  }

  if (is_keyword(lex.peek(), "repeat")) {
    lex.take();
    q.repeat = parse_uint(lex, "REPEAT");
    if (q.repeat == 0) throw ParseError("REPEAT count must be >= 1");
  }

  if (lex.peek().kind == TokKind::kSymbol && lex.peek().text == ";") lex.take();
  if (lex.peek().kind != TokKind::kEnd) {
    throw ParseError("trailing tokens after query: '" + lex.peek().text + "'");
  }
  return q;
}

}  // namespace sbroker::db
