// Recursive-descent parser for the SQL subset (see query.h for the grammar).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "db/query.h"

namespace sbroker::db {

/// Thrown on any syntax error; the message points at the offending token.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses one SELECT statement. Throws ParseError on malformed input.
SelectQuery parse_select(std::string_view sql);

}  // namespace sbroker::db
