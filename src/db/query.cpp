#include "db/query.h"

namespace sbroker::db {

const char* compare_op_name(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool eval_compare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) {
    // SQL-lite semantics: NULL = NULL is true, NULL != x is true when x is
    // non-NULL; ordering comparisons against NULL are false.
    bool both = lhs.is_null() && rhs.is_null();
    if (op == CompareOp::kEq) return both;
    if (op == CompareOp::kNe) return !both;
    return false;
  }
  int c = lhs.compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

namespace {

std::string render(const SelectQuery& q, bool with_repeat) {
  std::string out = "SELECT ";
  if (q.count_only) {
    out += "COUNT(*)";
  } else if (q.columns.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < q.columns.size(); ++i) {
      if (i) out += ", ";
      out += q.columns[i];
    }
  }
  out += " FROM " + q.table;
  if (!q.where.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < q.where.size(); ++i) {
      if (i) out += " AND ";
      out += q.where[i].column;
      out += " ";
      out += compare_op_name(q.where[i].op);
      out += " ";
      out += q.where[i].literal.to_string();
    }
  }
  if (q.order_by) {
    out += " ORDER BY " + q.order_by->column + (q.order_by->descending ? " DESC" : " ASC");
  }
  if (q.limit) out += " LIMIT " + std::to_string(*q.limit);
  if (with_repeat && q.repeat > 1) out += " REPEAT " + std::to_string(q.repeat);
  return out;
}

}  // namespace

std::string SelectQuery::to_string() const { return render(*this, /*with_repeat=*/true); }

std::string SelectQuery::cache_key() const { return render(*this, /*with_repeat=*/false); }

}  // namespace sbroker::db
