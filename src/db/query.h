// Query AST for the SQL subset understood by the engine.
//
// Grammar (case-insensitive keywords):
//
//   query     := SELECT select_list FROM ident [WHERE conjunct]
//                [ORDER BY ident [ASC|DESC]] [LIMIT int] [REPEAT int]
//   select_list := '*' | COUNT '(' '*' ')' | ident (',' ident)*
//   conjunct  := predicate (AND predicate)*
//   predicate := ident op literal
//   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := int | real | 'text'
//
// REPEAT is this repo's clustering extension (Section V-A of the paper): the
// backend script "repeats the same workload multiple times" when the broker
// rewrites a clustered batch. REPEAT k executes the query k times and
// concatenates the result sets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "db/value.h"

namespace sbroker::db {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* compare_op_name(CompareOp op);

/// Evaluates `lhs op rhs` with SQL NULL semantics (NULL matches nothing
/// except via kEq/kNe against NULL itself — sufficient for this engine).
bool eval_compare(CompareOp op, const Value& lhs, const Value& rhs);

struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectQuery {
  std::vector<std::string> columns;  ///< empty means '*' (or COUNT(*))
  bool count_only = false;           ///< SELECT COUNT(*): one row, one cell
  std::string table;
  std::vector<Predicate> where;      ///< conjunction
  std::optional<OrderBy> order_by;
  std::optional<uint64_t> limit;
  uint64_t repeat = 1;               ///< clustering degree; >= 1

  /// Canonical text form; parse(to_string()) round-trips.
  std::string to_string() const;

  /// Cache key: canonical text without the REPEAT clause, so a clustered
  /// batch and a single query that compute the same rows share cache entries.
  std::string cache_key() const;
};

}  // namespace sbroker::db
