// Table schemas for the mini relational engine.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/value.h"

namespace sbroker::db {

struct Column {
  std::string name;
  Type type = Type::kInt;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_.at(i); }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or nullopt.
  std::optional<size_t> find(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return i;
    }
    return std::nullopt;
  }

  /// True when `row` has the right arity and each non-NULL cell matches the
  /// declared column type.
  bool matches(const Row& row) const {
    if (row.size() != columns_.size()) return false;
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].is_null()) continue;
      if (row[i].type() != columns_[i].type) return false;
    }
    return true;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace sbroker::db
