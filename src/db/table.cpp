#include "db/table.h"

#include <stdexcept>

namespace sbroker::db {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

RowId Table::insert(Row row) {
  if (!schema_.matches(row)) {
    throw std::invalid_argument("row does not match schema of table " + name_);
  }
  RowId id = rows_.size();
  rows_.push_back(std::move(row));
  alive_.push_back(true);
  ++live_rows_;
  index_insert(id, rows_.back());
  return id;
}

const Row* Table::get(RowId id) const {
  if (id >= rows_.size() || !alive_[id]) return nullptr;
  return &rows_[id];
}

bool Table::update(RowId id, Row row) {
  if (id >= rows_.size() || !alive_[id]) return false;
  if (!schema_.matches(row)) {
    throw std::invalid_argument("row does not match schema of table " + name_);
  }
  index_erase(id, rows_[id]);
  rows_[id] = std::move(row);
  index_insert(id, rows_[id]);
  return true;
}

bool Table::erase(RowId id) {
  if (id >= rows_.size() || !alive_[id]) return false;
  index_erase(id, rows_[id]);
  alive_[id] = false;
  --live_rows_;
  return true;
}

void Table::create_hash_index(const std::string& column) {
  auto col = schema_.find(column);
  if (!col) throw std::invalid_argument("no such column: " + column);
  if (hash_indexes_.count(*col)) return;
  HashIndex index;
  scan([&](RowId id, const Row& row) {
    index.emplace(row[*col], id);
    return true;
  });
  hash_indexes_.emplace(*col, std::move(index));
}

void Table::create_ordered_index(const std::string& column) {
  auto col = schema_.find(column);
  if (!col) throw std::invalid_argument("no such column: " + column);
  if (ordered_indexes_.count(*col)) return;
  OrderedIndex index;
  scan([&](RowId id, const Row& row) {
    index.emplace(row[*col], id);
    return true;
  });
  ordered_indexes_.emplace(*col, std::move(index));
}

bool Table::has_hash_index(size_t column) const { return hash_indexes_.count(column) > 0; }

bool Table::has_ordered_index(size_t column) const {
  return ordered_indexes_.count(column) > 0;
}

std::vector<RowId> Table::hash_lookup(size_t column, const Value& key) const {
  auto it = hash_indexes_.find(column);
  if (it == hash_indexes_.end()) {
    throw std::logic_error("hash_lookup without hash index on table " + name_);
  }
  std::vector<RowId> out;
  auto [lo, hi] = it->second.equal_range(key);
  for (auto e = lo; e != hi; ++e) out.push_back(e->second);
  return out;
}

std::vector<RowId> Table::range_lookup(size_t column, const Value* lo, bool lo_inclusive,
                                       const Value* hi, bool hi_inclusive) const {
  auto it = ordered_indexes_.find(column);
  if (it == ordered_indexes_.end()) {
    throw std::logic_error("range_lookup without ordered index on table " + name_);
  }
  const OrderedIndex& index = it->second;
  auto begin = lo ? (lo_inclusive ? index.lower_bound(*lo) : index.upper_bound(*lo))
                  : index.begin();
  auto end = hi ? (hi_inclusive ? index.upper_bound(*hi) : index.lower_bound(*hi))
                : index.end();
  std::vector<RowId> out;
  for (auto e = begin; e != end; ++e) out.push_back(e->second);
  return out;
}

void Table::index_insert(RowId id, const Row& row) {
  for (auto& [col, index] : hash_indexes_) index.emplace(row[col], id);
  for (auto& [col, index] : ordered_indexes_) index.emplace(row[col], id);
}

void Table::index_erase(RowId id, const Row& row) {
  for (auto& [col, index] : hash_indexes_) {
    auto [lo, hi] = index.equal_range(row[col]);
    for (auto e = lo; e != hi; ++e) {
      if (e->second == id) {
        index.erase(e);
        break;
      }
    }
  }
  for (auto& [col, index] : ordered_indexes_) {
    auto [lo, hi] = index.equal_range(row[col]);
    for (auto e = lo; e != hi; ++e) {
      if (e->second == id) {
        index.erase(e);
        break;
      }
    }
  }
}

}  // namespace sbroker::db
