// In-memory table with secondary indexes.
//
// Rows are stored in insertion order and addressed by a dense row id. Two
// index flavours are supported per column:
//   * hash index    — equality lookups, O(1) average
//   * ordered index — range scans, O(log n + k)
// Index maintenance happens on insert/update/delete; the executor picks an
// index when a predicate allows it and falls back to a full scan otherwise
// (the scan-vs-index equivalence is covered by property tests).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace sbroker::db {

using RowId = uint64_t;

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t row_count() const { return live_rows_; }

  /// Inserts a row; throws std::invalid_argument on schema mismatch.
  RowId insert(Row row);

  /// Returns nullptr for deleted/unknown ids.
  const Row* get(RowId id) const;

  /// Replaces a live row; returns false if the id is dead/unknown.
  bool update(RowId id, Row row);

  /// Tombstones a row; returns false if already dead/unknown.
  bool erase(RowId id);

  /// Builds a hash (equality) index on `column`. Idempotent.
  void create_hash_index(const std::string& column);

  /// Builds an ordered (range) index on `column`. Idempotent.
  void create_ordered_index(const std::string& column);

  bool has_hash_index(size_t column) const;
  bool has_ordered_index(size_t column) const;

  /// Row ids whose `column` equals `key` (via hash index; requires one).
  std::vector<RowId> hash_lookup(size_t column, const Value& key) const;

  /// Row ids whose `column` lies in [lo, hi] (nullopt = unbounded side);
  /// requires an ordered index on the column.
  std::vector<RowId> range_lookup(size_t column, const Value* lo, bool lo_inclusive,
                                  const Value* hi, bool hi_inclusive) const;

  /// Visits every live row in insertion order; `fn` returns false to stop.
  template <typename Fn>
  void scan(Fn&& fn) const {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (!alive_[id]) continue;
      if (!fn(id, rows_[id])) return;
    }
  }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      // Hash-index keys are same-typed in practice; compare() may throw on
      // TEXT-vs-numeric, which would indicate a caller bug.
      return a.compare(b) == 0;
    }
  };
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const { return a.compare(b) < 0; }
  };

  using HashIndex = std::unordered_multimap<Value, RowId, ValueHash, ValueEq>;
  using OrderedIndex = std::multimap<Value, RowId, ValueLess>;

  void index_insert(RowId id, const Row& row);
  void index_erase(RowId id, const Row& row);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> alive_;
  size_t live_rows_ = 0;
  std::unordered_map<size_t, HashIndex> hash_indexes_;      // column -> index
  std::unordered_map<size_t, OrderedIndex> ordered_indexes_;
};

}  // namespace sbroker::db
