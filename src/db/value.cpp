#include "db/value.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace sbroker::db {

Type Value::type() const {
  switch (v_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kInt;
    case 2:
      return Type::kReal;
    default:
      return Type::kText;
  }
}

double Value::numeric() const {
  if (std::holds_alternative<int64_t>(v_)) return static_cast<double>(std::get<int64_t>(v_));
  if (std::holds_alternative<double>(v_)) return std::get<double>(v_);
  throw std::invalid_argument("Value::numeric on non-numeric value");
}

int Value::compare(const Value& other) const {
  bool lnull = is_null();
  bool rnull = other.is_null();
  if (lnull || rnull) {
    if (lnull && rnull) return 0;
    return lnull ? -1 : 1;
  }
  bool ltext = type() == Type::kText;
  bool rtext = other.type() == Type::kText;
  if (ltext != rtext) {
    throw std::invalid_argument("cannot compare TEXT with numeric value");
  }
  if (ltext) {
    const std::string& a = as_text();
    const std::string& b = other.as_text();
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }
  double a = numeric();
  double b = other.numeric();
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kNull:
      return "NULL";
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kReal: {
      std::string s = std::to_string(as_real());
      return s;
    }
    case Type::kText:
      return "'" + as_text() + "'";
  }
  return "?";
}

size_t Value::hash() const {
  switch (type()) {
    case Type::kNull:
      return 0x9ddfea08eb382d69ULL;
    case Type::kInt:
      return std::hash<double>{}(static_cast<double>(as_int()));
    case Type::kReal:
      return std::hash<double>{}(as_real());
    case Type::kText:
      return std::hash<std::string>{}(as_text());
  }
  return 0;
}

const char* type_name(Type t) {
  switch (t) {
    case Type::kNull:
      return "NULL";
    case Type::kInt:
      return "INT";
    case Type::kReal:
      return "REAL";
    case Type::kText:
      return "TEXT";
  }
  return "?";
}

}  // namespace sbroker::db
