// Typed values and rows for the mini relational engine.
//
// The engine supports three scalar types (INT, REAL, TEXT) plus NULL. This
// is all the paper's workloads need: a 42,000-record lookup table for the
// clustering experiment and a movie-schedule table for the caching example.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sbroker::db {

enum class Type { kNull, kInt, kReal, kText };

/// A single cell. NULL is modeled as std::monostate.
class Value {
 public:
  Value() = default;
  Value(int64_t v) : v_(v) {}           // NOLINT(google-explicit-constructor)
  Value(int v) : v_(int64_t{v}) {}      // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}            // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  Type type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  /// Accessors require the matching type (checked with std::get).
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_real() const { return std::get<double>(v_); }
  const std::string& as_text() const { return std::get<std::string>(v_); }

  /// Numeric view: INT and REAL both convert; throws otherwise.
  double numeric() const;

  /// SQL-style three-way comparison used by predicates and ordered indexes.
  /// NULL compares less than everything; INT/REAL compare numerically;
  /// comparing TEXT with a numeric type throws std::invalid_argument.
  int compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }

  /// Rendering for result sets and logs: NULL, 42, 3.14, 'text'.
  std::string to_string() const;

  /// Stable hash for hash indexes; numerically equal INT/REAL hash alike.
  size_t hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

/// Human-readable type name ("INT", "TEXT", ...).
const char* type_name(Type t);

}  // namespace sbroker::db
