#include "fed/federation.h"

#include <algorithm>
#include <utility>

#include "util/log.h"

namespace sbroker::fed {
namespace {

/// Per-shard hotness table cap; full reset beyond it. Hot keys re-earn
/// their count within one window, cold keys stay evicted.
constexpr size_t kHotMapCap = 4096;

}  // namespace

std::vector<std::string> member_identities(const std::vector<uint16_t>& ports) {
  std::vector<std::string> out;
  out.reserve(ports.size());
  for (uint16_t port : ports) {
    out.push_back("127.0.0.1:" + std::to_string(port));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShardPeering

ShardPeering::ShardPeering(net::Reactor& reactor, const FedNodeConfig& config,
                           const Ring& ring, GlobalView& view,
                           FedCounters& counters)
    : reactor_(reactor),
      config_(config),
      ring_(ring),
      view_(view),
      counters_(counters) {
  channels_.resize(config_.peer_ports.size());
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (i == config_.node_id) continue;  // self needs no channel
    channels_[i] = std::make_unique<PeerChannel>(
        reactor_, config_.peer_ports[i], config_.dial_backoff, config_.node_id);
  }
}

bool ShardPeering::acting_owner(std::string_view key) const {
  size_t owner = ring_.owner_if(key, [this](size_t member) {
    return member == config_.node_id || channels_[member]->usable();
  });
  return owner == static_cast<size_t>(config_.node_id);
}

bool ShardPeering::try_forward(const http::BrokerRequest& request,
                               ForwardDone done) {
  if (!config_.forward_misses) return false;
  // Ownership among live peers only: a down owner's range falls to its ring
  // successor, and when that successor is us we fetch locally instead.
  size_t owner = ring_.owner_if(request.payload, [this](size_t member) {
    return member == config_.node_id || channels_[member]->usable();
  });
  if (owner == Ring::kNobody ||
      owner == static_cast<size_t>(config_.node_id)) {
    return false;
  }
  // Never wait on a peer past the client's remaining budget.
  double timeout = config_.forward_timeout;
  if (request.deadline_ms > 0) {
    timeout = std::min(timeout, request.deadline_ms / 1000.0);
  }
  bool sent = channels_[owner]->fetch(
      request.payload, request.qos_level, request.deadline_ms, timeout,
      [this, done = std::move(done)](bool ok, http::Fidelity fidelity,
                                     uint8_t flags, std::string payload) {
        if (ok) {
          counters_.forward_replies.fetch_add(1, std::memory_order_relaxed);
        } else {
          counters_.forward_fails.fetch_add(1, std::memory_order_relaxed);
        }
        done(ForwardResult{ok, fidelity, flags, std::move(payload)});
      });
  if (sent) counters_.forwards_sent.fetch_add(1, std::memory_order_relaxed);
  return sent;
}

void ShardPeering::on_served(std::string_view key, std::string_view value,
                             http::Fidelity fidelity) {
  if (!config_.replicate_hot) return;
  // Only real answers replicate; busy notices and errors are not results.
  if (fidelity != http::Fidelity::kFull && fidelity != http::Fidelity::kCached) {
    return;
  }
  // Only the acting owner counts hotness and pushes: every tier-wide access
  // to a hot key funnels through its owner (local hit there, or forwarded
  // fetch), so the owner sees the true access rate — and exactly one node
  // pushes, instead of N nodes storming each other.
  if (!acting_owner(key)) return;
  double now = reactor_.now();
  auto [it, inserted] = hot_.try_emplace(std::string(key));
  HotEntry& entry = it->second;
  if (inserted || now - entry.window_start > config_.hot_window) {
    entry.window_start = now;
    entry.count = 0;
    entry.pushed = false;
  }
  ++entry.count;
  if (!entry.pushed && entry.count >= config_.hot_threshold) {
    entry.pushed = true;  // once per window, not once per access past it
    push_to_peers(key, value);
  }
  if (hot_.size() > kHotMapCap) hot_.clear();
}

void ShardPeering::push_to_peers(std::string_view key, std::string_view value) {
  for (auto& channel : channels_) {
    if (!channel) continue;
    if (channel->send_push(key, value)) {
      counters_.pushes_sent.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ShardPeering::on_peer_fetch() {
  counters_.fetches_served.fetch_add(1, std::memory_order_relaxed);
}

void ShardPeering::on_push(const net::frame::Push& push) {
  (void)push;  // the daemon already installed key -> value in the cache
  counters_.pushes_received.fetch_add(1, std::memory_order_relaxed);
}

void ShardPeering::on_gossip(const net::frame::Gossip& gossip) {
  counters_.gossip_received.fetch_add(1, std::memory_order_relaxed);
  view_.update(gossip);
}

size_t ShardPeering::broadcast_gossip(const net::frame::Gossip& gossip) {
  size_t sent = 0;
  for (auto& channel : channels_) {
    if (!channel) continue;
    if (channel->send_gossip(gossip)) {
      counters_.gossip_sent.fetch_add(1, std::memory_order_relaxed);
      ++sent;
    }
  }
  return sent;
}

// ---------------------------------------------------------------------------
// FederatedDaemon

FederatedDaemon::FederatedDaemon(std::string name,
                                 net::ShardedBrokerDaemonConfig daemon_config,
                                 FedNodeConfig fed_config)
    : name_(std::move(name)),
      fed_config_(std::move(fed_config)),
      ring_(member_identities(fed_config_.peer_ports), fed_config_.vnodes),
      view_(fed_config_.peer_ports.size(),
            fed_config_.stale_after > 0.0
                ? fed_config_.stale_after
                : 3.0 * fed_config_.gossip_interval),
      daemon_(name_,
              [&]() {
                daemon_config.listen_port =
                    fed_config_.peer_ports.at(fed_config_.node_id);
                return std::move(daemon_config);
              }()) {
  peerings_.reserve(daemon_.shards());
  for (size_t i = 0; i < daemon_.shards(); ++i) {
    peerings_.push_back(std::make_unique<ShardPeering>(
        daemon_.shard_reactor(i), fed_config_, ring_, view_, counters_));
    daemon_.shard(i).set_federation(peerings_.back().get());
    // The gossip view enters admission as a tier-wide load floor.
    daemon_.shard(i).broker().set_tier_load(
        [this]() { return view_.remote_pressure(); });
  }
  daemon_.set_federation_status([this]() { return admin_status(); });
}

FederatedDaemon::~FederatedDaemon() { stop(); }

void FederatedDaemon::add_backend(
    const net::ShardedBrokerDaemon::BackendFactory& factory, double weight) {
  daemon_.add_backend(factory, weight);
}

void FederatedDaemon::start() {
  daemon_.start();
  if (fed_config_.gossip && fed_config_.peer_ports.size() > 1) {
    gossip_stop_.store(false, std::memory_order_relaxed);
    arm_gossip();
  }
}

void FederatedDaemon::stop() {
  gossip_stop_.store(true, std::memory_order_relaxed);
  daemon_.stop();
}

void FederatedDaemon::arm_gossip() {
  // Timers are shard-thread-only state, so the repeating broadcast is armed
  // by posting the first tick onto shard 0's reactor; each tick re-arms the
  // next. The closures capture only `this` (no owning self-reference — a
  // closure holding a shared_ptr to itself leaks when the reactor dies with
  // the timer armed), which the daemon outlives: stop() joins the shard
  // threads before this object is torn down, and an armed timer dies with
  // its reactor. Stop is an atomic flag: a tick racing stop() is harmless.
  daemon_.shard_reactor(0).post([this]() { gossip_tick(); });
}

void FederatedDaemon::gossip_tick() {
  // Runs on shard 0's thread; reads the shared LoadTracker (atomic) and
  // shard 0's overload controller (same thread, so in-contract) and fans
  // out through shard 0's channels.
  if (gossip_stop_.load(std::memory_order_relaxed)) return;
  net::frame::Gossip gossip;
  gossip.node = fed_config_.node_id;
  gossip.outstanding = static_cast<uint32_t>(
      std::max(0.0, daemon_.shared_load().load()));
  const core::OverloadController& control =
      daemon_.shard(0).broker().overload_control();
  gossip.threshold = control.threshold();
  gossip.overloaded = control.overloaded();
  peerings_[0]->broadcast_gossip(gossip);
  counters_.gossip_rounds.fetch_add(1, std::memory_order_relaxed);
  daemon_.shard_reactor(0).add_timer(fed_config_.gossip_interval,
                                     [this]() { gossip_tick(); });
}

net::FederationStatus FederatedDaemon::admin_status() const {
  net::FederationStatus status;
  status.node_id = fed_config_.node_id;
  status.nodes = fed_config_.peer_ports.size();
  status.vnodes = ring_.vnodes();
  status.ring_share = ring_.share(fed_config_.node_id);
  status.remote_pressure = view_.remote_pressure();
  status.forwards_sent = counters_.forwards_sent.load(std::memory_order_relaxed);
  status.forward_replies =
      counters_.forward_replies.load(std::memory_order_relaxed);
  status.forward_fails = counters_.forward_fails.load(std::memory_order_relaxed);
  status.fetches_served =
      counters_.fetches_served.load(std::memory_order_relaxed);
  status.pushes_sent = counters_.pushes_sent.load(std::memory_order_relaxed);
  status.pushes_received =
      counters_.pushes_received.load(std::memory_order_relaxed);
  status.gossip_sent = counters_.gossip_sent.load(std::memory_order_relaxed);
  status.gossip_received =
      counters_.gossip_received.load(std::memory_order_relaxed);
  status.gossip_rounds = counters_.gossip_rounds.load(std::memory_order_relaxed);
  status.view_updates = view_.updates();

  std::vector<PeerLoad> loads = view_.snapshot();
  std::vector<std::string> identities = member_identities(fed_config_.peer_ports);
  status.peers.reserve(identities.size());
  for (size_t i = 0; i < identities.size(); ++i) {
    net::FederationPeerStatus peer;
    peer.node = static_cast<uint32_t>(i);
    peer.identity = identities[i];
    peer.self = i == static_cast<size_t>(fed_config_.node_id);
    if (i < loads.size()) {
      peer.fresh = loads[i].fresh;
      peer.outstanding = loads[i].outstanding;
      peer.threshold = loads[i].threshold;
      peer.overloaded = loads[i].overloaded;
    }
    if (!peer.self) {
      // Channel health summed over every shard's channel to this peer.
      for (const auto& peering : peerings_) {
        const PeerChannel* channel = peering->channel(i);
        if (channel == nullptr) continue;
        peer.connected = peer.connected || channel->connected();
        peer.fetches += channel->fetches();
        peer.fetch_fails += channel->fetch_fails();
        peer.pushes += channel->pushes();
        peer.gossips += channel->gossips();
        peer.drops += channel->drops();
        peer.dials += channel->dials();
      }
    }
    status.peers.push_back(std::move(peer));
  }
  return status;
}

}  // namespace sbroker::fed
