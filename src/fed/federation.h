// Broker federation: N sharded daemons as one cache/admission tier.
//
// The paper's broker is a single box between the web tier and the backends.
// This module federates N such boxes (separate processes, real sockets)
// into one logical tier along three axes:
//
//   * Partitioning. A consistent-hash Ring (fed/ring.h) keyed on the
//     canonical query — the same string the result cache and single-flight
//     table key on — assigns every query an owner node. A non-owner that
//     misses its local cache forwards the fetch to the owner over a
//     persistent kPeerFetch channel instead of hitting the backend, so the
//     tier's effective cache is the union of the nodes' caches and each
//     query's backend fetches collapse onto one node's single-flight table.
//     The owner serves from cache or its own backend and never re-forwards
//     (it answers a kPeerFetch locally by construction), so forwarding
//     loops are impossible.
//
//   * Replication. A key whose owner serves it more than `hot_threshold`
//     times within `hot_window` seconds is pushed (kPeerPush) to every
//     peer's cache, converting the tier back to local-hit behaviour for
//     the keys where forwarding latency would actually be paid often.
//
//   * Global view. Every `gossip_interval` seconds each node broadcasts a
//     kGossip frame (outstanding count, effective admission threshold,
//     overload flag). Receivers fold these into a GlobalView whose
//     remote_pressure() feeds each broker's admission decision as a tier
//     load floor — a node with local headroom sheds for the tier when its
//     peers are drowning (PAPER.md's "global view" overload control).
//
// Deployment shape: every node is a FederatedDaemon wrapping one
// ShardedBrokerDaemon. All federation traffic rides the node's ordinary
// sniffed port as binary frames; there is no separate control port.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fed/global_view.h"
#include "fed/peer_channel.h"
#include "fed/ring.h"
#include "net/admin.h"
#include "net/fed_hook.h"
#include "net/sharded_daemon.h"

namespace sbroker::fed {

struct FedNodeConfig {
  uint32_t node_id = 0;              ///< this node's index into `peer_ports`
  std::vector<uint16_t> peer_ports;  ///< every member's main port, self included
  size_t vnodes = 128;               ///< ring virtual nodes per member

  bool forward_misses = true;   ///< kPeerFetch misses to their ring owner
  bool replicate_hot = true;    ///< kPeerPush keys crossing the hot threshold
  bool gossip = true;           ///< broadcast kGossip load reports

  uint32_t hot_threshold = 8;   ///< owner-side serves per window to go hot
  double hot_window = 1.0;      ///< seconds per hotness window
  double forward_timeout = 0.25;  ///< peer exchange deadline, seconds
  double dial_backoff = 0.3;    ///< seconds between dials to a down peer
  double gossip_interval = 0.1; ///< seconds between load broadcasts
  double stale_after = 0.0;     ///< gossip freshness window; 0 = 3x interval
};

/// Node-wide federation counters, shared by every shard's peering (relaxed
/// atomics; read by the admin plane from its own thread).
struct FedCounters {
  std::atomic<uint64_t> forwards_sent{0};     ///< misses forwarded to owners
  std::atomic<uint64_t> forward_replies{0};   ///< owner answers relayed
  std::atomic<uint64_t> forward_fails{0};     ///< forwards failed -> local fallback
  std::atomic<uint64_t> fetches_served{0};    ///< kPeerFetch served as owner
  std::atomic<uint64_t> pushes_sent{0};       ///< hot-key pushes sent (per peer)
  std::atomic<uint64_t> pushes_received{0};   ///< hot-key pushes installed
  std::atomic<uint64_t> gossip_sent{0};       ///< gossip frames sent (per peer)
  std::atomic<uint64_t> gossip_received{0};   ///< gossip frames folded in
  std::atomic<uint64_t> gossip_rounds{0};     ///< broadcast rounds completed
};

/// One shard's federation endpoint: owns that shard's per-peer channels and
/// implements the daemon-facing hook. Lives on the shard's reactor thread
/// except where members document otherwise.
class ShardPeering : public net::FederationHook {
 public:
  ShardPeering(net::Reactor& reactor, const FedNodeConfig& config,
               const Ring& ring, GlobalView& view, FedCounters& counters);

  // FederationHook (all on the owning shard's reactor thread).
  bool try_forward(const http::BrokerRequest& request, ForwardDone done) override;
  void on_served(std::string_view key, std::string_view value,
                 http::Fidelity fidelity) override;
  void on_peer_fetch() override;
  void on_push(const net::frame::Push& push) override;
  void on_gossip(const net::frame::Gossip& gossip) override;

  /// Broadcasts one gossip frame to every usable peer (gossip timer,
  /// reactor thread only). Returns peers actually sent to.
  size_t broadcast_gossip(const net::frame::Gossip& gossip);

  /// This node currently acts as owner for `key`: ring owner among the
  /// peers whose channels are usable, self always counted alive.
  bool acting_owner(std::string_view key) const;

  /// Peer channel by node id; nullptr for self. Status getters on the
  /// channel are safe from any thread.
  const PeerChannel* channel(size_t node) const {
    return node < channels_.size() ? channels_[node].get() : nullptr;
  }

 private:
  struct HotEntry {
    uint32_t count = 0;
    double window_start = 0.0;
    bool pushed = false;  ///< already replicated in this window
  };

  /// Replicates `key`/`value` to every usable peer.
  void push_to_peers(std::string_view key, std::string_view value);

  net::Reactor& reactor_;
  const FedNodeConfig& config_;
  const Ring& ring_;
  GlobalView& view_;
  FedCounters& counters_;
  std::vector<std::unique_ptr<PeerChannel>> channels_;  ///< [node]; self = null
  std::unordered_map<std::string, HotEntry> hot_;       ///< per-shard hotness
};

/// One federation member: a ShardedBrokerDaemon plus its ring position,
/// peer channels, gossip loop, and tier-load admission input.
class FederatedDaemon {
 public:
  /// Binds the daemon's listeners on config.peer_ports[config.node_id]
  /// (overriding daemon_config.listen_port) and wires the federation into
  /// every shard. Call add_backend() then start(), as with the raw daemon.
  FederatedDaemon(std::string name, net::ShardedBrokerDaemonConfig daemon_config,
                  FedNodeConfig fed_config);
  ~FederatedDaemon();  ///< stops first so shard hook pointers never dangle
  FederatedDaemon(const FederatedDaemon&) = delete;
  FederatedDaemon& operator=(const FederatedDaemon&) = delete;

  void add_backend(const net::ShardedBrokerDaemon::BackendFactory& factory,
                   double weight = 1.0);
  void start();  ///< launches shard threads, then the gossip loop
  void stop();   ///< idempotent

  net::ShardedBrokerDaemon& daemon() { return daemon_; }
  const Ring& ring() const { return ring_; }
  GlobalView& view() { return view_; }
  const FedCounters& counters() const { return counters_; }
  uint16_t port() const { return daemon_.port(); }
  uint16_t admin_port() const { return daemon_.admin_port(); }
  uint32_t node_id() const { return fed_config_.node_id; }

  /// Federation block for /statusz and /metrics (admin thread; reads only
  /// atomics, the mutex-guarded view, and the immutable ring).
  net::FederationStatus admin_status() const;

 private:
  void arm_gossip();   ///< posts the first gossip tick onto shard 0
  void gossip_tick();  ///< one broadcast; re-arms itself on shard 0's timer

  std::string name_;
  FedNodeConfig fed_config_;
  Ring ring_;
  GlobalView view_;
  FedCounters counters_;
  net::ShardedBrokerDaemon daemon_;
  std::vector<std::unique_ptr<ShardPeering>> peerings_;  ///< [shard]
  std::atomic<bool> gossip_stop_{true};
};

/// Builds the member identity strings ("127.0.0.1:<port>") the ring hashes;
/// shared by the daemon and the cross-process ownership test.
std::vector<std::string> member_identities(const std::vector<uint16_t>& ports);

}  // namespace sbroker::fed
