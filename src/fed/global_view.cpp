#include "fed/global_view.h"

#include <algorithm>

namespace sbroker::fed {

GlobalView::GlobalView(size_t nodes, double stale_after)
    : peers_(nodes), stale_after_(stale_after) {
  for (size_t i = 0; i < peers_.size(); ++i) {
    peers_[i].node = static_cast<uint32_t>(i);
  }
}

double GlobalView::clock_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void GlobalView::update(const net::frame::Gossip& gossip) {
  if (gossip.node >= peers_.size()) return;  // malformed / stale membership
  std::lock_guard<std::mutex> lock(mu_);
  PeerLoad& p = peers_[gossip.node];
  p.outstanding = gossip.outstanding;
  p.threshold = gossip.threshold;
  p.overloaded = gossip.overloaded;
  p.updated_at = clock_seconds();
  ++updates_;
}

double GlobalView::remote_pressure() const {
  double now = clock_seconds();
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0.0;
  size_t fresh = 0;
  double overloaded_max = 0.0;
  for (const PeerLoad& p : peers_) {
    if (p.updated_at == 0.0 || now - p.updated_at > stale_after_) continue;
    ++fresh;
    sum += p.outstanding;
    if (p.overloaded) {
      overloaded_max = std::max(overloaded_max, static_cast<double>(p.outstanding));
    }
  }
  if (fresh == 0) return 0.0;
  return std::max(sum / static_cast<double>(fresh), overloaded_max);
}

std::vector<PeerLoad> GlobalView::snapshot() const {
  double now = clock_seconds();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PeerLoad> out = peers_;
  for (PeerLoad& p : out) {
    p.fresh = p.updated_at != 0.0 && now - p.updated_at <= stale_after_;
  }
  return out;
}

uint64_t GlobalView::updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return updates_;
}

}  // namespace sbroker::fed
