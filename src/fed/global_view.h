// Tier-wide load view assembled from peer gossip.
//
// Every node periodically broadcasts a kGossip frame (outstanding requests,
// live effective admission threshold, overload mode — see net/frame.h);
// each receiver folds the frames into this GlobalView. The view turns the
// paper's "global view" overload control (PAPER.md §1, item 3) into a
// concrete admission input: ServiceBroker::set_tier_load() installs
// remote_pressure() alongside the local LoadTracker, and the admission
// decision compares the threshold against the *max* of the two — a node
// that still has local headroom sheds for the tier when its peers are
// drowning, instead of forwarding misses into them.
//
// Thread model: updated from whichever shard reactor thread a gossip frame
// lands on, read from every shard's admission path. A single mutex guards
// the tiny per-peer table; the admission path reads it at most once per
// uncached miss, far off the cache-hit fast path.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "net/frame.h"

namespace sbroker::fed {

/// One peer's last gossip, plus local bookkeeping.
struct PeerLoad {
  uint32_t node = 0;
  uint32_t outstanding = 0;
  double threshold = 0.0;
  bool overloaded = false;
  double updated_at = 0.0;  ///< GlobalView::clock_seconds() of the update
  bool fresh = false;       ///< updated within the staleness window
};

class GlobalView {
 public:
  /// `nodes` is the federation size (slots for every node id, self
  /// included; self's slot just stays empty). Gossip older than
  /// `stale_after` seconds carries no weight — a dead peer's last report
  /// must not pin the tier's pressure forever.
  GlobalView(size_t nodes, double stale_after);

  /// Monotonic seconds, self-contained (steady_clock) so the view needs no
  /// reactor and every shard reads the same timeline.
  static double clock_seconds();

  /// Folds one received gossip frame in (thread-safe).
  void update(const net::frame::Gossip& gossip);

  /// Tier-wide remote pressure, in outstanding-request units comparable to
  /// the local LoadTracker: the mean outstanding across fresh peers, or —
  /// when any fresh peer declares overload — at least that peer's
  /// outstanding count, so one drowning node is not averaged away by idle
  /// ones. 0 with no fresh gossip (bootstrap, all peers dead): the node
  /// falls back to purely local admission rather than failing closed.
  double remote_pressure() const;

  /// Snapshot of every peer slot with freshness evaluated now (admin plane).
  std::vector<PeerLoad> snapshot() const;

  /// Gossip frames folded in so far.
  uint64_t updates() const;

 private:
  mutable std::mutex mu_;
  std::vector<PeerLoad> peers_;
  double stale_after_;
  uint64_t updates_ = 0;
};

}  // namespace sbroker::fed
