#include "fed/peer_channel.h"

#include <utility>
#include <vector>

#include "util/log.h"

namespace sbroker::fed {
namespace {

/// Correlation ids live in their own high range: at the owner daemon the
/// peer-fetch id becomes the broker request id, which must not collide with
/// ids chosen by that daemon's direct clients (the broker keys its request
/// contexts by id). One process-wide counter keeps the ids unique across
/// every (shard, peer) channel in this member; the per-channel node salt
/// (bit 63 + the member index in bits 48..62) keeps them unique across
/// *members*, whose processes each run their own copy of this counter.
std::atomic<uint64_t> g_correlation{1};
constexpr uint64_t kCorrelationMask = (1ull << 48) - 1;

uint64_t correlation_salt(uint32_t self_node) {
  return (1ull << 63) | (static_cast<uint64_t>(self_node & 0x7fff) << 48);
}

}  // namespace

PeerChannel::PeerChannel(net::Reactor& reactor, uint16_t port,
                         double dial_backoff, uint32_t self_node)
    : reactor_(reactor),
      port_(port),
      dial_backoff_(dial_backoff),
      id_salt_(correlation_salt(self_node)) {}

PeerChannel::~PeerChannel() {
  destroying_ = true;
  for (auto& [id, pending] : pending_) {
    if (pending.timer != 0) reactor_.cancel_timer(pending.timer);
  }
  pending_.clear();
  if (conn_ && !conn_->closed()) conn_->abort();
}

bool PeerChannel::usable() const {
  if (conn_ && !conn_->closed()) return true;
  return reactor_.now() >= next_dial_at_;
}

bool PeerChannel::ensure_connected() {
  if (conn_ && !conn_->closed()) return true;
  if (reactor_.now() < next_dial_at_) return false;
  int fd;
  try {
    fd = net::connect_tcp(port_);
  } catch (const std::exception&) {
    next_dial_at_ = reactor_.now() + dial_backoff_;
    return false;
  }
  dials_.fetch_add(1, std::memory_order_relaxed);
  inbox_.clear();
  conn_ = net::TcpConn::adopt(reactor_, fd);
  conn_->start([this](std::string_view bytes) { on_bytes(bytes); },
               [this]() { on_close(); });
  connected_.store(true, std::memory_order_relaxed);
  return true;
}

bool PeerChannel::fetch(std::string_view query, uint8_t qos_level,
                        uint32_t deadline_ms, double timeout, FetchDone done) {
  if (!ensure_connected()) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t id =
      id_salt_ |
      (g_correlation.fetch_add(1, std::memory_order_relaxed) & kCorrelationMask);
  net::frame::Request freq;
  freq.request_id = id;
  freq.qos_level = qos_level;
  freq.deadline_ms = deadline_ms;
  freq.query = query;
  encode_scratch_.clear();
  net::frame::encode_peer_fetch(freq, encode_scratch_);

  Pending pending;
  pending.done = std::move(done);
  if (timeout > 0.0) {
    pending.timer = reactor_.add_timer(timeout, [this, id]() {
      auto it = pending_.find(id);
      if (it == pending_.end()) return;
      it->second.timer = 0;  // fired, nothing to cancel
      finish(id, false, http::Fidelity::kError, 0, "peer fetch timeout");
    });
  }
  pending_.emplace(id, std::move(pending));
  fetches_.fetch_add(1, std::memory_order_relaxed);
  conn_->send(encode_scratch_);
  return true;
}

bool PeerChannel::send_push(std::string_view key, std::string_view value) {
  if (!ensure_connected()) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  encode_scratch_.clear();
  net::frame::encode_push(key, value, encode_scratch_);
  pushes_.fetch_add(1, std::memory_order_relaxed);
  conn_->send(encode_scratch_);
  return true;
}

bool PeerChannel::send_gossip(const net::frame::Gossip& gossip) {
  if (!ensure_connected()) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  encode_scratch_.clear();
  net::frame::encode_gossip(gossip, encode_scratch_);
  gossips_.fetch_add(1, std::memory_order_relaxed);
  conn_->send(encode_scratch_);
  return true;
}

void PeerChannel::on_bytes(std::string_view bytes) {
  inbox_.append(bytes);
  size_t off = 0;
  while (off < inbox_.size()) {
    net::frame::Reply reply;
    size_t consumed = 0;
    auto result = net::frame::parse_peer_reply(
        std::string_view(inbox_).substr(off), reply, &consumed);
    if (result == net::frame::ParseResult::kNeedMore) break;
    if (result == net::frame::ParseResult::kError) {
      SBROKER_WARN("fed-channel") << "malformed peer reply; closing";
      conn_->abort();  // on_close fails everything pending
      return;
    }
    // A reply for an id we no longer hold timed out already; drop it.
    finish(reply.request_id, true, reply.fidelity, reply.flags,
           std::string(reply.payload));
    off += consumed;
  }
  if (off > 0) inbox_.erase(0, off);
}

void PeerChannel::finish(uint64_t id, bool ok, http::Fidelity fidelity,
                         uint8_t flags, std::string payload) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timer != 0) reactor_.cancel_timer(pending.timer);
  if (!ok) fetch_fails_.fetch_add(1, std::memory_order_relaxed);
  if (!destroying_) pending.done(ok, fidelity, flags, std::move(payload));
}

void PeerChannel::fail_pending(const char* reason) {
  // finish() mutates pending_; take the ids first.
  std::vector<uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, pending] : pending_) ids.push_back(id);
  for (uint64_t id : ids) {
    finish(id, false, http::Fidelity::kError, 0, reason);
  }
}

void PeerChannel::on_close() {
  connected_.store(false, std::memory_order_relaxed);
  conn_.reset();
  next_dial_at_ = reactor_.now() + dial_backoff_;
  if (!destroying_) fail_pending("peer channel closed");
}

}  // namespace sbroker::fed
