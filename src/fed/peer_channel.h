// Persistent broker-to-broker channel, one per (shard, peer).
//
// Speaks the binary frame protocol against the peer daemon's ordinary
// sniffed port: kPeerFetch out / kPeerReply in for miss forwarding, plus
// fire-and-forget kPeerPush (hot-key replication) and kGossip (load
// reports). Unlike the HTTP backend channel, replies are matched by
// correlation id, not arrival order, so one connection carries any number
// of concurrent exchanges with no head-of-line coupling between them.
//
// Failure model: a dead peer surfaces as a connection close (RST on a
// killed process) or an exchange timeout. Either way every pending fetch
// fails immediately — the daemon falls back to a local fetch within the
// request's remaining budget — and the channel enters a dial backoff so a
// down peer costs one failed connect per backoff window, not one per
// request. Fire-and-forget sends while down are dropped and counted.
//
// Threading: everything except the atomic status getters must run on the
// owning shard's reactor thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "http/wire.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "net/tcp.h"

namespace sbroker::fed {

class PeerChannel {
 public:
  /// (ok, fidelity, owner's reply flags, payload). Fires exactly once, on
  /// the owning reactor thread.
  using FetchDone =
      std::function<void(bool, http::Fidelity, uint8_t, std::string)>;

  /// `self_node` is the local member's federation index: it is folded into
  /// every correlation id so ids stay unique tier-wide even though each
  /// member process draws from its own counter (two forwarders colliding on
  /// an id at the same owner would collide in that broker's context table).
  PeerChannel(net::Reactor& reactor, uint16_t port, double dial_backoff,
              uint32_t self_node);
  ~PeerChannel();
  PeerChannel(const PeerChannel&) = delete;
  PeerChannel& operator=(const PeerChannel&) = delete;

  /// Sends a kPeerFetch and registers `done` under a fresh correlation id
  /// with a `timeout`-seconds exchange deadline. Returns false — without
  /// retaining `done` — when the channel is in dial backoff.
  bool fetch(std::string_view query, uint8_t qos_level, uint32_t deadline_ms,
             double timeout, FetchDone done);

  /// Fire-and-forget sends; false (dropped, counted) while in backoff.
  bool send_push(std::string_view key, std::string_view value);
  bool send_gossip(const net::frame::Gossip& gossip);

  /// Channel is not in dial backoff: connected, or allowed to (re)dial now.
  bool usable() const;

  // Status getters, safe from any thread (admin plane).
  bool connected() const { return connected_.load(std::memory_order_relaxed); }
  uint64_t fetches() const { return fetches_.load(std::memory_order_relaxed); }
  uint64_t fetch_fails() const { return fetch_fails_.load(std::memory_order_relaxed); }
  uint64_t pushes() const { return pushes_.load(std::memory_order_relaxed); }
  uint64_t gossips() const { return gossips_.load(std::memory_order_relaxed); }
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t dials() const { return dials_.load(std::memory_order_relaxed); }
  uint16_t port() const { return port_; }

 private:
  struct Pending {
    FetchDone done;
    net::Reactor::TimerId timer = 0;
  };

  /// Dials if not connected; false while in backoff or on immediate
  /// connect failure.
  bool ensure_connected();
  void on_bytes(std::string_view bytes);
  void on_close();
  void fail_pending(const char* reason);
  void finish(uint64_t id, bool ok, http::Fidelity fidelity, uint8_t flags,
              std::string payload);

  net::Reactor& reactor_;
  uint16_t port_;
  double dial_backoff_;
  uint64_t id_salt_;  ///< high bits of every correlation id (marker + node)
  double next_dial_at_ = 0.0;  ///< reactor time before which dialing is off
  std::shared_ptr<net::TcpConn> conn_;
  std::string inbox_;
  std::string encode_scratch_;
  std::unordered_map<uint64_t, Pending> pending_;
  bool destroying_ = false;

  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> fetches_{0};      ///< kPeerFetch frames sent
  std::atomic<uint64_t> fetch_fails_{0};  ///< exchanges failed (close/timeout)
  std::atomic<uint64_t> pushes_{0};       ///< kPeerPush frames sent
  std::atomic<uint64_t> gossips_{0};      ///< kGossip frames sent
  std::atomic<uint64_t> drops_{0};        ///< sends refused while down
  std::atomic<uint64_t> dials_{0};        ///< connection attempts
};

}  // namespace sbroker::fed
