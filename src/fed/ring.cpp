#include "fed/ring.h"

#include <algorithm>

namespace sbroker::fed {

uint64_t fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ring_hash(std::string_view bytes) { return mix64(fnv1a64(bytes)); }

Ring::Ring(std::vector<std::string> members, size_t vnodes)
    : member_names_(std::move(members)), vnodes_(vnodes == 0 ? 1 : vnodes) {
  points_.reserve(member_names_.size() * vnodes_);
  for (size_t m = 0; m < member_names_.size(); ++m) {
    for (size_t v = 0; v < vnodes_; ++v) {
      // Derive each virtual point from (identity, replica index); the "#"
      // separator keeps "a"+"11" and "a1"+"1" distinct.
      std::string label = member_names_[m];
      label += '#';
      label += std::to_string(v);
      points_.push_back(Point{ring_hash(label), m});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.member < b.member;
  });
}

size_t Ring::successor(uint64_t hash) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& p, uint64_t h) { return p.hash < h; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return static_cast<size_t>(it - points_.begin());
}

size_t Ring::owner(std::string_view key) const {
  if (points_.empty()) return kNobody;
  return points_[successor(ring_hash(key))].member;
}

double Ring::share(size_t member) const {
  if (points_.empty()) return 0.0;
  // A single member owns the whole circle; its arcs sum to 2^64, which the
  // u64 accumulator below would wrap to zero.
  if (member_names_.size() == 1) return member == 0 ? 1.0 : 0.0;
  // Each point owns the arc that *precedes* it (keys hash-map to their
  // clockwise successor). Sum those arcs per member, wrapping the first.
  uint64_t owned = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].member != member) continue;
    uint64_t prev = points_[i == 0 ? points_.size() - 1 : i - 1].hash;
    owned += points_[i].hash - prev;  // unsigned wrap handles the seam
  }
  return static_cast<double>(owned) / 18446744073709551615.0;
}

}  // namespace sbroker::fed
