// Consistent-hash ring for the broker federation.
//
// Each federation member is projected onto a 64-bit circle at `vnodes`
// points (virtual nodes); a key is owned by the member whose virtual node
// is the first at or clockwise after the key's hash. Virtual nodes give the
// two properties the tier needs: near-uniform key spread across members
// (the ring unit test pins a chi-square-style bound) and minimal remapping
// when a member joins or leaves (only the keys in the arcs touching the
// changed member's points move).
//
// Hashing is FNV-1a 64 run through a splitmix64 finalizer — fixed and
// explicit, because ownership must agree *across processes*: every node
// computes the owner of a key locally, and std::hash makes no cross-binary
// (or even cross-run) promises. FNV alone has weak high-bit avalanche on
// the near-identical short labels vnodes produce ("host:port#0",
// "host:port#1", ...), which visibly skews arc lengths; the finalizer
// restores uniformity while staying just as deterministic. The key is the
// canonical query — the same bytes core/flight.h keys single-flight on —
// so one tier-wide fetch per key falls out of ring ownership plus each
// owner's own single-flight table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::fed {

/// FNV-1a 64-bit. Stable across processes, platforms and builds.
uint64_t fnv1a64(std::string_view bytes);

/// splitmix64 finalizer: full-avalanche bijection on 64 bits. Applied on
/// top of fnv1a64 for ring placement so short, similar strings land
/// uniformly on the circle.
uint64_t mix64(uint64_t x);

/// The ring's placement hash: mix64(fnv1a64(bytes)).
uint64_t ring_hash(std::string_view bytes);

class Ring {
 public:
  /// Fallback ownership for an empty member list or an all-dead tier:
  /// owner() returns kNobody and callers serve locally.
  static constexpr size_t kNobody = static_cast<size_t>(-1);

  /// `members[i]` is member i's stable identity (the federation uses
  /// "127.0.0.1:<port>"; tests use arbitrary names). Identities — not
  /// indices — are hashed, so every process that agrees on the member list
  /// computes identical ownership regardless of local ordering concerns.
  explicit Ring(std::vector<std::string> members, size_t vnodes = 128);

  /// Index (into the constructor's member list) of the key's owner.
  size_t owner(std::string_view key) const;

  /// Owner with dead members skipped: walks clockwise from the key's point
  /// until a member for which `alive(index)` holds. This is how survivors
  /// reroute a dead peer's key range without rebuilding the ring — the arcs
  /// fall through to each key's successor, exactly as if the member left.
  template <typename AliveFn>
  size_t owner_if(std::string_view key, AliveFn&& alive) const {
    if (points_.empty()) return kNobody;
    size_t start = successor(ring_hash(key));
    for (size_t step = 0; step < points_.size(); ++step) {
      size_t member = points_[(start + step) % points_.size()].member;
      if (alive(member)) return member;
    }
    return kNobody;
  }

  /// Fraction of the hash circle owned by `member` (arc-length share). The
  /// admin plane exports this; with ~128 vnodes it sits near 1/members.
  double share(size_t member) const;

  size_t members() const { return member_names_.size(); }
  const std::string& member_name(size_t i) const { return member_names_.at(i); }
  size_t vnodes() const { return vnodes_; }

 private:
  struct Point {
    uint64_t hash;
    size_t member;
  };

  /// Index into points_ of the first point at or after `hash` (wrapping).
  size_t successor(uint64_t hash) const;

  std::vector<std::string> member_names_;
  std::vector<Point> points_;  ///< sorted by hash
  size_t vnodes_;
};

}  // namespace sbroker::fed
