#include "http/message.h"

#include "util/strings.h"

namespace sbroker::http {

const std::pair<std::string, std::string>* Headers::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (util::iequals(entry.first, name)) return &entry;
  }
  return nullptr;
}

void Headers::set(std::string name, std::string value) {
  for (auto& entry : entries_) {
    if (util::iequals(entry.first, name)) {
      entry.first = std::move(name);  // last-set spelling wins
      entry.second = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  const auto* entry = find(name);
  if (entry == nullptr) return std::nullopt;
  return entry->second;
}

std::optional<std::string_view> Headers::get_view(std::string_view name) const {
  const auto* entry = find(name);
  if (entry == nullptr) return std::nullopt;
  return std::string_view(entry->second);
}

void Headers::remove(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (util::iequals(it->first, name)) {
      entries_.erase(it);
      return;
    }
  }
}

namespace {

void serialize_headers(const Headers& headers, const std::string& body, std::string& out) {
  bool has_length = headers.has("Content-Length");
  for (const auto& [name, value] : headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!has_length && !body.empty()) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
}

}  // namespace

void Request::serialize_into(std::string& out) const {
  out += method;
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  serialize_headers(headers, body, out);
}

std::string Request::serialize() const {
  std::string out;
  serialize_into(out);
  return out;
}

int Request::qos_level(int def) const {
  auto v = headers.get_view(kQosHeader);
  if (!v) return def;
  auto parsed = util::parse_int(*v);
  return parsed ? static_cast<int>(*parsed) : def;
}

void Request::set_qos_level(int level) {
  headers.set(std::string(kQosHeader), std::to_string(level));
}

void Response::serialize_into(std::string& out) const {
  out += version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  serialize_headers(headers, body, out);
}

std::string Response::serialize() const {
  std::string out;
  serialize_into(out);
  return out;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 206:
      return "Partial Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

Response make_response(int status, std::string body) {
  Response r;
  r.status = status;
  r.reason = std::string(reason_phrase(status));
  r.body = std::move(body);
  return r;
}

}  // namespace sbroker::http
