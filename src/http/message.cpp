#include "http/message.h"

#include "util/strings.h"

namespace sbroker::http {

void Headers::set(std::string name, std::string value) {
  std::string key = util::to_lower(name);
  entries_[std::move(key)] = {std::move(name), std::move(value)};
}

std::optional<std::string> Headers::get(std::string_view name) const {
  auto it = entries_.find(util::to_lower(name));
  if (it == entries_.end()) return std::nullopt;
  return it->second.second;
}

void Headers::remove(std::string_view name) { entries_.erase(util::to_lower(name)); }

namespace {

void serialize_headers(const Headers& headers, const std::string& body, std::string& out) {
  bool has_length = headers.has("Content-Length");
  for (const auto& [key, entry] : headers.entries()) {
    out += entry.first;
    out += ": ";
    out += entry.second;
    out += "\r\n";
  }
  if (!has_length && !body.empty()) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
}

}  // namespace

std::string Request::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  serialize_headers(headers, body, out);
  return out;
}

int Request::qos_level(int def) const {
  auto v = headers.get(kQosHeader);
  if (!v) return def;
  auto parsed = util::parse_int(*v);
  return parsed ? static_cast<int>(*parsed) : def;
}

void Request::set_qos_level(int level) {
  headers.set(std::string(kQosHeader), std::to_string(level));
}

std::string Response::serialize() const {
  std::string out = version + " " + std::to_string(status) + " " + reason + "\r\n";
  serialize_headers(headers, body, out);
  return out;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 206:
      return "Partial Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

Response make_response(int status, std::string body) {
  Response r;
  r.status = status;
  r.reason = std::string(reason_phrase(status));
  r.body = std::move(body);
  return r;
}

}  // namespace sbroker::http
