// HTTP/1.x message model (subset).
//
// Enough of HTTP for the testbeds: request line + headers + Content-Length
// bodies. Header lookup is case-insensitive per RFC 9110. The model also
// carries the two extensions the paper relies on:
//   * the MGET batch method (Franks' MGET proposal, ref [11] in the paper)
//   * the X-QoS-Level request header carrying the client's QoS class
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::http {

/// Case-insensitive header collection (preserves last-set spelling of the
/// name). Stored as a flat (name, value) vector scanned with in-place
/// case-insensitive compares: real messages carry a handful of headers, so
/// a linear scan beats a map — and unlike the old lowered-key map it
/// allocates nothing per lookup and only the stored strings per set.
class Headers {
 public:
  void set(std::string name, std::string value);
  /// nullopt when absent (copies the value).
  std::optional<std::string> get(std::string_view name) const;
  /// Zero-copy lookup; the view is invalidated by any later mutation.
  std::optional<std::string_view> get_view(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }
  void remove(std::string_view name);
  size_t size() const { return entries_.size(); }

  /// Iteration in insertion order.
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  const std::pair<std::string, std::string>* find(std::string_view name) const;

  std::vector<std::pair<std::string, std::string>> entries_;
};

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  /// Serializes with a correct Content-Length (set iff body non-empty or a
  /// length header was already present).
  std::string serialize() const;
  /// Appends the serialized form to `out` (no temporary string; both the
  /// HTTP and binary-frame encoders share connection-buffer appends).
  void serialize_into(std::string& out) const;

  /// QoS class from X-QoS-Level; `def` when missing or malformed.
  int qos_level(int def = 1) const;
  void set_qos_level(int level);
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  std::string serialize() const;
  /// Appends the serialized form to `out`.
  void serialize_into(std::string& out) const;
};

/// Standard reason phrase for the handful of codes this repo uses.
std::string_view reason_phrase(int status);

/// Builds a response with status/body and the right reason phrase.
Response make_response(int status, std::string body);

/// Header name constants.
inline constexpr std::string_view kQosHeader = "X-QoS-Level";
inline constexpr std::string_view kFidelityHeader = "X-Fidelity";
inline constexpr std::string_view kMgetHeader = "X-MGET-URIs";
/// Answer-by budget in milliseconds; carried by gateway clients into the
/// broker and forwarded by backend channels downstream.
inline constexpr std::string_view kDeadlineHeader = "X-Deadline-Ms";

}  // namespace sbroker::http
