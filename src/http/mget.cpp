#include "http/mget.h"

#include "http/parser.h"
#include "util/strings.h"

namespace sbroker::http {

Request make_mget_request(const std::vector<std::string>& targets) {
  Request req;
  req.method = std::string(kMgetMethod);
  req.target = targets.empty() ? "/" : targets.front();
  std::string joined;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i) joined += ',';
    joined += targets[i];
  }
  req.headers.set(std::string(kMgetHeader), joined);
  return req;
}

std::optional<std::vector<std::string>> parse_mget_targets(const Request& req) {
  if (req.method != kMgetMethod) return std::nullopt;
  auto header = req.headers.get(kMgetHeader);
  if (!header || header->empty()) return std::nullopt;
  std::vector<std::string> out;
  for (auto piece : util::split_skip_empty(*header, ',')) {
    out.emplace_back(util::trim(piece));
  }
  if (out.empty()) return std::nullopt;
  return out;
}

Response make_mget_response(const std::vector<Response>& parts) {
  // Body: for each part, a line "<length>\n" followed by the serialized
  // part (status line + headers + body) of exactly that many bytes.
  std::string body;
  for (const Response& part : parts) {
    std::string serialized = part.serialize();
    body += std::to_string(serialized.size());
    body += '\n';
    body += serialized;
  }
  Response out = make_response(200, std::move(body));
  out.headers.set("X-MGET-Count", std::to_string(parts.size()));
  out.headers.set("Content-Type", "application/x-mget-parts");
  return out;
}

std::optional<std::vector<Response>> split_mget_response(const Response& resp) {
  auto count_header = resp.headers.get("X-MGET-Count");
  if (!count_header) return std::nullopt;
  auto count = util::parse_int(*count_header);
  if (!count || *count < 0) return std::nullopt;

  std::vector<Response> parts;
  std::string_view body = resp.body;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) return std::nullopt;
    auto length = util::parse_int(body.substr(pos, eol - pos));
    if (!length || *length < 0) return std::nullopt;
    size_t start = eol + 1;
    if (start + static_cast<size_t>(*length) > body.size()) return std::nullopt;
    auto part = parse_response(body.substr(start, static_cast<size_t>(*length)));
    if (!part) return std::nullopt;
    parts.push_back(std::move(*part));
    pos = start + static_cast<size_t>(*length);
  }
  if (parts.size() != static_cast<size_t>(*count)) return std::nullopt;
  return parts;
}

}  // namespace sbroker::http
