// MGET batch extension (paper ref [11], Franks' MGET proposal).
//
// The broker combines separate GETs for 1.html and 2.html into a single
// "MGET URI:1.html URI:2.html" exchange, and "the results are appropriately
// split and sent to the request initiators" (Section III). This module
// implements both directions:
//   * make_mget_request: fold N targets into one MGET request
//   * parse_mget_targets: recover the target list at the server
//   * make_mget_response: concatenate N responses into one multipart body
//   * split_mget_response: split the multipart body back into N responses
//
// The multipart framing uses explicit per-part byte lengths rather than a
// boundary string, so part bodies may contain anything.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "http/message.h"

namespace sbroker::http {

inline constexpr std::string_view kMgetMethod = "MGET";

/// Builds the batched request. Requires at least one target.
Request make_mget_request(const std::vector<std::string>& targets);

/// Extracts targets from an MGET request; nullopt when the request is not a
/// well-formed MGET (wrong method or missing/empty header).
std::optional<std::vector<std::string>> parse_mget_targets(const Request& req);

/// Concatenates per-target responses (in target order) into one 200 reply.
Response make_mget_response(const std::vector<Response>& parts);

/// Splits a batched reply; nullopt on framing errors or count mismatch with
/// the X-MGET-Count header.
std::optional<std::vector<Response>> split_mget_response(const Response& resp);

}  // namespace sbroker::http
