#include "http/parser.h"

#include "util/strings.h"

namespace sbroker::http {
namespace {

/// Parses the header block starting after the start line. Returns the body
/// offset (position just past the blank line) or npos when incomplete.
/// Sets `error` on malformed header lines.
size_t parse_header_block(std::string_view buffer, size_t start, Headers& headers,
                          std::string* error) {
  size_t pos = start;
  while (true) {
    size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string_view::npos) return std::string_view::npos;
    if (eol == pos) return eol + 2;  // blank line: end of headers
    std::string_view line = buffer.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      *error = "header line missing ':'";
      return std::string_view::npos;
    }
    std::string_view name = util::trim(line.substr(0, colon));
    std::string_view value = util::trim(line.substr(colon + 1));
    if (name.empty()) {
      *error = "empty header name";
      return std::string_view::npos;
    }
    headers.set(std::string(name), std::string(value));
    pos = eol + 2;
  }
}

/// Returns body length from Content-Length (0 when absent); -1 on a
/// malformed value.
int64_t body_length(const Headers& headers) {
  auto v = headers.get_view("Content-Length");
  if (!v) return 0;
  auto parsed = util::parse_int(*v);
  if (!parsed || *parsed < 0) return -1;
  return *parsed;
}

}  // namespace

void RequestParser::feed(std::string_view bytes) { buffer_.append(bytes); }

ParseResult RequestParser::next(Request& out) {
  if (error_) return ParseResult::kError;
  size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) return ParseResult::kNeedMore;

  std::string_view start_line = std::string_view(buffer_).substr(0, line_end);
  auto parts = util::split_skip_empty(start_line, ' ');
  if (parts.size() != 3) {
    error_ = true;
    error_message_ = "malformed request line";
    return ParseResult::kError;
  }

  Request req;
  req.method = std::string(parts[0]);
  req.target = std::string(parts[1]);
  req.version = std::string(parts[2]);

  std::string header_error;
  size_t body_start =
      parse_header_block(buffer_, line_end + 2, req.headers, &header_error);
  if (body_start == std::string::npos) {
    if (!header_error.empty()) {
      error_ = true;
      error_message_ = header_error;
      return ParseResult::kError;
    }
    return ParseResult::kNeedMore;
  }

  int64_t length = body_length(req.headers);
  if (length < 0) {
    error_ = true;
    error_message_ = "bad Content-Length";
    return ParseResult::kError;
  }
  if (buffer_.size() < body_start + static_cast<size_t>(length)) {
    return ParseResult::kNeedMore;
  }
  req.body = buffer_.substr(body_start, static_cast<size_t>(length));
  buffer_.erase(0, body_start + static_cast<size_t>(length));
  out = std::move(req);
  return ParseResult::kMessage;
}

void ResponseParser::feed(std::string_view bytes) { buffer_.append(bytes); }

ParseResult ResponseParser::next(Response& out) {
  if (error_) return ParseResult::kError;
  size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) return ParseResult::kNeedMore;

  std::string_view start_line = std::string_view(buffer_).substr(0, line_end);
  // Status line: VERSION SP STATUS SP REASON (reason may contain spaces).
  size_t sp1 = start_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos) {
    error_ = true;
    error_message_ = "malformed status line";
    return ParseResult::kError;
  }
  Response resp;
  resp.version = std::string(start_line.substr(0, sp1));
  std::string_view status_text = sp2 == std::string_view::npos
                                     ? start_line.substr(sp1 + 1)
                                     : start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  auto status = util::parse_int(status_text);
  if (!status || *status < 100 || *status > 599) {
    error_ = true;
    error_message_ = "bad status code";
    return ParseResult::kError;
  }
  resp.status = static_cast<int>(*status);
  resp.reason = sp2 == std::string_view::npos ? "" : std::string(start_line.substr(sp2 + 1));

  std::string header_error;
  size_t body_start =
      parse_header_block(buffer_, line_end + 2, resp.headers, &header_error);
  if (body_start == std::string::npos) {
    if (!header_error.empty()) {
      error_ = true;
      error_message_ = header_error;
      return ParseResult::kError;
    }
    return ParseResult::kNeedMore;
  }

  int64_t length = body_length(resp.headers);
  if (length < 0) {
    error_ = true;
    error_message_ = "bad Content-Length";
    return ParseResult::kError;
  }
  if (buffer_.size() < body_start + static_cast<size_t>(length)) {
    return ParseResult::kNeedMore;
  }
  resp.body = buffer_.substr(body_start, static_cast<size_t>(length));
  buffer_.erase(0, body_start + static_cast<size_t>(length));
  out = std::move(resp);
  return ParseResult::kMessage;
}

std::optional<Request> parse_request(std::string_view text) {
  RequestParser parser;
  parser.feed(text);
  Request req;
  if (parser.next(req) != ParseResult::kMessage) return std::nullopt;
  return req;
}

std::optional<Response> parse_response(std::string_view text) {
  ResponseParser parser;
  parser.feed(text);
  Response resp;
  if (parser.next(resp) != ParseResult::kMessage) return std::nullopt;
  return resp;
}

}  // namespace sbroker::http
