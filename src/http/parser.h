// Incremental HTTP parser.
//
// Feed bytes as they arrive from a socket; complete messages pop out. Only
// Content-Length framing is supported (no chunked encoding) — every peer in
// this repo sends explicit lengths. Malformed input moves the parser into a
// sticky error state; the connection owner should then close.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace sbroker::http {

enum class ParseResult { kNeedMore, kMessage, kError };

/// Parses a stream of HTTP requests (server side).
class RequestParser {
 public:
  /// Appends bytes to the internal buffer.
  void feed(std::string_view bytes);

  /// Attempts to extract the next complete request.
  ParseResult next(Request& out);

  bool in_error() const { return error_; }
  const std::string& error_message() const { return error_message_; }

 private:
  std::string buffer_;
  bool error_ = false;
  std::string error_message_;
};

/// Parses a stream of HTTP responses (client side).
class ResponseParser {
 public:
  void feed(std::string_view bytes);
  ParseResult next(Response& out);

  bool in_error() const { return error_; }
  const std::string& error_message() const { return error_message_; }
  /// Bytes fed but not yet consumed by a complete message. Non-zero after
  /// draining next() means a response is partially received — a pipelined
  /// client uses this to tell "head exchange was mid-response" from "clean
  /// boundary" when the connection dies.
  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool error_ = false;
  std::string error_message_;
};

/// One-shot conveniences for tests and in-process use: parse a complete
/// message from `text`; nullopt on incomplete or malformed input.
std::optional<Request> parse_request(std::string_view text);
std::optional<Response> parse_response(std::string_view text);

}  // namespace sbroker::http
