#include "http/wire.h"

#include <cstring>

namespace sbroker::http {
namespace {

constexpr uint32_t kMagic = 0x4b524253;  // "SBRK" little-endian
constexpr uint8_t kVersion = 1;
constexpr uint8_t kKindRequest = 1;
constexpr uint8_t kKindReply = 2;
// Strings longer than this indicate a corrupt length field, not real data.
constexpr uint32_t kMaxStringLength = 64 * 1024 * 1024;

void put_u8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool u8(uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool u32(uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool str(std::string& v) {
    uint32_t len;
    if (!u32(len)) return false;
    if (len > kMaxStringLength || pos_ + len > bytes_.size()) return false;
    v.assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

bool read_preamble(Reader& r, uint8_t expected_kind) {
  uint32_t magic;
  uint8_t version, kind;
  if (!r.u32(magic) || magic != kMagic) return false;
  if (!r.u8(version) || version != kVersion) return false;
  if (!r.u8(kind) || kind != expected_kind) return false;
  return true;
}

}  // namespace

const char* fidelity_name(Fidelity f) {
  switch (f) {
    case Fidelity::kFull:
      return "full";
    case Fidelity::kCached:
      return "cached";
    case Fidelity::kBusy:
      return "busy";
    case Fidelity::kError:
      return "error";
    case Fidelity::kDegraded:
      return "degraded";
  }
  return "?";
}

std::string encode(const BrokerRequest& msg) {
  std::string out;
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kKindRequest);
  put_u64(out, msg.request_id);
  put_u8(out, msg.qos_level);
  put_u64(out, msg.txn_id);
  put_u8(out, msg.txn_step);
  put_u32(out, msg.deadline_ms);
  put_string(out, msg.service);
  put_string(out, msg.payload);
  return out;
}

std::string encode(const BrokerReply& msg) {
  std::string out;
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kKindReply);
  put_u64(out, msg.request_id);
  put_u8(out, static_cast<uint8_t>(msg.fidelity));
  put_string(out, msg.payload);
  return out;
}

std::optional<BrokerRequest> decode_request(std::string_view bytes, size_t* consumed) {
  Reader r(bytes);
  if (!read_preamble(r, kKindRequest)) return std::nullopt;
  BrokerRequest msg;
  if (!r.u64(msg.request_id) || !r.u8(msg.qos_level) || !r.u64(msg.txn_id) ||
      !r.u8(msg.txn_step) || !r.u32(msg.deadline_ms) || !r.str(msg.service) ||
      !r.str(msg.payload)) {
    return std::nullopt;
  }
  if (consumed) *consumed = r.pos();
  return msg;
}

std::optional<BrokerReply> decode_reply(std::string_view bytes, size_t* consumed) {
  Reader r(bytes);
  if (!read_preamble(r, kKindReply)) return std::nullopt;
  BrokerReply msg;
  uint8_t fidelity;
  if (!r.u64(msg.request_id) || !r.u8(fidelity) || !r.str(msg.payload)) {
    return std::nullopt;
  }
  if (fidelity > static_cast<uint8_t>(Fidelity::kDegraded)) return std::nullopt;
  msg.fidelity = static_cast<Fidelity>(fidelity);
  if (consumed) *consumed = r.pos();
  return msg;
}

}  // namespace sbroker::http
