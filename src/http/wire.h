// Broker wire protocol.
//
// Web application processes talk to service brokers "through lightweight
// UDP" (paper Section V-B-1) by exchanging small messages carrying the query
// and its QoS specification. This module defines that message pair and a
// compact length-prefixed binary codec usable over UDP datagrams or a TCP
// stream (each encoded message is self-delimiting).
//
// Layout (all integers little-endian):
//   magic  u32  'SBRK'
//   version u8  (1)
//   kind   u8   (1 = request, 2 = reply)
//   ... kind-specific fields, strings as u32 length + bytes
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sbroker::http {

/// What the broker did with a request — the "fidelity" of the reply.
/// The paper: "longer the processing time a request undergoes, higher the
/// fidelity it receives"; dropped requests get an immediate low-fidelity
/// message (a cached result when available, else a busy notice).
enum class Fidelity : uint8_t {
  kFull = 0,      ///< forwarded to the backend, fresh result
  kCached = 1,    ///< served from broker cache (possibly stale)
  kBusy = 2,      ///< admission-dropped; "system is busy" notice
  kError = 3,     ///< backend or protocol failure
  kDegraded = 4,  ///< fresh but fidelity-reduced (rewritten under load)
};

const char* fidelity_name(Fidelity f);

struct BrokerRequest {
  uint64_t request_id = 0;
  uint8_t qos_level = 1;      ///< 1..N, higher is more important
  uint64_t txn_id = 0;        ///< 0 = not part of a transaction
  uint8_t txn_step = 0;       ///< 1-based step within the transaction
  uint32_t deadline_ms = 0;   ///< answer-by budget from submit; 0 = none
  std::string service;        ///< broker/service name, e.g. "db" or "backend1"
  std::string payload;        ///< query text (SQL) or request target (URI)
};

struct BrokerReply {
  uint64_t request_id = 0;
  Fidelity fidelity = Fidelity::kFull;
  std::string payload;        ///< result text, cached copy, or notice
};

/// Self-delimiting binary encodings.
std::string encode(const BrokerRequest& msg);
std::string encode(const BrokerReply& msg);

/// Decodes one message from the front of `bytes`. On success returns the
/// message and sets `*consumed` to the bytes used; returns nullopt when
/// `bytes` is malformed or does not contain a full message of that kind.
std::optional<BrokerRequest> decode_request(std::string_view bytes,
                                            size_t* consumed = nullptr);
std::optional<BrokerReply> decode_reply(std::string_view bytes,
                                        size_t* consumed = nullptr);

}  // namespace sbroker::http
