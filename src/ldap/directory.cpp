#include "ldap/directory.h"

#include "util/strings.h"

namespace sbroker::ldap {

std::optional<std::string> Entry::attribute(const std::string& name) const {
  auto it = attributes.find(name);
  if (it == attributes.end()) return std::nullopt;
  return it->second;
}

bool Entry::has_attribute(const std::string& name) const {
  return attributes.count(name) > 0;
}

bool Filter::matches(const Entry& entry) const {
  auto [lo, hi] = entry.attributes.equal_range(attribute);
  switch (kind) {
    case Kind::kPresence:
      return lo != hi;
    case Kind::kEquality:
      for (auto it = lo; it != hi; ++it) {
        if (it->second == value) return true;
      }
      return false;
    case Kind::kPrefix:
      for (auto it = lo; it != hi; ++it) {
        if (util::starts_with(it->second, value)) return true;
      }
      return false;
  }
  return false;
}

std::optional<Filter> Filter::parse(std::string_view text) {
  text = util::trim(text);
  if (text.size() < 4 || text.front() != '(' || text.back() != ')') return std::nullopt;
  std::string_view body = text.substr(1, text.size() - 2);
  size_t eq = body.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  Filter filter;
  filter.attribute = std::string(util::trim(body.substr(0, eq)));
  if (filter.attribute.empty()) return std::nullopt;
  std::string_view value = util::trim(body.substr(eq + 1));
  if (value == "*") {
    filter.kind = Kind::kPresence;
  } else if (!value.empty() && value.back() == '*') {
    filter.kind = Kind::kPrefix;
    filter.value = std::string(value.substr(0, value.size() - 1));
  } else {
    filter.kind = Kind::kEquality;
    filter.value = std::string(value);
  }
  return filter;
}

std::string parent_dn(std::string_view dn) {
  size_t comma = dn.find(',');
  if (comma == std::string_view::npos) return "";
  return std::string(util::trim(dn.substr(comma + 1)));
}

size_t dn_depth(std::string_view dn) {
  if (util::trim(dn).empty()) return 0;
  return util::split(dn, ',').size();
}

bool dn_under(std::string_view descendant, std::string_view ancestor) {
  if (descendant == ancestor) return true;
  if (ancestor.empty()) return true;
  if (descendant.size() <= ancestor.size()) return false;
  // descendant must end with ",ancestor".
  size_t offset = descendant.size() - ancestor.size();
  return descendant.substr(offset) == ancestor && descendant[offset - 1] == ',';
}

bool Directory::add(Entry entry) {
  if (entries_.count(entry.dn)) return false;
  std::string parent = parent_dn(entry.dn);
  if (!parent.empty() && !entries_.count(parent)) return false;
  children_.emplace(parent, entry.dn);
  std::string dn = entry.dn;
  entries_.emplace(std::move(dn), std::move(entry));
  return true;
}

bool Directory::remove(const std::string& dn) {
  auto it = entries_.find(dn);
  if (it == entries_.end()) return false;
  if (children_.count(dn)) return false;  // not a leaf
  std::string parent = parent_dn(dn);
  auto [lo, hi] = children_.equal_range(parent);
  for (auto child = lo; child != hi; ++child) {
    if (child->second == dn) {
      children_.erase(child);
      break;
    }
  }
  entries_.erase(it);
  return true;
}

const Entry* Directory::find(const std::string& dn) const {
  auto it = entries_.find(dn);
  return it == entries_.end() ? nullptr : &it->second;
}

void Directory::collect_subtree(const std::string& dn,
                                std::vector<const Entry*>& out) const {
  const Entry* entry = find(dn);
  if (!entry) return;
  out.push_back(entry);
  auto [lo, hi] = children_.equal_range(dn);
  for (auto child = lo; child != hi; ++child) collect_subtree(child->second, out);
}

std::vector<const Entry*> Directory::search(const std::string& base, Scope scope,
                                            const Filter& filter,
                                            SearchStats* stats) const {
  std::vector<const Entry*> candidates;
  switch (scope) {
    case Scope::kBase: {
      const Entry* entry = find(base);
      if (entry) candidates.push_back(entry);
      break;
    }
    case Scope::kOneLevel: {
      auto [lo, hi] = children_.equal_range(base);
      for (auto child = lo; child != hi; ++child) {
        if (const Entry* entry = find(child->second)) candidates.push_back(entry);
      }
      break;
    }
    case Scope::kSubtree:
      collect_subtree(base, candidates);
      break;
  }

  std::vector<const Entry*> matched;
  for (const Entry* entry : candidates) {
    if (stats) ++stats->entries_examined;
    if (filter.matches(*entry)) {
      matched.push_back(entry);
      if (stats) ++stats->entries_matched;
    }
  }
  return matched;
}

}  // namespace sbroker::ldap
