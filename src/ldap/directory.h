// Mini LDAP-style directory service.
//
// The paper's Figure 1 shows front-end Web applications reaching database,
// mail AND directory (LDAP) servers; the broker framework is "per service
// based", so this substrate gives the directory brokers something real to
// front. The model follows LDAP's essentials without the ASN.1: entries are
// named by distinguished names ("cn=joe,ou=eng,o=acme"), live in a tree
// derived from DN suffixes, carry multi-valued attributes, and are found by
// (base, scope, filter) searches.
//
// Filters support the common cases: equality "(cn=joe)", presence
// "(mail=*)", and prefix match "(cn=jo*)".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::ldap {

/// One directory entry: a DN plus multi-valued attributes.
struct Entry {
  std::string dn;
  std::multimap<std::string, std::string> attributes;

  /// First value of `name`, or nullopt.
  std::optional<std::string> attribute(const std::string& name) const;
  bool has_attribute(const std::string& name) const;
};

enum class Scope {
  kBase,     ///< only the base entry itself
  kOneLevel, ///< direct children of the base
  kSubtree,  ///< the base and every descendant
};

/// Parsed search filter.
struct Filter {
  enum class Kind { kEquality, kPresence, kPrefix };
  Kind kind = Kind::kPresence;
  std::string attribute;
  std::string value;  ///< empty for presence; prefix text for kPrefix

  bool matches(const Entry& entry) const;

  /// Parses "(attr=value)", "(attr=*)", "(attr=pre*)". Returns nullopt on
  /// malformed input (missing parens, empty attribute, ...).
  static std::optional<Filter> parse(std::string_view text);
};

/// DN helpers: DNs are comma-separated RDNs, leaf first.
/// parent("cn=a,o=b") == "o=b"; parent("o=b") == "".
std::string parent_dn(std::string_view dn);
/// Depth in RDN components; "" has depth 0.
size_t dn_depth(std::string_view dn);
/// True when `descendant` is below (or equal to) `ancestor`.
bool dn_under(std::string_view descendant, std::string_view ancestor);

class Directory {
 public:
  /// Inserts an entry. Returns false (and changes nothing) when the DN
  /// already exists or its parent is absent (roots — depth 1 — excepted).
  bool add(Entry entry);

  /// Removes a leaf entry; false when absent or still has children.
  bool remove(const std::string& dn);

  const Entry* find(const std::string& dn) const;
  size_t size() const { return entries_.size(); }

  struct SearchStats {
    uint64_t entries_examined = 0;
    uint64_t entries_matched = 0;
  };

  /// (base, scope, filter) search. An unknown base yields an empty result.
  /// `stats` (optional) receives work accounting for the cost model.
  std::vector<const Entry*> search(const std::string& base, Scope scope,
                                   const Filter& filter,
                                   SearchStats* stats = nullptr) const;

 private:
  void collect_subtree(const std::string& dn, std::vector<const Entry*>& out) const;

  std::map<std::string, Entry> entries_;
  std::multimap<std::string, std::string> children_;  // parent dn -> child dn
};

}  // namespace sbroker::ldap
