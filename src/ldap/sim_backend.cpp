#include "ldap/sim_backend.h"

#include "core/cluster.h"
#include "util/strings.h"
#include "util/rng.h"

namespace sbroker::ldap {

std::optional<SearchCommand> parse_search(const std::string& payload,
                                          std::string* error) {
  auto fail = [&](const char* what) {
    if (error) *error = what;
    return std::nullopt;
  };

  auto tokens = util::split_skip_empty(payload, ' ');
  if (tokens.empty() || !util::iequals(tokens[0], "SEARCH")) {
    return fail("expected SEARCH command");
  }
  SearchCommand cmd;
  bool have_base = false, have_filter = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    std::string_view token = tokens[i];
    if (util::starts_with(token, "base=")) {
      cmd.base = std::string(token.substr(5));
      have_base = true;
    } else if (util::starts_with(token, "scope=")) {
      std::string_view scope = token.substr(6);
      if (util::iequals(scope, "base")) {
        cmd.scope = Scope::kBase;
      } else if (util::iequals(scope, "one")) {
        cmd.scope = Scope::kOneLevel;
      } else if (util::iequals(scope, "sub")) {
        cmd.scope = Scope::kSubtree;
      } else {
        return fail("bad scope (expected base|one|sub)");
      }
    } else if (util::starts_with(token, "filter=")) {
      auto filter = Filter::parse(token.substr(7));
      if (!filter) return fail("malformed filter");
      cmd.filter = *filter;
      have_filter = true;
    } else {
      return fail("unknown SEARCH argument");
    }
  }
  if (!have_base) return fail("missing base=");
  if (!have_filter) return fail("missing filter=");
  return cmd;
}

std::string render_entries(const std::vector<const Entry*>& entries) {
  std::string out;
  for (const Entry* entry : entries) {
    out += entry->dn;
    out += '\t';
    bool first = true;
    for (const auto& [name, value] : entry->attributes) {
      if (!first) out += ';';
      out += name + "=" + value;
      first = false;
    }
    out += '\n';
  }
  return out;
}

SimLdapBackend::SimLdapBackend(sim::Simulation& sim, Directory& dir,
                               LdapBackendConfig config)
    : sim_(sim),
      dir_(dir),
      config_(config),
      station_(sim, config.capacity, config.queue_limit),
      request_link_(sim, config.link,
                    util::Rng(util::derive_seed(config.link_seed, 0))),
      response_link_(sim, config.link,
                     util::Rng(util::derive_seed(config.link_seed, 1))) {}

void SimLdapBackend::invoke(const Call& call, Completion done) {
  ++calls_;
  double setup = call.needs_connection_setup ? config_.connection_setup : 0.0;
  std::string payload = call.payload;

  if (request_link_.is_down()) {
    ++failures_;
    sim_.after(0.0,
               [this, done = std::move(done)]() { done(sim_.now(), false, "link down"); });
    return;
  }

  request_link_.deliver([this, payload = std::move(payload), setup,
                         done = std::move(done)]() mutable {
    // Execute every record of the (possibly batched) payload.
    bool ok = true;
    std::string reply;
    uint64_t examined = 0;
    uint64_t records = 0;
    bool first = true;
    for (const std::string& record : core::ClusterEngine::split_records(payload)) {
      ++records;
      std::string error;
      auto cmd = parse_search(record, &error);
      std::string chunk;
      if (!cmd) {
        ok = false;
        chunk = "search error: " + error;
      } else {
        Directory::SearchStats stats;
        chunk = render_entries(dir_.search(cmd->base, cmd->scope, cmd->filter, &stats));
        examined += stats.entries_examined;
      }
      if (!first) reply += core::kRecordSep;
      reply += chunk;
      first = false;
    }

    double service_time = setup + config_.fixed_seconds * static_cast<double>(records) +
                          config_.per_entry_examined * static_cast<double>(examined);

    auto respond = [this](bool good, std::string body, Completion cb) {
      if (response_link_.is_down()) {
        sim_.after(0.0, [this, cb = std::move(cb)]() {
          cb(sim_.now(), false, "response link down");
        });
        return;
      }
      response_link_.deliver([this, good, body = std::move(body),
                              cb = std::move(cb)]() mutable {
        cb(sim_.now(), good, body);
      });
    };

    if (!station_.would_accept()) {
      ++failures_;
      respond(false, "backend queue full", std::move(done));
      return;
    }
    if (!ok) ++failures_;
    station_.submit(service_time, [respond, ok, reply = std::move(reply),
                                   done = std::move(done)]() mutable {
      respond(ok, std::move(reply), std::move(done));
    });
  });
}

}  // namespace sbroker::ldap
