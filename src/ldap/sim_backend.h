// Simulated LDAP backend server.
//
// Speaks a textual search protocol over the broker's payload channel:
//
//   SEARCH base=<dn> scope=<base|one|sub> filter=(attr=value)
//
// and answers one line per matched entry: "<dn>\t<attr>=<value>;...".
// Record-separated batch payloads execute each search and join the results
// with the cluster record separator, like the other Sim backends. Service
// time is fixed overhead + per-entry-examined cost (directory servers are
// traversal-bound).
#pragma once

#include <memory>
#include <string>

#include "core/backend.h"
#include "ldap/directory.h"
#include "sim/link.h"
#include "sim/simulation.h"
#include "sim/station.h"

namespace sbroker::ldap {

struct LdapBackendConfig {
  size_t capacity = 8;
  size_t queue_limit = SIZE_MAX;
  sim::Link::Params link = sim::lan_profile();
  double connection_setup = 0.008;    ///< bind handshake when not pooled
  double fixed_seconds = 0.002;       ///< decode + dispatch per request
  double per_entry_examined = 0.00002;
  uint64_t link_seed = 41;
};

/// Parses the SEARCH command; nullopt (with a diagnostic in `error`) on
/// malformed input. Exposed for tests.
struct SearchCommand {
  std::string base;
  Scope scope = Scope::kSubtree;
  Filter filter;
};
std::optional<SearchCommand> parse_search(const std::string& payload,
                                          std::string* error = nullptr);

/// Renders matched entries one per line: dn\tattr=value;attr=value...
std::string render_entries(const std::vector<const Entry*>& entries);

class SimLdapBackend : public core::Backend {
 public:
  /// `dir` must outlive the backend.
  SimLdapBackend(sim::Simulation& sim, Directory& dir, LdapBackendConfig config);

  void invoke(const Call& call, Completion done) override;

  uint64_t calls() const { return calls_; }
  uint64_t failures() const { return failures_; }
  sim::Link& request_link() { return request_link_; }
  sim::Link& response_link() { return response_link_; }

 private:
  sim::Simulation& sim_;
  Directory& dir_;
  LdapBackendConfig config_;
  sim::BoundedStation station_;
  sim::Link request_link_;
  sim::Link response_link_;
  uint64_t calls_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace sbroker::ldap
