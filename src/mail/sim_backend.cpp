#include "mail/sim_backend.h"

#include "core/cluster.h"
#include "util/strings.h"
#include "util/rng.h"

namespace sbroker::mail {

std::pair<bool, std::string> execute_command(MailStore& store,
                                             const std::string& command) {
  auto fields = util::split(command, '|');
  const std::string_view op = fields.empty() ? std::string_view{} : fields[0];

  if (util::iequals(op, "SEND")) {
    if (fields.size() != 5) return {false, "SEND needs to|from|subject|body"};
    uint64_t id = store.deliver(std::string(fields[1]), std::string(fields[2]),
                                std::string(fields[3]), std::string(fields[4]));
    return {true, "sent " + std::to_string(id)};
  }
  if (util::iequals(op, "LIST")) {
    if (fields.size() != 2) return {false, "LIST needs user"};
    std::string out;
    for (const Header& h : store.list(std::string(fields[1]))) {
      out += std::to_string(h.id) + "\t" + h.from + "\t" + h.subject + "\n";
    }
    return {true, out};
  }
  if (util::iequals(op, "FETCH")) {
    if (fields.size() != 3) return {false, "FETCH needs user|id"};
    auto id = util::parse_int(fields[2]);
    if (!id || *id < 1) return {false, "bad message id"};
    const Message* msg = store.fetch(std::string(fields[1]), static_cast<uint64_t>(*id));
    if (!msg) return {false, "no such message"};
    return {true, msg->body};
  }
  if (util::iequals(op, "DELETE")) {
    if (fields.size() != 3) return {false, "DELETE needs user|id"};
    auto id = util::parse_int(fields[2]);
    if (!id || *id < 1) return {false, "bad message id"};
    if (!store.erase(std::string(fields[1]), static_cast<uint64_t>(*id))) {
      return {false, "no such message"};
    }
    return {true, "deleted"};
  }
  return {false, "unknown command"};
}

SimMailBackend::SimMailBackend(sim::Simulation& sim, MailStore& store,
                               MailBackendConfig config)
    : sim_(sim),
      store_(store),
      config_(config),
      station_(sim, config.capacity, config.queue_limit),
      request_link_(sim, config.link,
                    util::Rng(util::derive_seed(config.link_seed, 0))),
      response_link_(sim, config.link,
                     util::Rng(util::derive_seed(config.link_seed, 1))) {}

void SimMailBackend::invoke(const Call& call, Completion done) {
  ++calls_;
  double setup = call.needs_connection_setup ? config_.connection_setup : 0.0;
  std::string payload = call.payload;

  if (request_link_.is_down()) {
    ++failures_;
    sim_.after(0.0,
               [this, done = std::move(done)]() { done(sim_.now(), false, "link down"); });
    return;
  }

  request_link_.deliver([this, payload = std::move(payload), setup,
                         done = std::move(done)]() mutable {
    bool ok = true;
    std::string reply;
    uint64_t records = 0;
    uint64_t headers = 0;
    bool first = true;
    for (const std::string& record : core::ClusterEngine::split_records(payload)) {
      ++records;
      auto [record_ok, text] = execute_command(store_, record);
      if (!record_ok) ok = false;
      // LIST cost scales with headers rendered (one per line).
      for (char c : text) {
        if (c == '\n') ++headers;
      }
      if (!first) reply += core::kRecordSep;
      reply += text;
      first = false;
    }

    double service_time = setup + config_.fixed_seconds * static_cast<double>(records) +
                          config_.per_header_listed * static_cast<double>(headers);

    auto respond = [this](bool good, std::string body, Completion cb) {
      if (response_link_.is_down()) {
        sim_.after(0.0, [this, cb = std::move(cb)]() {
          cb(sim_.now(), false, "response link down");
        });
        return;
      }
      response_link_.deliver([this, good, body = std::move(body),
                              cb = std::move(cb)]() mutable {
        cb(sim_.now(), good, body);
      });
    };

    if (!station_.would_accept()) {
      ++failures_;
      respond(false, "backend queue full", std::move(done));
      return;
    }
    if (!ok) ++failures_;
    station_.submit(service_time, [respond, ok, reply = std::move(reply),
                                   done = std::move(done)]() mutable {
      respond(ok, std::move(reply), std::move(done));
    });
  });
}

}  // namespace sbroker::mail
