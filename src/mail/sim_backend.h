// Simulated mail backend server.
//
// Payload protocol (one command per record; fields are '|'-separated so
// subjects and bodies may contain spaces):
//
//   SEND|<to>|<from>|<subject>|<body>      -> "sent <id>"
//   LIST|<user>                            -> "<id>\t<from>\t<subject>" lines
//   FETCH|<user>|<id>                      -> the message body
//   DELETE|<user>|<id>                     -> "deleted"
//
// Unknown commands or missing messages fail the record; a failed record
// fails the whole call, matching the other Sim backends.
#pragma once

#include <string>

#include "core/backend.h"
#include "mail/store.h"
#include "sim/link.h"
#include "sim/simulation.h"
#include "sim/station.h"

namespace sbroker::mail {

struct MailBackendConfig {
  size_t capacity = 6;
  size_t queue_limit = SIZE_MAX;
  sim::Link::Params link = sim::lan_profile();
  double connection_setup = 0.012;  ///< SMTP/IMAP-ish handshake
  double fixed_seconds = 0.003;     ///< per command
  double per_header_listed = 0.00005;
  uint64_t link_seed = 51;
};

/// Executes one command against the store. Exposed for tests.
/// Returns {ok, reply text}.
std::pair<bool, std::string> execute_command(MailStore& store, const std::string& command);

class SimMailBackend : public core::Backend {
 public:
  /// `store` must outlive the backend.
  SimMailBackend(sim::Simulation& sim, MailStore& store, MailBackendConfig config);

  void invoke(const Call& call, Completion done) override;

  uint64_t calls() const { return calls_; }
  uint64_t failures() const { return failures_; }
  sim::Link& request_link() { return request_link_; }
  sim::Link& response_link() { return response_link_; }

 private:
  sim::Simulation& sim_;
  MailStore& store_;
  MailBackendConfig config_;
  sim::BoundedStation station_;
  sim::Link request_link_;
  sim::Link response_link_;
  uint64_t calls_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace sbroker::mail
