#include "mail/store.h"

namespace sbroker::mail {

uint64_t MailStore::deliver(std::string to, std::string from, std::string subject,
                            std::string body) {
  Mailbox& box = boxes_[to];
  uint64_t id = box.next_id++;
  Message msg;
  msg.id = id;
  msg.from = std::move(from);
  msg.to = std::move(to);
  msg.subject = std::move(subject);
  msg.body = std::move(body);
  box.messages.emplace(id, std::move(msg));
  ++delivered_;
  return id;
}

std::vector<Header> MailStore::list(const std::string& user) const {
  std::vector<Header> out;
  auto it = boxes_.find(user);
  if (it == boxes_.end()) return out;
  for (const auto& [id, msg] : it->second.messages) {
    out.push_back(Header{id, msg.from, msg.subject});
  }
  return out;
}

const Message* MailStore::fetch(const std::string& user, uint64_t id) {
  auto box = boxes_.find(user);
  if (box == boxes_.end()) return nullptr;
  auto msg = box->second.messages.find(id);
  if (msg == box->second.messages.end()) return nullptr;
  msg->second.seen = true;
  return &msg->second;
}

bool MailStore::erase(const std::string& user, uint64_t id) {
  auto box = boxes_.find(user);
  if (box == boxes_.end()) return false;
  return box->second.messages.erase(id) > 0;
}

size_t MailStore::mailbox_size(const std::string& user) const {
  auto it = boxes_.find(user);
  return it == boxes_.end() ? 0 : it->second.messages.size();
}

}  // namespace sbroker::mail
