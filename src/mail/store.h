// Mini mail store.
//
// The third backend service of the paper's Figure 1. Mailboxes are keyed by
// user; messages get per-mailbox sequence ids; the operations mirror what a
// webmail front end needs: deliver, list headers, fetch a body, delete.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sbroker::mail {

struct Message {
  uint64_t id = 0;
  std::string from;
  std::string to;
  std::string subject;
  std::string body;
  bool seen = false;
};

/// Header line used by LIST: "<id>\t<from>\t<subject>".
struct Header {
  uint64_t id = 0;
  std::string from;
  std::string subject;
};

class MailStore {
 public:
  /// Delivers into `to`'s mailbox (created on demand); returns the id.
  uint64_t deliver(std::string to, std::string from, std::string subject,
                   std::string body);

  /// Headers in ascending id order; empty for unknown users.
  std::vector<Header> list(const std::string& user) const;

  /// Fetches a message and marks it seen; nullptr when absent.
  const Message* fetch(const std::string& user, uint64_t id);

  /// Deletes one message; false when absent.
  bool erase(const std::string& user, uint64_t id);

  size_t mailbox_size(const std::string& user) const;
  uint64_t total_delivered() const { return delivered_; }

 private:
  struct Mailbox {
    uint64_t next_id = 1;
    std::map<uint64_t, Message> messages;
  };

  std::map<std::string, Mailbox> boxes_;
  uint64_t delivered_ = 0;
};

}  // namespace sbroker::mail
