#include "net/admin.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "http/message.h"
#include "util/json.h"

namespace sbroker::net {
namespace {

/// Cumulative upper bounds (seconds) of the Prometheus exposition ladder.
/// Coarser than the native log-linear buckets; count_le() projects onto it.
constexpr double kLeLadder[] = {0.0005, 0.001, 0.0025, 0.005, 0.01,
                                0.025,  0.05,  0.1,    0.25,  0.5,
                                1.0,    2.5,   5.0,    10.0};

void append_counter(std::string& out, const char* name, const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " counter\n";
}

void append_gauge(std::string& out, const char* name, const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " gauge\n";
}

void append_sample(std::string& out, const char* name,
                   const std::string& labels, double value) {
  std::ostringstream line;
  line << name;
  if (!labels.empty()) line << '{' << labels << '}';
  line << ' ' << value << '\n';
  out += line.str();
}

void append_sample(std::string& out, const char* name,
                   const std::string& labels, uint64_t value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

/// Writes {"count":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}.
void write_histogram_summary(util::JsonWriter& w,
                             const obs::LatencyHistogram& h) {
  w.begin_object()
      .field("count", h.count())
      .field("mean", h.mean_seconds())
      .field("p50", h.p50())
      .field("p95", h.p95())
      .field("p99", h.p99())
      .field("max", h.max_seconds())
      .field("overflow", h.overflow_count())
      .end_object();
}

/// Appends the sbroker_federation_* families (see render_prometheus).
void append_federation_prometheus(std::string& out,
                                  const FederationStatus& fed) {
  append_gauge(out, "sbroker_federation_node",
               "This node's id within the federation.");
  append_sample(out, "sbroker_federation_node", "",
                static_cast<uint64_t>(fed.node_id));
  append_gauge(out, "sbroker_federation_nodes", "Federation size.");
  append_sample(out, "sbroker_federation_nodes", "",
                static_cast<uint64_t>(fed.nodes));
  append_gauge(out, "sbroker_federation_ring_share",
               "Fraction of the key space this node owns on the ring.");
  append_sample(out, "sbroker_federation_ring_share", "", fed.ring_share);
  append_gauge(out, "sbroker_federation_remote_pressure",
               "Tier-wide load from gossip entering admission.");
  append_sample(out, "sbroker_federation_remote_pressure", "",
                fed.remote_pressure);

  struct Family {
    const char* name;
    const char* help;
    uint64_t value;
  };
  const Family kFamilies[] = {
      {"sbroker_federation_forwards_sent_total",
       "Cache misses forwarded to their ring owner.", fed.forwards_sent},
      {"sbroker_federation_forward_replies_total",
       "Owner answers relayed back to clients.", fed.forward_replies},
      {"sbroker_federation_forward_fails_total",
       "Forwards failed over to a local fetch.", fed.forward_fails},
      {"sbroker_federation_fetches_served_total",
       "Peer fetches this node answered as owner.", fed.fetches_served},
      {"sbroker_federation_pushes_sent_total",
       "Hot-key replication pushes sent (per peer).", fed.pushes_sent},
      {"sbroker_federation_pushes_received_total",
       "Hot-key replication pushes installed.", fed.pushes_received},
      {"sbroker_federation_gossip_sent_total",
       "Gossip frames sent (per peer).", fed.gossip_sent},
      {"sbroker_federation_gossip_received_total",
       "Gossip frames folded into the global view.", fed.gossip_received},
      {"sbroker_federation_gossip_rounds_total",
       "Gossip broadcast rounds completed.", fed.gossip_rounds},
  };
  for (const auto& fam : kFamilies) {
    append_counter(out, fam.name, fam.help);
    append_sample(out, fam.name, "", fam.value);
  }

  append_gauge(out, "sbroker_federation_peer_connected",
               "1 when any shard holds a live channel to the peer.");
  append_gauge(out, "sbroker_federation_peer_fresh",
               "1 when the peer gossiped within the staleness window.");
  append_gauge(out, "sbroker_federation_peer_outstanding",
               "Peer's last gossiped outstanding-request count.");
  append_counter(out, "sbroker_federation_peer_fetches_total",
                 "Peer fetches sent to the peer.");
  append_counter(out, "sbroker_federation_peer_fetch_fails_total",
                 "Peer exchanges failed (close or timeout).");
  append_counter(out, "sbroker_federation_peer_drops_total",
                 "Sends refused while the peer's channel was down.");
  append_counter(out, "sbroker_federation_peer_dials_total",
                 "Connection attempts to the peer.");
  for (const auto& p : fed.peers) {
    if (p.self) continue;
    std::string labels = "peer=\"" + std::to_string(p.node) + "\"";
    append_sample(out, "sbroker_federation_peer_connected", labels,
                  static_cast<uint64_t>(p.connected ? 1 : 0));
    append_sample(out, "sbroker_federation_peer_fresh", labels,
                  static_cast<uint64_t>(p.fresh ? 1 : 0));
    append_sample(out, "sbroker_federation_peer_outstanding", labels,
                  static_cast<uint64_t>(p.outstanding));
    append_sample(out, "sbroker_federation_peer_fetches_total", labels,
                  p.fetches);
    append_sample(out, "sbroker_federation_peer_fetch_fails_total", labels,
                  p.fetch_fails);
    append_sample(out, "sbroker_federation_peer_drops_total", labels, p.drops);
    append_sample(out, "sbroker_federation_peer_dials_total", labels, p.dials);
  }
}

/// Writes the /statusz "federation" block.
void write_federation_statusz(util::JsonWriter& w,
                              const FederationStatus& fed) {
  w.key("federation").begin_object();
  w.field("node_id", static_cast<uint64_t>(fed.node_id))
      .field("nodes", static_cast<uint64_t>(fed.nodes))
      .field("vnodes", static_cast<uint64_t>(fed.vnodes))
      .field("ring_share", fed.ring_share)
      .field("remote_pressure", fed.remote_pressure)
      .field("forwards_sent", fed.forwards_sent)
      .field("forward_replies", fed.forward_replies)
      .field("forward_fails", fed.forward_fails)
      .field("fetches_served", fed.fetches_served)
      .field("pushes_sent", fed.pushes_sent)
      .field("pushes_received", fed.pushes_received)
      .field("gossip_sent", fed.gossip_sent)
      .field("gossip_received", fed.gossip_received)
      .field("gossip_rounds", fed.gossip_rounds)
      .field("view_updates", fed.view_updates);
  w.key("peers").begin_array();
  for (const auto& p : fed.peers) {
    w.begin_object()
        .field("node", static_cast<uint64_t>(p.node))
        .field("identity", p.identity)
        .field("self", p.self);
    if (!p.self) {
      w.field("connected", p.connected)
          .field("fresh", p.fresh)
          .field("outstanding", static_cast<uint64_t>(p.outstanding))
          .field("threshold", p.threshold)
          .field("overloaded", p.overloaded)
          .field("fetches", p.fetches)
          .field("fetch_fails", p.fetch_fails)
          .field("pushes", p.pushes)
          .field("gossips", p.gossips)
          .field("drops", p.drops)
          .field("dials", p.dials);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_class_counters(util::JsonWriter& w,
                          const core::BrokerMetrics::ClassCounters& c) {
  w.field("issued", c.issued)
      .field("forwarded", c.forwarded)
      .field("dropped", c.dropped)
      .field("cache_hits", c.cache_hits)
      .field("completed", c.completed)
      .field("errors", c.errors)
      .field("deadline_misses", c.deadline_misses)
      .field("lifo_sheds", c.lifo_sheds)
      .field("retries", c.retries)
      .field("drop_ratio", c.drop_ratio());
}

}  // namespace

ShardStatus snapshot_shard(const core::ServiceBroker& broker, size_t shard) {
  ShardStatus s;
  s.shard = shard;
  s.metrics = broker.metrics();
  s.metrics.transport.merge(broker.channel_stats());
  s.obs = broker.observer();
  s.outstanding = broker.outstanding();
  s.load_state = broker.load_state();
  s.trace_recorded = broker.observer().recorder().recorded();
  s.trace_dropped = broker.observer().recorder().dropped();
  const core::OverloadController& overload = broker.overload_control();
  s.overload_policy = core::overload_policy_name(overload.policy());
  s.admission_threshold = overload.threshold();
  s.overload_mode = overload.overloaded();
  s.lifo_active = overload.lifo_active();
  const core::LoadBalancer& lb = broker.balancer();
  s.policy = core::balance_policy_name(lb.policy());
  s.replicas.reserve(lb.backend_count());
  for (size_t i = 0; i < lb.backend_count(); ++i) {
    s.replicas.push_back(ReplicaStatus{i, lb.outstanding(i), lb.picks(i),
                                       lb.ejected(i),
                                       lb.last_ewma_seconds(i) * 1e3});
  }
  return s;
}

std::string render_prometheus(const std::vector<ShardStatus>& shards,
                              const FederationStatus* federation) {
  // Fold counters/histograms across shards first; per-shard gauges follow.
  int num_levels = 1;
  for (const auto& s : shards) {
    num_levels = std::max(num_levels, s.metrics.num_levels());
  }
  core::BrokerMetrics metrics(num_levels);
  obs::BrokerObserver observer(obs::ObsConfig{true, false, 0}, num_levels);
  size_t outstanding = 0;
  for (const auto& s : shards) {
    metrics.merge(s.metrics);
    observer.merge(s.obs);
    outstanding += s.outstanding;
  }

  std::string out;
  struct CounterFamily {
    const char* name;
    const char* help;
    uint64_t core::BrokerMetrics::ClassCounters::* field;
  };
  static const CounterFamily kFamilies[] = {
      {"sbroker_requests_total", "Requests submitted, by QoS class.",
       &core::BrokerMetrics::ClassCounters::issued},
      {"sbroker_forwarded_total", "Requests forwarded to a backend.",
       &core::BrokerMetrics::ClassCounters::forwarded},
      {"sbroker_dropped_total", "Requests shed (admission, saturation, deadline).",
       &core::BrokerMetrics::ClassCounters::dropped},
      {"sbroker_cache_hits_total", "Requests served from the result cache.",
       &core::BrokerMetrics::ClassCounters::cache_hits},
      {"sbroker_completed_total", "Replies delivered, any fidelity.",
       &core::BrokerMetrics::ClassCounters::completed},
      {"sbroker_errors_total", "Backend failures surfaced to clients.",
       &core::BrokerMetrics::ClassCounters::errors},
      {"sbroker_deadline_misses_total", "Deadline-expired sheds.",
       &core::BrokerMetrics::ClassCounters::deadline_misses},
      {"sbroker_lifo_sheds_total",
       "Deadline sheds taken while the class queue ran LIFO.",
       &core::BrokerMetrics::ClassCounters::lifo_sheds},
      {"sbroker_retries_total", "Broker-level re-dispatches.",
       &core::BrokerMetrics::ClassCounters::retries},
  };
  for (const auto& fam : kFamilies) {
    append_counter(out, fam.name, fam.help);
    for (int level = 1; level <= num_levels; ++level) {
      append_sample(out, fam.name, "class=\"" + std::to_string(level) + "\"",
                    metrics.at(level).*fam.field);
    }
  }

  append_gauge(out, "sbroker_outstanding",
               "Requests admitted and not yet answered.");
  append_sample(out, "sbroker_outstanding", "", static_cast<uint64_t>(outstanding));
  append_gauge(out, "sbroker_shards", "Broker reactor shards.");
  append_sample(out, "sbroker_shards", "",
                static_cast<uint64_t>(shards.size()));

  append_counter(out, "sbroker_transport_connections_opened_total",
                 "Physical backend connection setups.");
  append_sample(out, "sbroker_transport_connections_opened_total", "",
                metrics.transport.connections_opened);
  append_counter(out, "sbroker_transport_timeouts_total",
                 "Backend exchanges failed on the transport deadline.");
  append_sample(out, "sbroker_transport_timeouts_total", "",
                metrics.transport.timeouts);
  append_counter(out, "sbroker_lifecycle_cancellations_total",
                 "In-flight exchanges abandoned at deadline expiry.");
  append_sample(out, "sbroker_lifecycle_cancellations_total", "",
                metrics.lifecycle.cancellations);
  append_counter(out, "sbroker_lifecycle_ejections_total",
                 "Replica ejections.");
  append_sample(out, "sbroker_lifecycle_ejections_total", "",
                metrics.lifecycle.ejections);
  append_counter(out, "sbroker_coalesced_waiters_total",
                 "Misses attached to an in-flight identical fetch.");
  append_sample(out, "sbroker_coalesced_waiters_total", "",
                metrics.flight.coalesced_waiters);
  append_counter(out, "sbroker_swr_hits_total",
                 "Stale results served within the revalidation grace window.");
  append_sample(out, "sbroker_swr_hits_total", "", metrics.flight.swr_hits);
  append_counter(out, "sbroker_refreshes_total",
                 "Background revalidation fetches issued.");
  append_sample(out, "sbroker_refreshes_total", "", metrics.flight.refreshes);
  append_counter(out, "sbroker_negative_hits_total",
                 "Errors answered from the negative cache.");
  append_sample(out, "sbroker_negative_hits_total", "",
                metrics.flight.negative_hits);
  append_counter(out, "sbroker_flight_promotions_total",
                 "Waiters promoted to fetch leader after a dead fetch.");
  append_sample(out, "sbroker_flight_promotions_total", "",
                metrics.flight.promotions);
  append_counter(out, "sbroker_overload_evals_total",
                 "Overload-feedback intervals that carried enough samples.");
  append_sample(out, "sbroker_overload_evals_total", "",
                metrics.overload.evals);
  append_counter(out, "sbroker_overload_increases_total",
                 "Additive admission-threshold raises.");
  append_sample(out, "sbroker_overload_increases_total", "",
                metrics.overload.increases);
  append_counter(out, "sbroker_overload_decreases_total",
                 "Multiplicative admission-threshold cuts.");
  append_sample(out, "sbroker_overload_decreases_total", "",
                metrics.overload.decreases);
  append_counter(out, "sbroker_overload_enters_total",
                 "Overload-mode entries (hysteresis applied).");
  append_sample(out, "sbroker_overload_enters_total", "",
                metrics.overload.enters);
  append_counter(out, "sbroker_overload_exits_total",
                 "Overload-mode exits (hysteresis applied).");
  append_sample(out, "sbroker_overload_exits_total", "",
                metrics.overload.exits);

  out +=
      "# HELP sbroker_latency_seconds Request latency by lifecycle stage and "
      "QoS class.\n# TYPE sbroker_latency_seconds histogram\n";
  for (size_t stage = 0; stage < obs::kNumStages; ++stage) {
    for (int level = 1; level <= num_levels; ++level) {
      const obs::LatencyHistogram& h =
          observer.histogram(level, static_cast<obs::Stage>(stage));
      std::string base = std::string("stage=\"") +
                         obs::stage_name(static_cast<obs::Stage>(stage)) +
                         "\",class=\"" + std::to_string(level) + "\"";
      for (double le : kLeLadder) {
        std::ostringstream labels;
        labels << base << ",le=\"" << le << "\"";
        append_sample(out, "sbroker_latency_seconds_bucket", labels.str(),
                      h.count_le(le));
      }
      append_sample(out, "sbroker_latency_seconds_bucket",
                    base + ",le=\"+Inf\"", h.count());
      append_sample(out, "sbroker_latency_seconds_sum", base,
                    h.sum_seconds());
      append_sample(out, "sbroker_latency_seconds_count", base, h.count());
    }
  }

  append_gauge(out, "sbroker_admission_threshold",
               "Live effective admission threshold per shard.");
  append_gauge(out, "sbroker_overload_mode",
               "1 while the shard's controller declares overload "
               "(2 when the LIFO queue discipline is also active).");
  append_gauge(out, "sbroker_shard_load_state",
               "Hot-spot classification per shard (0 normal, 1 warm, 2 hot).");
  append_counter(out, "sbroker_trace_events_total",
                 "Flight-recorder events written per shard.");
  append_counter(out, "sbroker_trace_events_dropped_total",
                 "Flight-recorder events lost to ring wraparound.");
  append_gauge(out, "sbroker_replica_outstanding",
               "In-flight exchanges per backend replica.");
  append_gauge(out, "sbroker_replica_ejected",
               "1 when the balancer has ejected the replica.");
  append_counter(out, "sbroker_replica_picks_total",
                 "Requests the balancer has routed to the replica.");
  append_gauge(out, "sbroker_replica_ewma_seconds",
               "Peak-decaying response-time EWMA per replica as of its last "
               "observation (0 = no sample).");
  for (const auto& s : shards) {
    std::string shard_label = "shard=\"" + std::to_string(s.shard) + "\"";
    append_sample(out, "sbroker_admission_threshold", shard_label,
                  s.admission_threshold);
    append_sample(out, "sbroker_overload_mode", shard_label,
                  static_cast<uint64_t>(s.lifo_active ? 2
                                        : s.overload_mode ? 1
                                                          : 0));
    append_sample(out, "sbroker_shard_load_state", shard_label,
                  static_cast<uint64_t>(s.load_state));
    append_sample(out, "sbroker_trace_events_total", shard_label,
                  s.trace_recorded);
    append_sample(out, "sbroker_trace_events_dropped_total", shard_label,
                  s.trace_dropped);
    for (const auto& r : s.replicas) {
      std::string labels =
          shard_label + ",replica=\"" + std::to_string(r.index) + "\"";
      append_sample(out, "sbroker_replica_outstanding", labels,
                    static_cast<uint64_t>(r.outstanding));
      append_sample(out, "sbroker_replica_ejected", labels,
                    static_cast<uint64_t>(r.ejected ? 1 : 0));
      append_sample(out, "sbroker_replica_picks_total", labels, r.picks);
      append_sample(out, "sbroker_replica_ewma_seconds", labels,
                    r.ewma_ms * 1e-3);
    }
  }
  if (federation != nullptr) append_federation_prometheus(out, *federation);
  return out;
}

std::string render_statusz(const std::vector<ShardStatus>& shards,
                           const FederationStatus* federation) {
  int num_levels = 1;
  for (const auto& s : shards) {
    num_levels = std::max(num_levels, s.metrics.num_levels());
  }
  core::BrokerMetrics metrics(num_levels);
  obs::BrokerObserver observer(obs::ObsConfig{true, false, 0}, num_levels);
  size_t outstanding = 0;
  for (const auto& s : shards) {
    metrics.merge(s.metrics);
    observer.merge(s.obs);
    outstanding += s.outstanding;
  }

  util::JsonWriter w;
  w.begin_object();
  w.field("shards", static_cast<uint64_t>(shards.size()));
  w.field("outstanding", static_cast<uint64_t>(outstanding));

  w.key("classes").begin_array();
  for (int level = 1; level <= num_levels; ++level) {
    w.begin_object().field("class", level);
    write_class_counters(w, metrics.at(level));
    w.key("latency").begin_object();
    for (size_t stage = 0; stage < obs::kNumStages; ++stage) {
      w.key(obs::stage_name(static_cast<obs::Stage>(stage)));
      write_histogram_summary(
          w, observer.histogram(level, static_cast<obs::Stage>(stage)));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("stages").begin_object();
  for (size_t stage = 0; stage < obs::kNumStages; ++stage) {
    w.key(obs::stage_name(static_cast<obs::Stage>(stage)));
    write_histogram_summary(
        w, observer.merged_histogram(static_cast<obs::Stage>(stage)));
  }
  w.end_object();

  w.key("transport")
      .begin_object()
      .field("calls", metrics.transport.calls)
      .field("connections_opened", metrics.transport.connections_opened)
      .field("flushes", metrics.transport.flushes)
      .field("requests_written", metrics.transport.requests_written)
      .field("rejections", metrics.transport.rejections)
      .field("retries", metrics.transport.retries)
      .field("timeouts", metrics.transport.timeouts)
      .field("cancels", metrics.transport.cancels)
      .field("peak_in_flight", metrics.transport.peak_in_flight)
      .end_object();
  w.key("lifecycle")
      .begin_object()
      .field("cancellations", metrics.lifecycle.cancellations)
      .field("late_completions", metrics.lifecycle.late_completions)
      .field("ejections", metrics.lifecycle.ejections)
      .field("recoveries", metrics.lifecycle.recoveries)
      .field("probes", metrics.lifecycle.probes)
      .end_object();
  w.key("flight")
      .begin_object()
      .field("coalesced_waiters", metrics.flight.coalesced_waiters)
      .field("swr_hits", metrics.flight.swr_hits)
      .field("refreshes", metrics.flight.refreshes)
      .field("negative_hits", metrics.flight.negative_hits)
      .field("promotions", metrics.flight.promotions)
      .end_object();
  w.key("overload")
      .begin_object()
      .field("evals", metrics.overload.evals)
      .field("increases", metrics.overload.increases)
      .field("decreases", metrics.overload.decreases)
      .field("enters", metrics.overload.enters)
      .field("exits", metrics.overload.exits)
      .end_object();

  w.key("per_shard").begin_array();
  for (const auto& s : shards) {
    w.begin_object()
        .field("shard", static_cast<uint64_t>(s.shard))
        .field("policy", s.policy)
        .field("outstanding", static_cast<uint64_t>(s.outstanding))
        .field("load_state", core::load_state_name(s.load_state))
        .field("trace_recorded", s.trace_recorded)
        .field("trace_dropped", s.trace_dropped)
        .field("overload_policy", s.overload_policy)
        .field("admission_threshold", s.admission_threshold)
        .field("overload_mode", s.overload_mode)
        .field("lifo_active", s.lifo_active);
    w.key("replicas").begin_array();
    for (const auto& r : s.replicas) {
      w.begin_object()
          .field("replica", static_cast<uint64_t>(r.index))
          .field("outstanding", static_cast<uint64_t>(r.outstanding))
          .field("picks", r.picks)
          .field("ejected", r.ejected)
          .field("ewma_ms", r.ewma_ms)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (federation != nullptr) write_federation_statusz(w, *federation);
  w.end_object();
  return w.str();
}

std::string render_tracez(const std::vector<obs::TraceEvent>& events) {
  util::JsonWriter w;
  w.begin_object();
  w.field("events_retained", static_cast<uint64_t>(events.size()));
  w.key("events").begin_array();
  for (const auto& e : events) {
    w.begin_object()
        .field("t", e.t)
        .field("request_id", e.request_id)
        .field("seq", e.seq)
        .field("event", obs::trace_event_name(e.kind))
        .field("class", static_cast<uint64_t>(e.level))
        .field("detail", static_cast<uint64_t>(e.detail))
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

AdminServer::AdminServer(uint16_t port, StatusFn status, TraceFn trace)
    : status_(std::move(status)), trace_(std::move(trace)) {
  http_ = std::make_unique<HttpServer>(
      reactor_, port, [](const http::Request&, HttpServer::Responder respond) {
        respond(http::make_response(404, "not found\n"));
      });
  port_ = http_->port();
  http_->route("/healthz",
               [](const http::Request&, HttpServer::Responder respond) {
                 respond(http::make_response(200, "ok\n"));
               });
  http_->route("/metrics",
               [this](const http::Request&, HttpServer::Responder respond) {
                 FederationFn fed = federation_source();
                 FederationStatus fed_status;
                 if (fed) fed_status = fed();
                 http::Response resp = http::make_response(
                     200, render_prometheus(status_(),
                                            fed ? &fed_status : nullptr));
                 resp.headers.set("Content-Type",
                                  "text/plain; version=0.0.4");
                 respond(std::move(resp));
               });
  http_->route("/statusz",
               [this](const http::Request&, HttpServer::Responder respond) {
                 FederationFn fed = federation_source();
                 FederationStatus fed_status;
                 if (fed) fed_status = fed();
                 http::Response resp = http::make_response(
                     200, render_statusz(status_(),
                                         fed ? &fed_status : nullptr));
                 resp.headers.set("Content-Type", "application/json");
                 respond(std::move(resp));
               });
  http_->route("/tracez",
               [this](const http::Request&, HttpServer::Responder respond) {
                 http::Response resp =
                     http::make_response(200, render_tracez(trace_()));
                 resp.headers.set("Content-Type", "application/json");
                 respond(std::move(resp));
               });
  thread_ = std::thread([this]() { reactor_.run(); });
}

AdminServer::~AdminServer() {
  reactor_.stop();
  if (thread_.joinable()) thread_.join();
}

void AdminServer::set_federation(FederationFn federation) {
  std::lock_guard<std::mutex> lock(federation_mu_);
  federation_ = std::move(federation);
}

AdminServer::FederationFn AdminServer::federation_source() {
  std::lock_guard<std::mutex> lock(federation_mu_);
  return federation_;
}

}  // namespace sbroker::net
