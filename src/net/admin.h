// HTTP admin plane for the broker daemon.
//
// Serves the operational surface the paper's evaluation needed ad-hoc
// harness code for: /metrics (Prometheus text exposition), /healthz,
// /statusz (JSON: per-class counters, per-stage latency percentiles,
// per-shard and per-replica detail) and /tracez (flight-recorder dump).
// The AdminServer runs its own Reactor on a dedicated thread, so scrapes
// never compete with broker admission for a shard reactor's attention; its
// handlers snapshot shard state by posting onto each shard reactor and
// waiting, the same pattern ShardedBrokerDaemon::aggregate_metrics uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/hotspot.h"
#include "core/metrics.h"
#include "net/http_server.h"
#include "net/reactor.h"
#include "obs/observer.h"

namespace sbroker::net {

/// One backend replica's health as a shard's balancer sees it.
struct ReplicaStatus {
  size_t index = 0;
  size_t outstanding = 0;
  uint64_t picks = 0;
  bool ejected = false;
  /// Peak-decaying response-time EWMA, milliseconds, as of its last
  /// observation (snapshots carry no timeline to age it against). 0 = the
  /// replica has no latency sample yet.
  double ewma_ms = 0.0;
};

/// Point-in-time snapshot of one broker shard, taken on its owning thread.
struct ShardStatus {
  size_t shard = 0;
  const char* policy = "";       ///< balancer policy name (see balance.h)
  core::BrokerMetrics metrics;   ///< transport stats already folded in
  obs::BrokerObserver obs;       ///< histogram copy (trace stays behind)
  size_t outstanding = 0;
  core::LoadState load_state = core::LoadState::kNormal;
  uint64_t trace_recorded = 0;
  uint64_t trace_dropped = 0;
  /// Overload-control view (overload.h): policy, live effective admission
  /// threshold, and whether the shard is in declared overload / LIFO mode.
  const char* overload_policy = "";
  double admission_threshold = 0.0;
  bool overload_mode = false;
  bool lifo_active = false;
  std::vector<ReplicaStatus> replicas;
};

/// One federation peer as this node's admin plane reports it: channel
/// health summed across the node's shards, plus the peer's last gossip.
struct FederationPeerStatus {
  uint32_t node = 0;
  std::string identity;      ///< ring identity, e.g. "127.0.0.1:7001"
  bool self = false;
  bool connected = false;    ///< any shard's channel currently connected
  bool fresh = false;        ///< gossip heard within the staleness window
  uint32_t outstanding = 0;  ///< last gossiped outstanding count
  double threshold = 0.0;    ///< last gossiped admission threshold
  bool overloaded = false;   ///< last gossiped overload flag
  uint64_t fetches = 0;      ///< kPeerFetch sent to this peer
  uint64_t fetch_fails = 0;  ///< exchanges failed (close/timeout)
  uint64_t pushes = 0;       ///< hot-key pushes sent to this peer
  uint64_t gossips = 0;      ///< gossip frames sent to this peer
  uint64_t drops = 0;        ///< sends refused while the channel was down
  uint64_t dials = 0;        ///< connection attempts
};

/// Federation block for /statusz and /metrics, produced by
/// fed::FederatedDaemon::admin_status() (net/ only defines the DTO so the
/// admin plane needs no fed/ dependency).
struct FederationStatus {
  uint32_t node_id = 0;
  size_t nodes = 0;            ///< federation size, self included
  size_t vnodes = 0;           ///< ring virtual nodes per member
  double ring_share = 0.0;     ///< this node's owned fraction of key space
  double remote_pressure = 0.0;  ///< tier load entering admission
  uint64_t forwards_sent = 0;
  uint64_t forward_replies = 0;
  uint64_t forward_fails = 0;
  uint64_t fetches_served = 0;
  uint64_t pushes_sent = 0;
  uint64_t pushes_received = 0;
  uint64_t gossip_sent = 0;
  uint64_t gossip_received = 0;
  uint64_t gossip_rounds = 0;
  uint64_t view_updates = 0;
  std::vector<FederationPeerStatus> peers;
};

/// Builds a ShardStatus from a broker. Must run on the broker's own thread
/// (or while its daemon is stopped) — it reads single-writer state.
ShardStatus snapshot_shard(const core::ServiceBroker& broker, size_t shard);

/// Prometheus text exposition of the shard snapshots (counters summed,
/// latency histograms merged into cumulative `le` buckets). A non-null
/// `federation` appends the sbroker_federation_* families.
std::string render_prometheus(const std::vector<ShardStatus>& shards,
                              const FederationStatus* federation = nullptr);

/// JSON status document: per-class counters with per-stage latency
/// percentiles, aggregate stage distributions, transport/lifecycle stats,
/// and per-shard/per-replica detail. A non-null `federation` adds a
/// top-level "federation" block.
std::string render_statusz(const std::vector<ShardStatus>& shards,
                           const FederationStatus* federation = nullptr);

/// JSON dump of flight-recorder events (caller merges/sorts across shards).
std::string render_tracez(const std::vector<obs::TraceEvent>& events);

struct AdminConfig {
  bool enabled = true;  ///< serve the admin plane alongside the daemon
  uint16_t port = 0;    ///< 0 = ephemeral
};

class AdminServer {
 public:
  /// Snapshot callbacks run on the admin thread and may block (they post
  /// onto shard reactors and wait for the copies).
  using StatusFn = std::function<std::vector<ShardStatus>()>;
  using TraceFn = std::function<std::vector<obs::TraceEvent>()>;
  using FederationFn = std::function<FederationStatus()>;

  /// Binds the admin port and starts the admin reactor thread.
  AdminServer(uint16_t port, StatusFn status, TraceFn trace);
  ~AdminServer();  ///< stops the admin reactor and joins the thread
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  uint16_t port() const { return port_; }

  /// Installs the federation snapshot source; /metrics and /statusz then
  /// include the federation families/block. Callable after the server is
  /// already running (mutex-guarded; the daemon wires this post-construction).
  void set_federation(FederationFn federation);

 private:
  /// Copies the federation source under the lock (admin thread).
  FederationFn federation_source();

  StatusFn status_;
  TraceFn trace_;
  std::mutex federation_mu_;
  FederationFn federation_;
  Reactor reactor_;
  std::unique_ptr<HttpServer> http_;
  uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace sbroker::net
