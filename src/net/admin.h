// HTTP admin plane for the broker daemon.
//
// Serves the operational surface the paper's evaluation needed ad-hoc
// harness code for: /metrics (Prometheus text exposition), /healthz,
// /statusz (JSON: per-class counters, per-stage latency percentiles,
// per-shard and per-replica detail) and /tracez (flight-recorder dump).
// The AdminServer runs its own Reactor on a dedicated thread, so scrapes
// never compete with broker admission for a shard reactor's attention; its
// handlers snapshot shard state by posting onto each shard reactor and
// waiting, the same pattern ShardedBrokerDaemon::aggregate_metrics uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/hotspot.h"
#include "core/metrics.h"
#include "net/http_server.h"
#include "net/reactor.h"
#include "obs/observer.h"

namespace sbroker::net {

/// One backend replica's health as a shard's balancer sees it.
struct ReplicaStatus {
  size_t index = 0;
  size_t outstanding = 0;
  uint64_t picks = 0;
  bool ejected = false;
  /// Peak-decaying response-time EWMA, milliseconds, as of its last
  /// observation (snapshots carry no timeline to age it against). 0 = the
  /// replica has no latency sample yet.
  double ewma_ms = 0.0;
};

/// Point-in-time snapshot of one broker shard, taken on its owning thread.
struct ShardStatus {
  size_t shard = 0;
  const char* policy = "";       ///< balancer policy name (see balance.h)
  core::BrokerMetrics metrics;   ///< transport stats already folded in
  obs::BrokerObserver obs;       ///< histogram copy (trace stays behind)
  size_t outstanding = 0;
  core::LoadState load_state = core::LoadState::kNormal;
  uint64_t trace_recorded = 0;
  uint64_t trace_dropped = 0;
  /// Overload-control view (overload.h): policy, live effective admission
  /// threshold, and whether the shard is in declared overload / LIFO mode.
  const char* overload_policy = "";
  double admission_threshold = 0.0;
  bool overload_mode = false;
  bool lifo_active = false;
  std::vector<ReplicaStatus> replicas;
};

/// Builds a ShardStatus from a broker. Must run on the broker's own thread
/// (or while its daemon is stopped) — it reads single-writer state.
ShardStatus snapshot_shard(const core::ServiceBroker& broker, size_t shard);

/// Prometheus text exposition of the shard snapshots (counters summed,
/// latency histograms merged into cumulative `le` buckets).
std::string render_prometheus(const std::vector<ShardStatus>& shards);

/// JSON status document: per-class counters with per-stage latency
/// percentiles, aggregate stage distributions, transport/lifecycle stats,
/// and per-shard/per-replica detail.
std::string render_statusz(const std::vector<ShardStatus>& shards);

/// JSON dump of flight-recorder events (caller merges/sorts across shards).
std::string render_tracez(const std::vector<obs::TraceEvent>& events);

struct AdminConfig {
  bool enabled = true;  ///< serve the admin plane alongside the daemon
  uint16_t port = 0;    ///< 0 = ephemeral
};

class AdminServer {
 public:
  /// Snapshot callbacks run on the admin thread and may block (they post
  /// onto shard reactors and wait for the copies).
  using StatusFn = std::function<std::vector<ShardStatus>()>;
  using TraceFn = std::function<std::vector<obs::TraceEvent>()>;

  /// Binds the admin port and starts the admin reactor thread.
  AdminServer(uint16_t port, StatusFn status, TraceFn trace);
  ~AdminServer();  ///< stops the admin reactor and joins the thread
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  uint16_t port() const { return port_; }

 private:
  StatusFn status_;
  TraceFn trace_;
  Reactor reactor_;
  std::unique_ptr<HttpServer> http_;
  uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace sbroker::net
