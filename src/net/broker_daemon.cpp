#include "net/broker_daemon.h"

#include <algorithm>
#include <cstdlib>

#include "core/cluster.h"
#include "http/mget.h"
#include "http/parser.h"
#include "net/frame.h"
#include "util/log.h"

namespace sbroker::net {
namespace {

/// Shared request/response mapping for both HTTP ingress paths (the
/// dedicated gateway port and HTTP sniffed on the main port).
http::BrokerRequest map_http_request(const http::Request& req, uint64_t id) {
  http::BrokerRequest breq;
  breq.request_id = id;
  breq.qos_level = static_cast<uint32_t>(req.qos_level(1));
  breq.payload = req.target;
  if (auto hdr = req.headers.get_view(http::kDeadlineHeader)) {
    breq.deadline_ms =
        static_cast<uint32_t>(std::strtoul(std::string(*hdr).c_str(), nullptr, 10));
  }
  return breq;
}

http::Response map_broker_reply(const http::BrokerReply& reply) {
  int status = 200;
  switch (reply.fidelity) {
    case http::Fidelity::kFull:
    case http::Fidelity::kCached:
    case http::Fidelity::kDegraded:
      status = 200;
      break;
    case http::Fidelity::kBusy:
      status = reply.payload == core::kDeadlineExceeded ? 504 : 503;
      break;
    case http::Fidelity::kError:
      status = 502;
      break;
  }
  auto resp = http::make_response(status, reply.payload);
  resp.headers.set(std::string(http::kFidelityHeader),
                   std::string(http::fidelity_name(reply.fidelity)));
  return resp;
}

}  // namespace

// ---------------------------------------------------------------------------
// HttpBackend

struct HttpBackend::Exchange {
  http::ResponseParser parser;
  Completion done;
  size_t parts_expected = 1;
  bool finished = false;
  Reactor::TimerId timer = 0;  ///< response-deadline timer; 0 = none armed
};

HttpBackend::HttpBackend(Reactor& reactor, uint16_t port)
    : HttpBackend(reactor, port, IdleConfig()) {}

HttpBackend::HttpBackend(Reactor& reactor, uint16_t port, IdleConfig idle)
    : reactor_(reactor), port_(port), idle_config_(idle) {
  if (idle_config_.max_idle == 0) idle_config_.max_idle = 1;
}

core::ChannelStats HttpBackend::channel_stats() const {
  core::ChannelStats s;
  s.calls = calls_;
  s.connections_opened = connections_opened_;
  s.open_connections = idle_.size();
  // Stop-and-wait: every request is its own un-coalesced write and no
  // connection ever carries more than one exchange.
  s.flushes = calls_;
  s.requests_written = calls_;
  s.peak_in_flight = calls_ > 0 ? 1 : 0;
  s.timeouts = timeouts_;
  s.cancels = cancels_;
  return s;
}

void HttpBackend::invoke(const Call& call, Completion done) {
  invoke(call, nullptr, std::move(done));
}

void HttpBackend::invoke(const Call& call, const core::CancelTokenPtr& token,
                         Completion done) {
  ++calls_;
  auto records = core::ClusterEngine::split_records(call.payload);
  http::Request request;
  if (records.size() == 1) {
    request.method = "GET";
    request.target = records[0];
  } else {
    request = http::make_mget_request(records);
  }
  request.headers.set("Host", "127.0.0.1");
  double timeout =
      call.timeout > 0.0 ? call.timeout : idle_config_.response_timeout;
  if (timeout > 0.0) {
    request.headers.set(std::string(http::kDeadlineHeader),
                        std::to_string(static_cast<long>(timeout * 1000.0)));
  }

  std::shared_ptr<TcpConn> conn;
  bool reused = false;
  if (!call.needs_connection_setup) {
    while (!idle_.empty()) {
      auto candidate = idle_.back().conn;  // most recent: most likely alive
      idle_.pop_back();
      if (!candidate->closed()) {
        conn = candidate;
        reused = true;
        break;
      }
    }
  }
  if (!conn) {
    int fd;
    try {
      fd = connect_tcp(port_);
    } catch (const std::exception& e) {
      double now = reactor_.now();
      reactor_.add_timer(0.0, [done, now, what = std::string(e.what())]() {
        done(now, false, "backend connect failed: " + what);
      });
      return;
    }
    conn = TcpConn::adopt(reactor_, fd);
    ++connections_opened_;
  }

  start_exchange(conn, reused, request.serialize(), records.size(), timeout,
                 token, std::move(done));
}

void HttpBackend::start_exchange(std::shared_ptr<TcpConn> conn, bool reused,
                                 const std::string& wire_request,
                                 size_t parts_expected, double timeout,
                                 const core::CancelTokenPtr& token,
                                 Completion done) {
  auto exchange = std::make_shared<Exchange>();
  exchange->done = std::move(done);
  exchange->parts_expected = parts_expected;

  auto self = shared_from_this();
  auto finish = [self, exchange, conn](bool ok, std::string payload, bool reusable) {
    if (exchange->finished) return;
    exchange->finished = true;
    if (exchange->timer != 0) self->reactor_.cancel_timer(exchange->timer);
    if (reusable && !conn->closed()) {
      self->park_idle(conn);
    } else if (!conn->closed()) {
      conn->abort();
    }
    exchange->done(self->reactor_.now(), ok, std::move(payload));
  };

  if (timeout > 0.0) {
    // Half-stall bound: a connection that stays open but never produces a
    // full response would otherwise pin this exchange forever.
    std::weak_ptr<HttpBackend> weak_self = weak_from_this();
    exchange->timer = reactor_.add_timer(timeout, [weak_self, finish]() {
      auto backend = weak_self.lock();
      if (!backend) return;
      ++backend->timeouts_;
      finish(false, "backend response timeout", false);
    });
  }
  if (token) {
    std::weak_ptr<HttpBackend> weak_self = weak_from_this();
    token->set_callback([weak_self, finish]() {
      auto backend = weak_self.lock();
      if (!backend) return;
      ++backend->cancels_;
      finish(false, "exchange cancelled", false);
    });
    if (exchange->finished) return;  // token was already cancelled
  }

  conn->start(
      [exchange, finish](std::string_view bytes) {
        if (exchange->finished) return;
        exchange->parser.feed(bytes);
        http::Response resp;
        auto result = exchange->parser.next(resp);
        if (result == http::ParseResult::kNeedMore) return;
        if (result == http::ParseResult::kError) {
          finish(false, "backend sent malformed response", false);
          return;
        }
        if (exchange->parts_expected > 1) {
          auto parts = http::split_mget_response(resp);
          if (!parts || parts->size() != exchange->parts_expected) {
            finish(false, "bad MGET framing from backend", false);
            return;
          }
          std::vector<std::string> bodies;
          bodies.reserve(parts->size());
          for (auto& part : *parts) bodies.push_back(std::move(part.body));
          finish(true, core::ClusterEngine::join_payloads(bodies), true);
          return;
        }
        finish(resp.status == 200, std::move(resp.body), true);
      },
      [finish]() { finish(false, "backend connection closed", false); });
  conn->send(wire_request);
  (void)reused;
}

void HttpBackend::park_idle(std::shared_ptr<TcpConn> conn) {
  // Replace the finished exchange's callbacks (they capture the connection,
  // a cycle that would outlive the pool) with idle-watch ones: a server
  // that sends while we owe it nothing, or closes, retires the connection.
  std::weak_ptr<TcpConn> weak = conn;
  conn->start(
      [weak](std::string_view) {
        if (auto c = weak.lock()) c->abort();
      },
      []() {});
  idle_.push_back(IdleConn{std::move(conn), reactor_.now()});
  while (idle_.size() > idle_config_.max_idle) {
    if (!idle_.front().conn->closed()) idle_.front().conn->abort();
    idle_.pop_front();
  }
  schedule_prune();
}

void HttpBackend::schedule_prune() {
  if (prune_scheduled_) return;
  prune_scheduled_ = true;
  // weak_ptr: the timer must not keep the backend alive past its broker.
  std::weak_ptr<HttpBackend> weak = weak_from_this();
  reactor_.add_timer(std::max(0.01, idle_config_.idle_ttl / 2.0),
                     [weak]() {
                       if (auto self = weak.lock()) self->prune_idle();
                     });
}

void HttpBackend::prune_idle() {
  prune_scheduled_ = false;
  double now = reactor_.now();
  std::deque<IdleConn> kept;
  for (IdleConn& entry : idle_) {
    if (entry.conn->closed()) continue;
    if (now - entry.since >= idle_config_.idle_ttl) {
      entry.conn->abort();
      continue;
    }
    kept.push_back(std::move(entry));
  }
  idle_.swap(kept);
  if (!idle_.empty()) schedule_prune();
}

// ---------------------------------------------------------------------------
// BrokerDaemon

struct BrokerDaemon::Conn {
  /// Wire protocol the first byte of the connection selected.
  enum class Mode { kSniff, kFrame, kLegacy, kHttp };

  std::shared_ptr<TcpConn> tcp;
  std::string inbox;            ///< frame / legacy reassembly buffer
  Mode mode = Mode::kSniff;
  http::RequestParser parser;   ///< kHttp only
  /// Reused across requests so the steady state re-uses their capacity
  /// instead of allocating per request.
  http::BrokerRequest req_scratch;
  std::string encode_scratch;
  bool flush_scheduled = false;  ///< a cycle-end coalesced flush is armed
};

BrokerDaemon::BrokerDaemon(Reactor& reactor, std::string name,
                           BrokerDaemonConfig config)
    : reactor_(reactor),
      broker_(std::move(name), config.broker),
      tick_interval_(config.tick_interval),
      listener_(reactor, config.listen_port,
                [this](int fd) { adopt_client(fd); }, config.reuse_port) {
  if (config.enable_udp) {
    udp_ = std::make_unique<UdpSocket>(
        reactor_, config.udp_port,
        [this](std::string_view payload, const sockaddr_in& from) {
          on_datagram(payload, from);
        },
        config.reuse_port);
  }
  if (config.enable_http) {
    http_ = std::make_unique<HttpServer>(
        reactor_, config.http_port,
        [this](const http::Request& req, HttpServer::Responder respond) {
          on_http(req, std::move(respond));
        });
  }
  // Retries scheduled from inside a backend completion can move the next
  // due time earlier than the armed tick; the broker tells us to re-arm.
  broker_.set_wakeup([this]() { rearm_tick(); });
  if (config.io_uring) reactor_.enable_io_uring();
  rearm_tick();
}

void BrokerDaemon::adopt_client(int fd) {
  auto conn = std::make_shared<Conn>();
  conn->tcp = TcpConn::adopt(reactor_, fd);
  conn->tcp->start(
      [this, conn](std::string_view bytes) { on_client_bytes(conn, bytes); },
      [conn]() {});
}

void BrokerDaemon::on_client_bytes(const std::shared_ptr<Conn>& conn,
                                   std::string_view bytes) {
  if (conn->mode == Conn::Mode::kSniff && !bytes.empty()) {
    // One listen port, three protocols, distinguished by the first byte:
    // 0xB7 is the compact frame magic, 'S' starts the legacy SBRK magic, and
    // an ASCII letter starts an HTTP/1.1 method. The byte values are
    // mutually exclusive by construction (frame_test pins this).
    unsigned char first = static_cast<unsigned char>(bytes.front());
    if (first == frame::kMagic) {
      conn->mode = Conn::Mode::kFrame;
    } else if (first == 'S') {
      conn->mode = Conn::Mode::kLegacy;
    } else if ((first >= 'A' && first <= 'Z') || (first >= 'a' && first <= 'z')) {
      conn->mode = Conn::Mode::kHttp;
    } else {
      SBROKER_WARN("broker-daemon") << "unknown protocol magic; closing";
      conn->tcp->abort();
      return;
    }
  }
  bool ok = true;
  switch (conn->mode) {
    case Conn::Mode::kSniff:
      return;  // zero-byte read; keep sniffing
    case Conn::Mode::kFrame:
      conn->inbox.append(bytes);
      ok = drain_frames(conn);
      break;
    case Conn::Mode::kLegacy:
      conn->inbox.append(bytes);
      ok = drain_legacy(conn);
      break;
    case Conn::Mode::kHttp:
      conn->parser.feed(bytes);
      ok = drain_http(conn);
      break;
  }
  if (!ok) {
    SBROKER_WARN("broker-daemon") << "malformed request; closing";
    conn->tcp->abort();
    return;
  }
  // Submits may have registered deadlines earlier than the armed tick; pull
  // the timer forward so expiry fires on time.
  rearm_tick();
}

bool BrokerDaemon::drain_frames(const std::shared_ptr<Conn>& conn) {
  size_t off = 0;
  while (off < conn->inbox.size()) {
    std::string_view rest = std::string_view(conn->inbox).substr(off);
    uint8_t kind = frame::peek_kind(rest);
    if (kind == 0 && rest.size() < frame::kHeaderSize) break;  // header pending
    size_t consumed = 0;
    if (kind == frame::kKindRequest) {
      frame::Request freq;
      auto result = frame::parse_request(rest, freq, &consumed);
      if (result == frame::ParseResult::kNeedMore) break;
      if (result == frame::ParseResult::kError) return false;
      off += consumed;
      handle_client_frame(conn, freq);
    } else if (kind == frame::kKindPeerFetch && fed_ != nullptr) {
      frame::Request freq;
      auto result = frame::parse_peer_fetch(rest, freq, &consumed);
      if (result == frame::ParseResult::kNeedMore) break;
      if (result == frame::ParseResult::kError) return false;
      off += consumed;
      handle_peer_fetch(conn, freq);
    } else if (kind == frame::kKindPeerPush && fed_ != nullptr) {
      frame::Push push;
      auto result = frame::parse_push(rest, push, &consumed);
      if (result == frame::ParseResult::kNeedMore) break;
      if (result == frame::ParseResult::kError) return false;
      off += consumed;
      // Shared striped cache: one insert serves every shard's lookups.
      broker_.cache().put(push.key, std::string(push.value), reactor_.now());
      fed_->on_push(push);
    } else if (kind == frame::kKindGossip && fed_ != nullptr) {
      frame::Gossip gossip;
      auto result = frame::parse_gossip(rest, gossip, &consumed);
      if (result == frame::ParseResult::kNeedMore) break;
      if (result == frame::ParseResult::kError) return false;
      off += consumed;
      fed_->on_gossip(gossip);
    } else {
      // Reply kinds inbound on a serving connection, unknown kinds, and
      // peer kinds without a federation installed are protocol errors.
      return false;
    }
  }
  if (off > 0) conn->inbox.erase(0, off);
  return true;
}

void BrokerDaemon::handle_client_frame(const std::shared_ptr<Conn>& conn,
                                       const frame::Request& freq) {
  wire_->frames_in += 1;
  http::BrokerRequest& req = conn->req_scratch;
  req.request_id = freq.request_id;
  req.qos_level = freq.qos_level;
  req.txn_id = 0;
  req.txn_step = 0;
  req.deadline_ms = freq.deadline_ms;
  req.payload.assign(freq.query);  // reuses capacity in steady state

  // Fast path: a cache-answerable request is served entirely out of the
  // scratch arena (value copy + reply view), with the reply bytes queued
  // for the cycle-end coalesced flush. Only a true miss pays for the
  // owning std::function + context arena of the full path.
  scratch_.reset();
  bool served = broker_.try_submit_fast(
      reactor_.now(), req, scratch_, [&](const core::ReplyView& r) {
        queue_frame_reply(conn, r.request_id, r.fidelity, r.payload);
        if (fed_ != nullptr) fed_->on_served(req.payload, r.payload, r.fidelity);
      });
  if (served) {
    wire_->fast_hits += 1;
    return;
  }
  // The fast path counted nothing on a miss, so exactly one node's broker
  // sees each request: the forwarding path hands it to the owner (which
  // counts it), the local path submits it here. Tier-wide issued+cache_hits
  // therefore equals client replies whichever route a request takes.
  if (fed_ != nullptr && try_forward_miss(conn, req)) return;
  broker_.submit_miss(reactor_.now(), req,
                      [this, conn, key = req.payload](const http::BrokerReply& reply) {
                        if (!conn->tcp->closed()) {
                          queue_frame_reply(conn, reply.request_id,
                                            reply.fidelity, reply.payload);
                        }
                        if (fed_ != nullptr) {
                          fed_->on_served(key, reply.payload, reply.fidelity);
                        }
                      });
}

bool BrokerDaemon::try_forward_miss(const std::shared_ptr<Conn>& conn,
                                    const http::BrokerRequest& req) {
  double submitted = reactor_.now();
  // The scratch request is reused per frame; the forward callback needs a
  // stable copy for the local-fallback resubmission.
  auto kept = std::make_shared<http::BrokerRequest>(req);
  return fed_->try_forward(
      req, [this, conn, kept, submitted](FederationHook::ForwardResult result) {
        if (result.ok) {
          // Relay the owner's answer verbatim — fidelity and flag bits
          // (cache-served, degraded, ...) describe how the owner produced it.
          if (!conn->tcp->closed()) {
            queue_reply_frame(conn, frame::kKindReply, kept->request_id,
                              result.fidelity, result.flags, result.payload);
          }
          return;
        }
        // Owner unreachable (dead channel / exchange timeout): fetch locally
        // with whatever budget the client has left, clamped to >= 1ms so the
        // request sheds through the normal deadline path instead of hanging.
        if (kept->deadline_ms > 0) {
          double elapsed_ms = (reactor_.now() - submitted) * 1e3;
          double remaining = static_cast<double>(kept->deadline_ms) - elapsed_ms;
          kept->deadline_ms =
              remaining >= 1.0 ? static_cast<uint32_t>(remaining) : 1u;
        }
        broker_.submit_miss(
            reactor_.now(), *kept,
            [this, conn, key = kept->payload](const http::BrokerReply& reply) {
              if (!conn->tcp->closed()) {
                queue_frame_reply(conn, reply.request_id, reply.fidelity,
                                  reply.payload);
              }
              if (fed_ != nullptr) {
                fed_->on_served(key, reply.payload, reply.fidelity);
              }
            });
        rearm_tick();  // the fallback may carry the earliest deadline
      });
}

void BrokerDaemon::handle_peer_fetch(const std::shared_ptr<Conn>& conn,
                                     const frame::Request& freq) {
  wire_->frames_in += 1;
  fed_->on_peer_fetch();
  http::BrokerRequest& req = conn->req_scratch;
  req.request_id = freq.request_id;
  req.qos_level = freq.qos_level;
  req.txn_id = 0;
  req.txn_step = 0;
  req.deadline_ms = freq.deadline_ms;  // the forwarder's remaining budget
  req.payload.assign(freq.query);

  // Serve as owner: cache, else local fetch. Never re-forwarded — the owner
  // answers a peer fetch itself by construction, so forwarding cannot loop.
  scratch_.reset();
  bool served = broker_.try_submit_fast(
      reactor_.now(), req, scratch_, [&](const core::ReplyView& r) {
        queue_reply_frame(conn, frame::kKindPeerReply, r.request_id, r.fidelity,
                          frame::flags_for(r.fidelity), r.payload);
        fed_->on_served(req.payload, r.payload, r.fidelity);
      });
  if (served) {
    wire_->fast_hits += 1;
    return;
  }
  broker_.submit_miss(
      reactor_.now(), req,
      [this, conn, key = req.payload](const http::BrokerReply& reply) {
        if (!conn->tcp->closed()) {
          queue_reply_frame(conn, frame::kKindPeerReply, reply.request_id,
                            reply.fidelity, frame::flags_for(reply.fidelity),
                            reply.payload);
        }
        if (fed_ != nullptr) fed_->on_served(key, reply.payload, reply.fidelity);
      });
}

bool BrokerDaemon::drain_legacy(const std::shared_ptr<Conn>& conn) {
  while (true) {
    size_t consumed = 0;
    auto request = http::decode_request(conn->inbox, &consumed);
    if (!request) {
      // Either an incomplete message (wait for more bytes) or garbage.
      // Distinguish by magic: a buffer that cannot even start a valid
      // message will never become one.
      if (conn->inbox.size() >= 6 &&
          !(conn->inbox[0] == 'S' && conn->inbox[1] == 'B' &&
            conn->inbox[2] == 'R' && conn->inbox[3] == 'K')) {
        return false;
      }
      return true;
    }
    conn->inbox.erase(0, consumed);
    wire_->legacy_in += 1;
    auto tcp = conn->tcp;
    broker_.submit(reactor_.now(), *request,
                   [tcp](const http::BrokerReply& reply) {
                     if (!tcp->closed()) tcp->send(http::encode(reply));
                   });
  }
}

bool BrokerDaemon::drain_http(const std::shared_ptr<Conn>& conn) {
  while (true) {
    http::Request req;
    auto result = conn->parser.next(req);
    if (result == http::ParseResult::kNeedMore) return true;
    if (result == http::ParseResult::kError) return false;
    wire_->http_in += 1;
    auto breq = map_http_request(req, ++http_seq_);
    broker_.submit(reactor_.now(), breq,
                   [this, conn](const http::BrokerReply& reply) {
                     if (conn->tcp->closed()) return;
                     queue_http_reply(conn, reply);
                   });
  }
}

void BrokerDaemon::queue_frame_reply(const std::shared_ptr<Conn>& conn,
                                     uint64_t request_id, http::Fidelity fidelity,
                                     std::string_view payload) {
  queue_reply_frame(conn, frame::kKindReply, request_id, fidelity,
                    frame::flags_for(fidelity), payload);
}

void BrokerDaemon::queue_reply_frame(const std::shared_ptr<Conn>& conn,
                                     uint8_t kind, uint64_t request_id,
                                     http::Fidelity fidelity, uint8_t flags,
                                     std::string_view payload) {
  conn->encode_scratch.clear();
  if (kind == frame::kKindPeerReply) {
    frame::encode_peer_reply(request_id, fidelity, flags, payload,
                             conn->encode_scratch);
  } else {
    frame::encode_reply(request_id, fidelity, flags, payload,
                        conn->encode_scratch);
  }
  conn->tcp->queue(conn->encode_scratch);
  wire_->flushed_responses += 1;
  schedule_flush(conn);
}

void BrokerDaemon::queue_http_reply(const std::shared_ptr<Conn>& conn,
                                    const http::BrokerReply& reply) {
  auto resp = map_broker_reply(reply);
  conn->encode_scratch.clear();
  resp.serialize_into(conn->encode_scratch);
  conn->tcp->queue(conn->encode_scratch);
  wire_->flushed_responses += 1;
  schedule_flush(conn);
}

void BrokerDaemon::schedule_flush(const std::shared_ptr<Conn>& conn) {
  if (conn->flush_scheduled) return;
  conn->flush_scheduled = true;
  // The hook captures the shared WireStats, not `this`: it may still be
  // pending (to be destroyed, not run) when the daemon is torn down.
  reactor_.at_cycle_end([conn, wire = wire_]() {
    conn->flush_scheduled = false;
    if (conn->tcp->closed()) return;
    wire->flushes += 1;
    conn->tcp->flush();
  });
}

void BrokerDaemon::on_datagram(std::string_view payload, const sockaddr_in& from) {
  auto request = http::decode_request(payload);
  if (!request) {
    SBROKER_WARN("broker-daemon") << "undecodable datagram dropped";
    return;
  }
  broker_.submit(reactor_.now(), *request, [this, from](const http::BrokerReply& reply) {
    if (udp_) udp_->send_to(from, http::encode(reply));
  });
  rearm_tick();
}

void BrokerDaemon::on_http(const http::Request& req, HttpServer::Responder respond) {
  auto breq = map_http_request(req, ++http_seq_);
  broker_.submit(reactor_.now(), breq, [respond](const http::BrokerReply& reply) {
    respond(map_broker_reply(reply));
  });
  rearm_tick();
}

BrokerDaemon::~BrokerDaemon() {
  stopping_ = true;
  reactor_.cancel_timer(tick_timer_);
}

void BrokerDaemon::add_backend(std::shared_ptr<core::Backend> backend, double weight) {
  broker_.add_backend(std::move(backend), weight);
}

void BrokerDaemon::poke() {
  if (stopping_) return;
  broker_.tick(reactor_.now());
  rearm_tick();
}

void BrokerDaemon::rearm_tick() {
  if (stopping_) return;
  double now = reactor_.now();
  double due = now + tick_interval_;
  if (auto next = broker_.next_deadline(); next && *next < due) {
    due = std::max(now, *next);
  }
  // Keep an already-armed timer that is early enough; re-arming on every
  // submit would churn the timer queue for no behavioural difference.
  if (tick_armed_ && next_tick_at_ <= due + 1e-9) return;
  if (tick_armed_) reactor_.cancel_timer(tick_timer_);
  tick_armed_ = true;
  next_tick_at_ = due;
  tick_timer_ = reactor_.add_timer(due - now, [this]() {
    if (stopping_) return;
    tick_armed_ = false;
    broker_.tick(reactor_.now());
    rearm_tick();
  });
}

}  // namespace sbroker::net
