// Real-socket service broker daemon.
//
// Runs the identical core::ServiceBroker logic that the simulation uses,
// but over live TCP: web application processes connect and exchange the
// binary wire protocol (http/wire.h), and the broker forwards to real HTTP
// backend servers. This is the deployment shape of the paper's distributed
// model (Figure 5) — admission, clustering, caching and differentiation all
// happen in this process, in front of QoS-unaware backends.
//
// Everything runs on one Reactor thread; a periodic timer drives
// broker.tick() for cluster-deadline flushes and prefetch.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/backend.h"
#include "core/broker.h"
#include "net/fed_hook.h"
#include "net/http_server.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace sbroker::net {

/// core::Backend adapter that talks to a real HTTP server on localhost.
///
/// Payload convention: one or more request targets joined with
/// core::kRecordSep. A multi-record payload is sent as a single MGET and the
/// part bodies are re-joined with the separator, so the broker's batch
/// splitting works unchanged over the real wire.
class HttpBackend : public core::Backend,
                    public std::enable_shared_from_this<HttpBackend> {
 public:
  /// Bounds on the idle-connection pool: at most `max_idle` connections are
  /// kept for reuse (oldest evicted beyond that) and any connection idle
  /// longer than `idle_ttl` seconds is closed by a background prune, rather
  /// than lingering until a later acquire discovers it dead. Also carries
  /// the stop-and-wait exchange deadline: a connection that is readable but
  /// has not produced a full response within `response_timeout` seconds
  /// (Call::timeout overrides, when the broker set one) fails the exchange
  /// instead of waiting indefinitely.
  struct IdleConfig {
    size_t max_idle = 64;
    double idle_ttl = 30.0;          ///< seconds
    double response_timeout = 30.0;  ///< seconds; 0 = wait forever
  };

  HttpBackend(Reactor& reactor, uint16_t port);  ///< default IdleConfig
  HttpBackend(Reactor& reactor, uint16_t port, IdleConfig idle);

  void invoke(const Call& call, Completion done) override;
  void invoke(const Call& call, const core::CancelTokenPtr& token,
              Completion done) override;
  core::ChannelStats channel_stats() const override;

  uint64_t connections_opened() const { return connections_opened_; }
  uint64_t calls() const { return calls_; }
  uint64_t timeouts() const { return timeouts_; }
  size_t idle_connections() const { return idle_.size(); }

 private:
  struct Exchange;
  struct IdleConn {
    std::shared_ptr<TcpConn> conn;
    double since = 0.0;  ///< reactor time the connection went idle
  };
  void start_exchange(std::shared_ptr<TcpConn> conn, bool reused,
                      const std::string& wire_request, size_t parts_expected,
                      double timeout, const core::CancelTokenPtr& token,
                      Completion done);
  void park_idle(std::shared_ptr<TcpConn> conn);
  void schedule_prune();
  void prune_idle();

  Reactor& reactor_;
  uint16_t port_;
  IdleConfig idle_config_;
  std::deque<IdleConn> idle_;  ///< front = oldest idle
  bool prune_scheduled_ = false;
  uint64_t connections_opened_ = 0;
  uint64_t calls_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t cancels_ = 0;
};

struct BrokerDaemonConfig {
  core::BrokerConfig broker;
  uint16_t listen_port = 0;      ///< TCP port; 0 = ephemeral
  bool enable_udp = true;        ///< the paper's "lightweight UDP" channel
  uint16_t udp_port = 0;         ///< 0 = ephemeral
  double tick_interval = 0.02;   ///< max seconds between housekeeping ticks
  /// SO_REUSEPORT on both listeners, so several daemons (the shards of a
  /// ShardedBrokerDaemon) can accept on one shared port.
  bool reuse_port = false;
  /// Plain-HTTP ingress: clients GET targets directly (X-QoS-Level and
  /// X-Deadline-Ms honored) and fidelity maps onto status codes — 200 for
  /// full/cached/degraded, 503 for admission busy, 504 Gateway Timeout for
  /// deadline sheds, 502 for backend errors.
  bool enable_http = false;
  uint16_t http_port = 0;        ///< 0 = ephemeral
  /// Opt the reactor into the io_uring write-submission backend. No-op (and
  /// harmless) when the tree was built without -DSBROKER_IOURING=ON or the
  /// kernel refuses a ring; epoll + writev remains the fallback either way.
  bool io_uring = false;
};

/// Ingress/egress accounting for the daemon's main listen port. The three
/// `_in` counters classify requests by the protocol the first-byte sniff
/// picked; `flushes`/`flushed_responses` measure reactor-cycle write
/// coalescing (flushed_responses > flushes means batching happened).
struct WireStats {
  uint64_t frames_in = 0;    ///< binary-frame requests (net/frame.h)
  uint64_t legacy_in = 0;    ///< legacy SBRK messages (http/wire.h)
  uint64_t http_in = 0;      ///< sniffed HTTP/1.1 requests on the main port
  uint64_t fast_hits = 0;    ///< frame requests served by the arena fast path
  uint64_t flushes = 0;      ///< cycle-end flush() calls on frame/http conns
  uint64_t flushed_responses = 0;  ///< responses queued through that path

  void merge(const WireStats& o) {
    frames_in += o.frames_in;
    legacy_in += o.legacy_in;
    http_in += o.http_in;
    fast_hits += o.fast_hits;
    flushes += o.flushes;
    flushed_responses += o.flushed_responses;
  }
};

class BrokerDaemon {
 public:
  BrokerDaemon(Reactor& reactor, std::string name, BrokerDaemonConfig config);
  ~BrokerDaemon();
  BrokerDaemon(const BrokerDaemon&) = delete;
  BrokerDaemon& operator=(const BrokerDaemon&) = delete;

  void add_backend(std::shared_ptr<core::Backend> backend, double weight = 1.0);

  /// Adopts an already-accepted client socket (non-blocking fd) as a
  /// wire-protocol connection, exactly as if this daemon's own listener had
  /// accepted it. Must be called on this daemon's reactor thread; the
  /// sharded daemon's acceptor fallback posts fds here.
  void adopt_client(int fd);

  /// Runs a housekeeping tick now and re-arms the tick timer. Must be called
  /// on this daemon's reactor thread; the sharded daemon posts it when a
  /// single-flight resolution on another shard has waiters parked here.
  void poke();

  uint16_t port() const { return listener_.port(); }
  /// UDP datagram port; 0 when UDP is disabled.
  uint16_t udp_port() const { return udp_ ? udp_->port() : 0; }
  /// HTTP ingress port; 0 when the HTTP gateway is disabled.
  uint16_t http_port() const { return http_ ? http_->port() : 0; }
  core::ServiceBroker& broker() { return broker_; }
  const core::ServiceBroker& broker() const { return broker_; }
  /// Main-port protocol mix and write-coalescing counters. Same threading
  /// contract as broker(): touch only from this daemon's reactor thread (or
  /// while stopped).
  WireStats wire_stats() const { return *wire_; }

  /// Installs this shard's federation endpoint (see net/fed_hook.h). Call
  /// before traffic flows; the hook must outlive the daemon's traffic. With
  /// a hook installed the frame path gains the federation behaviours:
  /// cache-missed client frames are offered to try_forward() before
  /// fetching locally, and the peer kinds (kPeerFetch / kPeerPush /
  /// kGossip) are accepted on the same sniffed port. Without one, peer
  /// frames are a protocol error and the daemon behaves exactly as before.
  /// Federation applies to the binary frame protocol only — the legacy,
  /// HTTP and UDP ingresses always fetch locally.
  void set_federation(FederationHook* federation) { fed_ = federation; }

 private:
  struct Conn;
  /// (Re-)arms the tick timer for min(now + tick_interval, broker
  /// next_deadline) so deadline expiries fire when due, not a full tick
  /// late. Cheap no-op when the armed timer is already early enough.
  void rearm_tick();
  void on_client_bytes(const std::shared_ptr<Conn>& conn, std::string_view bytes);
  bool drain_frames(const std::shared_ptr<Conn>& conn);
  bool drain_legacy(const std::shared_ptr<Conn>& conn);
  bool drain_http(const std::shared_ptr<Conn>& conn);
  /// One decoded client request frame: cache fast path, then federation
  /// forward (hook installed and a live peer owns the key), then local fetch.
  void handle_client_frame(const std::shared_ptr<Conn>& conn,
                           const frame::Request& freq);
  /// One decoded kPeerFetch: serve as owner (cache or local fetch; never
  /// re-forwarded, so forwarding chains cannot loop) and answer kPeerReply.
  void handle_peer_fetch(const std::shared_ptr<Conn>& conn,
                         const frame::Request& freq);
  /// Offers a cache-missed client frame to the federation. True when the
  /// fetch went to the owner (the forward callback owns the reply or the
  /// local fallback from here on).
  bool try_forward_miss(const std::shared_ptr<Conn>& conn,
                        const http::BrokerRequest& req);
  /// Queues one encoded reply on the connection and arms the per-cycle
  /// coalesced flush (one writev/io_uring submission per reactor wakeup per
  /// connection, however many replies landed in it).
  void queue_frame_reply(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                         http::Fidelity fidelity, std::string_view payload);
  /// queue_frame_reply with explicit flags (relaying an owner's reply keeps
  /// the owner's flag bits) and a selectable kind (kKindReply for clients,
  /// kKindPeerReply for peer fetches).
  void queue_reply_frame(const std::shared_ptr<Conn>& conn, uint8_t kind,
                         uint64_t request_id, http::Fidelity fidelity,
                         uint8_t flags, std::string_view payload);
  void queue_http_reply(const std::shared_ptr<Conn>& conn,
                        const http::BrokerReply& reply);
  void schedule_flush(const std::shared_ptr<Conn>& conn);
  void on_datagram(std::string_view payload, const sockaddr_in& from);
  void on_http(const http::Request& req, HttpServer::Responder respond);

  Reactor& reactor_;
  core::ServiceBroker broker_;
  double tick_interval_;
  Reactor::TimerId tick_timer_ = 0;
  bool tick_armed_ = false;
  double next_tick_at_ = 0.0;
  bool stopping_ = false;
  TcpListener listener_;
  std::unique_ptr<UdpSocket> udp_;
  std::unique_ptr<HttpServer> http_;
  uint64_t http_seq_ = 0;  ///< synthesizes request ids for HTTP clients
  /// shared_ptr so cycle-end flush hooks can keep counting without holding
  /// `this` (they may be pending when the daemon is torn down).
  std::shared_ptr<WireStats> wire_ = std::make_shared<WireStats>();
  /// Scratch arena for the allocation-free cache fast path; reset per frame.
  core::Arena scratch_;
  /// This shard's federation endpoint; null = single-node behaviour.
  FederationHook* fed_ = nullptr;
};

}  // namespace sbroker::net
