// Extension point the broker daemon offers the federation layer.
//
// net/ must not depend on src/fed/ (fed links net, not the other way
// around), so the daemon talks to its federation through this abstract
// hook: src/fed/'s per-shard ShardPeering implements it, and
// BrokerDaemon::set_federation() installs one per shard. Every method is
// invoked on the owning shard's reactor thread; implementations that share
// state across shards (the gossip view, the tier counters) synchronize
// internally.
//
// A daemon with no hook installed behaves exactly as before this layer
// existed — the federation path costs one null check per frame-path miss.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "http/wire.h"
#include "net/frame.h"

namespace sbroker::net {

class FederationHook {
 public:
  virtual ~FederationHook() = default;

  /// Outcome of a forwarded fetch, delivered back on the forwarding shard's
  /// reactor thread. `ok == false` means the owner could not answer (dead
  /// channel, exchange timeout): the daemon falls back to a local fetch
  /// with the request's remaining deadline budget, so a slow or dead peer
  /// can delay a request but never strand it.
  struct ForwardResult {
    bool ok = false;
    http::Fidelity fidelity = http::Fidelity::kFull;
    uint8_t flags = 0;
    std::string payload;
  };
  using ForwardDone = std::function<void(ForwardResult)>;

  /// Offers a cache-missed client request for forwarding to its ring owner.
  /// Returns false — without retaining `done` — when this node owns the
  /// key, forwarding is disabled, or the owner's channel is down (the
  /// caller then fetches locally). Returns true when the fetch was sent;
  /// `done` then fires exactly once, later, on this shard's reactor thread.
  virtual bool try_forward(const http::BrokerRequest& request, ForwardDone done) = 0;

  /// A full-or-cached answer this node just served for `key` (client
  /// requests and peer fetches alike): hotness accounting, and the
  /// replicate-to-all-peers decision on keys that cross the threshold.
  virtual void on_served(std::string_view key, std::string_view value,
                         http::Fidelity fidelity) = 0;

  /// A kPeerFetch frame was served by this node as owner (counting only;
  /// the daemon itself runs the broker submit and the reply).
  virtual void on_peer_fetch() = 0;

  /// A kPeerPush replication frame arrived (the daemon already inserted the
  /// pair into the shared cache).
  virtual void on_push(const frame::Push& push) = 0;

  /// A kGossip load report arrived from a peer.
  virtual void on_gossip(const frame::Gossip& gossip) = 0;
};

}  // namespace sbroker::net
