#include "net/frame.h"

#include <cstring>

namespace sbroker::net::frame {
namespace {

void put_u32(uint32_t v, std::string& out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

void put_u64(uint64_t v, std::string& out) {
  put_u32(static_cast<uint32_t>(v & 0xffffffffu), out);
  put_u32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t get_u32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t get_u64(const char* p) {
  return static_cast<uint64_t>(get_u32(p)) | static_cast<uint64_t>(get_u32(p + 4)) << 32;
}

// Validates the header and either reports the full frame extent or an error.
// On kFrame, `section` points at the kind-specific bytes.
ParseResult parse_header(std::string_view bytes, uint8_t expected_kind,
                         std::string_view& section, size_t* consumed) {
  // Wrong magic is an error as soon as the first byte is visible: waiting
  // for a full header cannot turn a mis-framed stream into a valid one.
  if (!bytes.empty() && static_cast<uint8_t>(bytes[0]) != kMagic) {
    return ParseResult::kError;
  }
  if (bytes.size() < kHeaderSize) return ParseResult::kNeedMore;
  const auto* p = bytes.data();
  if (static_cast<uint8_t>(p[1]) != kVersion) return ParseResult::kError;
  if (static_cast<uint8_t>(p[2]) != expected_kind) return ParseResult::kError;
  uint32_t length = get_u32(p + 4);
  if (length > kMaxSectionLength) return ParseResult::kError;
  if (bytes.size() < kHeaderSize + length) return ParseResult::kNeedMore;
  section = bytes.substr(kHeaderSize, length);
  if (consumed != nullptr) *consumed = kHeaderSize + length;
  return ParseResult::kFrame;
}

// Request and peer-fetch share a section layout; only the kind byte differs.
ParseResult parse_request_like(std::string_view bytes, uint8_t kind, Request& out,
                               size_t* consumed) {
  std::string_view section;
  ParseResult result = parse_header(bytes, kind, section, consumed);
  if (result != ParseResult::kFrame) return result;
  if (section.size() < kRequestFixed) return ParseResult::kError;
  out.qos_level = static_cast<uint8_t>(bytes[3]);
  out.request_id = get_u64(section.data());
  out.deadline_ms = get_u32(section.data() + 8);
  out.query = section.substr(kRequestFixed);
  return ParseResult::kFrame;
}

// Reply and peer-reply likewise differ only in the kind byte.
ParseResult parse_reply_like(std::string_view bytes, uint8_t kind, Reply& out,
                             size_t* consumed) {
  std::string_view section;
  ParseResult result = parse_header(bytes, kind, section, consumed);
  if (result != ParseResult::kFrame) return result;
  if (section.size() < kReplyFixed) return ParseResult::kError;
  uint8_t status = static_cast<uint8_t>(bytes[3]);
  if (status > static_cast<uint8_t>(http::Fidelity::kDegraded)) return ParseResult::kError;
  out.fidelity = static_cast<http::Fidelity>(status);
  out.request_id = get_u64(section.data());
  out.flags = static_cast<uint8_t>(section[8]);
  out.payload = section.substr(kReplyFixed);
  return ParseResult::kFrame;
}

void encode_request_like(uint8_t kind, const Request& request, std::string& out) {
  uint32_t length = static_cast<uint32_t>(kRequestFixed + request.query.size());
  out.reserve(out.size() + kHeaderSize + length);
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(request.qos_level));
  put_u32(length, out);
  put_u64(request.request_id, out);
  put_u32(request.deadline_ms, out);
  out.append(request.query);
}

void encode_reply_like(uint8_t kind, uint64_t request_id, http::Fidelity fidelity,
                       uint8_t flags, std::string_view payload, std::string& out) {
  uint32_t length = static_cast<uint32_t>(kReplyFixed + payload.size());
  out.reserve(out.size() + kHeaderSize + length);
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(fidelity));
  put_u32(length, out);
  put_u64(request_id, out);
  out.push_back(static_cast<char>(flags));
  out.append(payload);
}

}  // namespace

ParseResult parse_request(std::string_view bytes, Request& out, size_t* consumed) {
  return parse_request_like(bytes, kKindRequest, out, consumed);
}

ParseResult parse_reply(std::string_view bytes, Reply& out, size_t* consumed) {
  return parse_reply_like(bytes, kKindReply, out, consumed);
}

ParseResult parse_peer_fetch(std::string_view bytes, Request& out, size_t* consumed) {
  return parse_request_like(bytes, kKindPeerFetch, out, consumed);
}

ParseResult parse_peer_reply(std::string_view bytes, Reply& out, size_t* consumed) {
  return parse_reply_like(bytes, kKindPeerReply, out, consumed);
}

ParseResult parse_push(std::string_view bytes, Push& out, size_t* consumed) {
  std::string_view section;
  ParseResult result = parse_header(bytes, kKindPeerPush, section, consumed);
  if (result != ParseResult::kFrame) return result;
  if (section.size() < kPushFixed) return ParseResult::kError;
  uint32_t key_len = get_u32(section.data());
  if (key_len > section.size() - kPushFixed) return ParseResult::kError;
  out.key = section.substr(kPushFixed, key_len);
  out.value = section.substr(kPushFixed + key_len);
  return ParseResult::kFrame;
}

ParseResult parse_gossip(std::string_view bytes, Gossip& out, size_t* consumed) {
  std::string_view section;
  ParseResult result = parse_header(bytes, kKindGossip, section, consumed);
  if (result != ParseResult::kFrame) return result;
  if (section.size() != kGossipFixed) return ParseResult::kError;
  out.node = get_u32(section.data());
  out.outstanding = get_u32(section.data() + 4);
  uint64_t bits = get_u64(section.data() + 8);
  std::memcpy(&out.threshold, &bits, sizeof(out.threshold));
  out.overloaded = section[16] != 0;
  return ParseResult::kFrame;
}

uint8_t peek_kind(std::string_view bytes) {
  if (bytes.size() < 3) return 0;
  return static_cast<uint8_t>(bytes[2]);
}

size_t frame_size(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) return 0;
  return kHeaderSize + static_cast<size_t>(get_u32(bytes.data() + 4));
}

void encode_request(const Request& request, std::string& out) {
  encode_request_like(kKindRequest, request, out);
}

void encode_reply(uint64_t request_id, http::Fidelity fidelity, uint8_t flags,
                  std::string_view payload, std::string& out) {
  encode_reply_like(kKindReply, request_id, fidelity, flags, payload, out);
}

void encode_peer_fetch(const Request& request, std::string& out) {
  encode_request_like(kKindPeerFetch, request, out);
}

void encode_peer_reply(uint64_t request_id, http::Fidelity fidelity, uint8_t flags,
                       std::string_view payload, std::string& out) {
  encode_reply_like(kKindPeerReply, request_id, fidelity, flags, payload, out);
}

void encode_push(std::string_view key, std::string_view value, std::string& out) {
  uint32_t length = static_cast<uint32_t>(kPushFixed + key.size() + value.size());
  out.reserve(out.size() + kHeaderSize + length);
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kKindPeerPush));
  out.push_back(0);
  put_u32(length, out);
  put_u32(static_cast<uint32_t>(key.size()), out);
  out.append(key);
  out.append(value);
}

void encode_gossip(const Gossip& gossip, std::string& out) {
  out.reserve(out.size() + kHeaderSize + kGossipFixed);
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kKindGossip));
  out.push_back(0);
  put_u32(static_cast<uint32_t>(kGossipFixed), out);
  put_u32(gossip.node, out);
  put_u32(gossip.outstanding, out);
  uint64_t bits = 0;
  std::memcpy(&bits, &gossip.threshold, sizeof(bits));
  put_u64(bits, out);
  out.push_back(gossip.overloaded ? 1 : 0);
}

uint8_t flags_for(http::Fidelity fidelity) {
  switch (fidelity) {
    case http::Fidelity::kCached:
      return kFlagCacheServed;
    case http::Fidelity::kBusy:
      return kFlagShed;
    case http::Fidelity::kError:
      return kFlagError;
    case http::Fidelity::kDegraded:
      return kFlagDegraded;
    case http::Fidelity::kFull:
      return 0;
  }
  return 0;
}

}  // namespace sbroker::net::frame
