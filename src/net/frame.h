// Length-prefixed compact binary framing for the broker's client wire.
//
// The legacy SBRK codec (http/wire.h) is self-delimiting per field but not
// length-prefixed: a receiver holding a partial message re-parses the whole
// prefix on every arrival, and cannot cheaply tell "incomplete" from the
// frame's total size. This framing fixes both for the hot path: a fixed
// 8-byte header carries the total payload length up front, so the receiver
// does O(1) work per arrival and the parser hands out zero-copy views into
// the receive buffer.
//
// All integers little-endian. Header (8 bytes, both directions):
//
//   offset  size  field
//   ------  ----  --------------------------------------------------------
//   0       u8    magic 0xB7 (never 'S' of SBRK, never an ASCII HTTP method
//                 letter — the daemon sniffs the protocol off this byte)
//   1       u8    version (1)
//   2       u8    kind: 1 = request, 2 = reply
//   3       u8    request: QoS class | reply: status (http::Fidelity)
//   4       u32   length of the kind-specific section that follows
//
// Request section:  u64 request id, u32 deadline_ms, query bytes (rest).
// Reply section:    u64 request id, u8 flight flags, payload bytes (rest).
//
// Flags on a reply describe how the answer was produced (cache-served,
// degraded rewrite, shed, error) so binary clients get the fidelity detail
// the HTTP gateway spells as X-Fidelity + status code.
//
// Federation (src/fed/) rides the same framing on the same sniffed port,
// with four broker-to-broker kinds:
//
//   kind 3 kPeerFetch — a non-owner forwarding a cache miss to the key's
//     ring owner. Section layout identical to a request (the deadline_ms
//     field carries the *remaining* budget, so a slow owner cannot strand
//     the client past its original deadline).
//   kind 4 kPeerReply — the owner's answer; layout identical to a reply.
//   kind 5 kPeerPush  — hot-key replication: u32 key length, key bytes,
//     value bytes (rest). Fire-and-forget, status byte unused.
//   kind 6 kGossip    — periodic load exchange: u32 sender node id,
//     u32 outstanding requests, f64 effective admission threshold (IEEE
//     bits), u8 overload-mode flag. Fire-and-forget.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "http/wire.h"

namespace sbroker::net::frame {

inline constexpr uint8_t kMagic = 0xB7;
inline constexpr uint8_t kVersion = 1;
inline constexpr uint8_t kKindRequest = 1;
inline constexpr uint8_t kKindReply = 2;
inline constexpr uint8_t kKindPeerFetch = 3;
inline constexpr uint8_t kKindPeerReply = 4;
inline constexpr uint8_t kKindPeerPush = 5;
inline constexpr uint8_t kKindGossip = 6;
inline constexpr size_t kHeaderSize = 8;
/// Request section carries id + deadline before the query bytes.
inline constexpr size_t kRequestFixed = 12;
/// Reply section carries id + flags before the payload bytes.
inline constexpr size_t kReplyFixed = 9;
/// Push section carries the key length before the key + value bytes.
inline constexpr size_t kPushFixed = 4;
/// Gossip section is fixed-size: node + outstanding + threshold + mode.
inline constexpr size_t kGossipFixed = 17;
/// Upper bound on the kind-specific section; larger lengths are a protocol
/// error, not a "wait for more bytes" state (same 64 MiB cap as the legacy
/// codec's string limit).
inline constexpr uint32_t kMaxSectionLength = 64u * 1024u * 1024u;

/// Reply flag bits (bitwise OR).
inline constexpr uint8_t kFlagCacheServed = 0x01;  ///< answered from the cache
inline constexpr uint8_t kFlagDegraded = 0x02;     ///< fidelity-reduced rewrite
inline constexpr uint8_t kFlagShed = 0x04;         ///< busy / deadline shed
inline constexpr uint8_t kFlagError = 0x08;        ///< backend or protocol error

/// Decoded request; `query` is a view into the caller's receive buffer and
/// is valid only until that buffer is mutated.
struct Request {
  uint64_t request_id = 0;
  uint8_t qos_level = 1;
  uint32_t deadline_ms = 0;
  std::string_view query;
};

/// Decoded reply; `payload` is a view with the same lifetime rule.
struct Reply {
  uint64_t request_id = 0;
  http::Fidelity fidelity = http::Fidelity::kFull;
  uint8_t flags = 0;
  std::string_view payload;
};

/// Decoded hot-key replication push; both views share the receive-buffer
/// lifetime rule.
struct Push {
  std::string_view key;
  std::string_view value;
};

/// Decoded load-gossip frame (fixed-size section, nothing borrowed).
struct Gossip {
  uint32_t node = 0;         ///< sender's node id within the federation
  uint32_t outstanding = 0;  ///< sender's shared outstanding-request count
  double threshold = 0.0;    ///< sender's live effective admission threshold
  bool overloaded = false;   ///< sender's declared overload mode
};

enum class ParseResult {
  kNeedMore,  ///< not enough bytes for a full frame yet
  kFrame,     ///< one frame decoded; *consumed bytes were used
  kError,     ///< malformed (bad magic/version/kind or oversized length)
};

/// Decodes one request frame from the front of `bytes` without copying.
ParseResult parse_request(std::string_view bytes, Request& out, size_t* consumed);

/// Decodes one reply frame from the front of `bytes` without copying.
ParseResult parse_reply(std::string_view bytes, Reply& out, size_t* consumed);

/// Decodes one peer-fetch frame (request layout under kind kPeerFetch).
ParseResult parse_peer_fetch(std::string_view bytes, Request& out, size_t* consumed);

/// Decodes one peer-reply frame (reply layout under kind kPeerReply).
ParseResult parse_peer_reply(std::string_view bytes, Reply& out, size_t* consumed);

/// Decodes one hot-key push frame.
ParseResult parse_push(std::string_view bytes, Push& out, size_t* consumed);

/// Decodes one gossip frame.
ParseResult parse_gossip(std::string_view bytes, Gossip& out, size_t* consumed);

/// Kind byte of the frame at the front of `bytes`; 0 while fewer than three
/// bytes are buffered. The daemon's ingress loop dispatches on this before
/// picking a kind-specific parser.
uint8_t peek_kind(std::string_view bytes);

/// Total frame size announced by a header, or 0 when fewer than kHeaderSize
/// bytes are available (the receiver can size its read-ahead off this).
size_t frame_size(std::string_view bytes);

/// Appends an encoded request frame to `out` (no temporary string).
void encode_request(const Request& request, std::string& out);

/// Appends an encoded reply frame to `out`. The status byte is the fidelity;
/// `flags` travels in the reply section.
void encode_reply(uint64_t request_id, http::Fidelity fidelity, uint8_t flags,
                  std::string_view payload, std::string& out);

/// Appends an encoded peer-fetch frame (request layout, kind kPeerFetch).
void encode_peer_fetch(const Request& request, std::string& out);

/// Appends an encoded peer-reply frame (reply layout, kind kPeerReply).
void encode_peer_reply(uint64_t request_id, http::Fidelity fidelity, uint8_t flags,
                       std::string_view payload, std::string& out);

/// Appends an encoded hot-key push frame.
void encode_push(std::string_view key, std::string_view value, std::string& out);

/// Appends an encoded gossip frame.
void encode_gossip(const Gossip& gossip, std::string& out);

/// Flags a reply should carry for a fidelity (kCacheServed for kCached,
/// kShed for kBusy, ...). The daemon ORs in kFlagDegraded itself.
uint8_t flags_for(http::Fidelity fidelity);

}  // namespace sbroker::net::frame
