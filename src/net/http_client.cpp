#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "http/parser.h"

namespace sbroker::net {
namespace {

int blocking_connect(uint16_t port, int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<http::Response> http_fetch(uint16_t port, const http::Request& request,
                                         int timeout_ms) {
  int fd = blocking_connect(port, timeout_ms);
  if (fd < 0) return std::nullopt;
  if (!send_all(fd, request.serialize())) {
    close(fd);
    return std::nullopt;
  }
  http::ResponseParser parser;
  http::Response resp;
  char buf[16384];
  while (true) {
    auto result = parser.next(resp);
    if (result == http::ParseResult::kMessage) {
      close(fd);
      return resp;
    }
    if (result == http::ParseResult::kError) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout, error, or EOF before a full message
    parser.feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  close(fd);
  return std::nullopt;
}

BrokerClient::BrokerClient(uint16_t port, int timeout_ms) : timeout_ms_(timeout_ms) {
  fd_ = blocking_connect(port, timeout_ms);
  if (fd_ < 0) throw std::runtime_error("BrokerClient: connect failed");
}

BrokerClient::~BrokerClient() {
  if (fd_ >= 0) close(fd_);
}

std::optional<http::BrokerReply> BrokerClient::call(const http::BrokerRequest& request) {
  if (fd_ < 0) return std::nullopt;
  if (!send_all(fd_, http::encode(request))) return std::nullopt;
  char buf[16384];
  while (true) {
    size_t consumed = 0;
    if (auto reply = http::decode_reply(inbox_, &consumed)) {
      inbox_.erase(0, consumed);
      return reply;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    inbox_.append(buf, static_cast<size_t>(n));
  }
}

HttpKeepAliveClient::HttpKeepAliveClient(uint16_t port, int timeout_ms) {
  fd_ = blocking_connect(port, timeout_ms);
  if (fd_ < 0) throw std::runtime_error("HttpKeepAliveClient: connect failed");
}

HttpKeepAliveClient::~HttpKeepAliveClient() {
  if (fd_ >= 0) close(fd_);
}

std::optional<http::Response> HttpKeepAliveClient::call(const http::Request& request) {
  if (fd_ < 0) return std::nullopt;
  if (!send_all(fd_, request.serialize())) return std::nullopt;
  http::Response resp;
  char buf[16384];
  while (true) {
    auto result = parser_.next(resp);
    if (result == http::ParseResult::kMessage) return resp;
    if (result == http::ParseResult::kError) return std::nullopt;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    parser_.feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

FrameClient::FrameClient(uint16_t port, int timeout_ms) : timeout_ms_(timeout_ms) {
  fd_ = blocking_connect(port, timeout_ms);
  if (fd_ < 0) throw std::runtime_error("FrameClient: connect failed");
}

FrameClient::~FrameClient() {
  if (fd_ >= 0) close(fd_);
}

bool FrameClient::send_raw(std::string_view bytes) {
  return fd_ >= 0 && send_all(fd_, bytes);
}

std::optional<FrameReply> FrameClient::read_reply() {
  if (fd_ < 0) return std::nullopt;
  char buf[16384];
  while (true) {
    frame::Reply decoded;
    size_t consumed = 0;
    frame::ParseResult r = frame::parse_reply(inbox_, decoded, &consumed);
    if (r == frame::ParseResult::kFrame) {
      FrameReply reply{decoded.request_id, decoded.fidelity, decoded.flags,
                       std::string(decoded.payload)};
      inbox_.erase(0, consumed);
      return reply;
    }
    if (r == frame::ParseResult::kError) return std::nullopt;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    inbox_.append(buf, static_cast<size_t>(n));
  }
}

std::optional<FrameReply> FrameClient::call(uint64_t request_id,
                                            std::string_view query,
                                            uint8_t qos_level,
                                            uint32_t deadline_ms) {
  frame::Request req{request_id, qos_level, deadline_ms, query};
  outbox_.clear();
  frame::encode_request(req, outbox_);
  if (!send_raw(outbox_)) return std::nullopt;
  return read_reply();
}

std::vector<FrameReply> FrameClient::call_burst(
    uint64_t first_id, const std::vector<std::string>& queries,
    uint8_t qos_level, uint32_t deadline_ms) {
  std::vector<FrameReply> replies;
  outbox_.clear();
  for (size_t i = 0; i < queries.size(); ++i) {
    frame::Request req{first_id + i, qos_level, deadline_ms, queries[i]};
    frame::encode_request(req, outbox_);
  }
  if (!send_raw(outbox_)) return replies;
  replies.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto reply = read_reply();
    if (!reply) break;
    replies.push_back(std::move(*reply));
  }
  return replies;
}

}  // namespace sbroker::net
