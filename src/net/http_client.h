// Blocking HTTP and broker-protocol clients for tests and examples.
//
// These run on the *caller's* thread with ordinary blocking sockets — the
// natural shape for a test driving a reactor that runs on another thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "http/wire.h"
#include "net/frame.h"
#include "net/net_config.h"

namespace sbroker::net {

/// One-shot HTTP exchange with 127.0.0.1:`port`. Opens a connection, sends
/// `request`, reads one response. nullopt on connect/IO/parse failure or
/// after `timeout_ms`.
std::optional<http::Response> http_fetch(uint16_t port, const http::Request& request,
                                         int timeout_ms = kDefaultClientTimeoutMs);

/// Persistent blocking connection speaking the broker wire protocol.
class BrokerClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit BrokerClient(uint16_t port, int timeout_ms = kDefaultClientTimeoutMs);
  ~BrokerClient();
  BrokerClient(const BrokerClient&) = delete;
  BrokerClient& operator=(const BrokerClient&) = delete;

  /// Sends a request and waits for the matching reply (replies arrive in
  /// submission order on one connection). nullopt on IO error or timeout.
  std::optional<http::BrokerReply> call(const http::BrokerRequest& request);

 private:
  int fd_;
  int timeout_ms_;
  std::string inbox_;
};

/// Persistent blocking HTTP/1.1 keep-alive connection: many request/response
/// exchanges on one socket. http_fetch opens a fresh connection per call —
/// the wrong shape for a load generator, where connection setup would
/// dominate the measurement.
class HttpKeepAliveClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit HttpKeepAliveClient(uint16_t port,
                               int timeout_ms = kDefaultClientTimeoutMs);
  ~HttpKeepAliveClient();
  HttpKeepAliveClient(const HttpKeepAliveClient&) = delete;
  HttpKeepAliveClient& operator=(const HttpKeepAliveClient&) = delete;

  /// Sends one request and waits for its response. nullopt on IO error,
  /// parse error, or timeout (the connection is unusable afterwards).
  std::optional<http::Response> call(const http::Request& request);

 private:
  int fd_;
  http::ResponseParser parser_;
};

/// Reply from a FrameClient exchange; owns its payload (unlike frame::Reply,
/// whose payload is a view into a receive buffer).
struct FrameReply {
  uint64_t request_id = 0;
  http::Fidelity fidelity = http::Fidelity::kFull;
  uint8_t flags = 0;
  std::string payload;
};

/// Persistent blocking connection speaking the binary frame protocol
/// (net/frame.h) against the daemon's main port.
class FrameClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit FrameClient(uint16_t port, int timeout_ms = kDefaultClientTimeoutMs);
  ~FrameClient();
  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// One frame exchange: sends the request, waits for the matching reply.
  /// nullopt on IO error or timeout.
  std::optional<FrameReply> call(uint64_t request_id, std::string_view query,
                                 uint8_t qos_level = 1, uint32_t deadline_ms = 0);

  /// Pipelined burst: encodes every request into one send (ids are
  /// `first_id, first_id+1, ...`), then collects that many replies. The
  /// returned vector is shorter than `queries` if the connection failed
  /// mid-burst.
  std::vector<FrameReply> call_burst(uint64_t first_id,
                                     const std::vector<std::string>& queries,
                                     uint8_t qos_level = 1,
                                     uint32_t deadline_ms = 0);

  /// Raw escape hatches for protocol-robustness tests: push arbitrary bytes
  /// (e.g. half a frame) and read back one reply frame.
  bool send_raw(std::string_view bytes);
  std::optional<FrameReply> read_reply();

 private:
  int fd_;
  int timeout_ms_;
  std::string inbox_;
  std::string outbox_;  ///< encode scratch, capacity reused across calls
};

}  // namespace sbroker::net
