// Blocking HTTP and broker-protocol clients for tests and examples.
//
// These run on the *caller's* thread with ordinary blocking sockets — the
// natural shape for a test driving a reactor that runs on another thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "http/message.h"
#include "http/wire.h"
#include "net/net_config.h"

namespace sbroker::net {

/// One-shot HTTP exchange with 127.0.0.1:`port`. Opens a connection, sends
/// `request`, reads one response. nullopt on connect/IO/parse failure or
/// after `timeout_ms`.
std::optional<http::Response> http_fetch(uint16_t port, const http::Request& request,
                                         int timeout_ms = kDefaultClientTimeoutMs);

/// Persistent blocking connection speaking the broker wire protocol.
class BrokerClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit BrokerClient(uint16_t port, int timeout_ms = kDefaultClientTimeoutMs);
  ~BrokerClient();
  BrokerClient(const BrokerClient&) = delete;
  BrokerClient& operator=(const BrokerClient&) = delete;

  /// Sends a request and waits for the matching reply (replies arrive in
  /// submission order on one connection). nullopt on IO error or timeout.
  std::optional<http::BrokerReply> call(const http::BrokerRequest& request);

 private:
  int fd_;
  int timeout_ms_;
  std::string inbox_;
};

}  // namespace sbroker::net
