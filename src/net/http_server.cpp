#include "net/http_server.h"

#include <vector>

#include "http/mget.h"
#include "util/log.h"

namespace sbroker::net {

struct HttpServer::Conn {
  std::shared_ptr<TcpConn> tcp;
  http::RequestParser parser;
};

HttpServer::HttpServer(Reactor& reactor, uint16_t port, Handler fallback)
    : reactor_(reactor),
      fallback_(std::move(fallback)),
      listener_(reactor, port, [this](int fd) {
        auto conn = std::make_shared<Conn>();
        conn->tcp = TcpConn::adopt(reactor_, fd);
        conn->tcp->start(
            [this, conn](std::string_view bytes) {
              conn->parser.feed(bytes);
              http::Request req;
              while (true) {
                auto result = conn->parser.next(req);
                if (result == http::ParseResult::kNeedMore) return;
                if (result == http::ParseResult::kError) {
                  conn->tcp->send(http::make_response(400, "bad request").serialize());
                  conn->tcp->shutdown();
                  return;
                }
                ++*requests_served_;
                auto tcp = conn->tcp;
                handle(req, [tcp](http::Response resp) {
                  if (!tcp->closed()) tcp->send(resp.serialize());
                });
              }
            },
            [conn]() {
              // Connection closed; `conn` dies with this closure.
            });
      }) {}

void HttpServer::route(std::string target, Handler handler) {
  routes_[std::move(target)] = std::move(handler);
}

void HttpServer::handle(const http::Request& req, Responder respond) {
  // MGET fan-out: answer each target through the normal dispatch and stitch
  // the parts together in order once all have arrived.
  if (auto targets = http::parse_mget_targets(req)) {
    auto parts = std::make_shared<std::vector<http::Response>>(targets->size());
    auto remaining = std::make_shared<size_t>(targets->size());
    auto respond_shared = std::make_shared<Responder>(std::move(respond));
    for (size_t i = 0; i < targets->size(); ++i) {
      http::Request sub;
      sub.method = "GET";
      sub.target = (*targets)[i];
      sub.version = req.version;
      handle(sub, [parts, remaining, respond_shared, i](http::Response resp) {
        (*parts)[i] = std::move(resp);
        if (--*remaining == 0) {
          (*respond_shared)(http::make_mget_response(*parts));
        }
      });
    }
    return;
  }

  auto it = routes_.find(req.target);
  if (it != routes_.end()) {
    it->second(req, std::move(respond));
    return;
  }
  fallback_(req, std::move(respond));
}

}  // namespace sbroker::net
