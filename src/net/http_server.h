// Minimal HTTP server on the reactor.
//
// Plays the backend Web server in the real-socket testbed. Handlers may
// answer synchronously or hold the responder and answer later (from a
// reactor timer), which is how the test backends simulate bounded CGI
// processing time. Supports MGET natively: when the handler registry is
// used, an MGET request fans out to the per-target handlers and the parts
// are recombined (http/mget.h framing).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "http/message.h"
#include "http/parser.h"
#include "net/tcp.h"

namespace sbroker::net {

class HttpServer {
 public:
  /// Call exactly once with the response for the request.
  using Responder = std::function<void(http::Response)>;
  /// May respond re-entrantly or later.
  using Handler = std::function<void(const http::Request&, Responder)>;

  /// `fallback` handles every request that no registered route matches.
  HttpServer(Reactor& reactor, uint16_t port, Handler fallback);

  /// Exact-match route on the request target.
  void route(std::string target, Handler handler);

  uint16_t port() const { return listener_.port(); }
  uint64_t requests_served() const { return *requests_served_; }

 private:
  struct Conn;
  void handle(const http::Request& req, Responder respond);

  Reactor& reactor_;
  Handler fallback_;
  std::unordered_map<std::string, Handler> routes_;
  std::shared_ptr<uint64_t> requests_served_ = std::make_shared<uint64_t>(0);
  TcpListener listener_;
};

}  // namespace sbroker::net
