// Shared networking defaults.
//
// Every blocking client helper used by tests, examples and the load
// generator bounds its wait with the same default, defined once here —
// previously BrokerClient hard-coded 5000 ms while the UDP helper hard-coded
// 2000 ms, so "the client gave up" meant different things per transport. A
// client that hits this bound observed a broker timeout; the HTTP gateway
// maps the broker's own deadline sheds to 504 Gateway Timeout before the
// client ever gets here.
#pragma once

namespace sbroker::net {

/// Default wait bound for the blocking client helpers (BrokerClient,
/// http_fetch, udp_exchange), milliseconds.
inline constexpr int kDefaultClientTimeoutMs = 5000;

}  // namespace sbroker::net
