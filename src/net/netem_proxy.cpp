#include "net/netem_proxy.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace sbroker::net {

// One relayed connection: the accepted (daemon-side) socket and its upstream
// (backend-side) peer. Direction 0 = client->upstream, 1 = upstream->client.
struct NetemProxy::Pipe {
  std::shared_ptr<TcpConn> client;
  std::shared_ptr<TcpConn> upstream;
  double last_delivery[2] = {0.0, 0.0};  ///< per-direction FIFO clamp
  uint64_t in_flight[2] = {0, 0};        ///< delayed chunks not yet written
  bool source_closed[2] = {false, false};

  std::shared_ptr<TcpConn>& dest(int dir) { return dir == 0 ? upstream : client; }

  /// After the source side closed, the destination shuts down only once the
  /// last delayed chunk has been written — a close must not beat the bytes.
  void maybe_finish(int dir) {
    if (source_closed[dir] && in_flight[dir] == 0 && dest(dir) &&
        !dest(dir)->closed()) {
      dest(dir)->shutdown();
    }
  }
};

NetemProxy::NetemProxy(uint16_t upstream_port, sim::Link::Params profile,
                       uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {
  started_at_ = reactor_.now();
  listener_ = std::make_unique<TcpListener>(
      reactor_, 0, [this, upstream_port](int fd) {
        auto pipe = std::make_shared<Pipe>();
        pipe->client = TcpConn::adopt(reactor_, fd);
        int up_fd = -1;
        try {
          up_fd = connect_tcp(upstream_port);
        } catch (const std::exception&) {
          pipe->client->abort();
          return;
        }
        pipe->upstream = TcpConn::adopt(reactor_, up_fd);
        pipe->client->start(
            [this, pipe](std::string_view bytes) {
              relay(pipe, /*downstream=*/false, std::string(bytes));
            },
            [pipe]() {
              pipe->source_closed[0] = true;
              pipe->maybe_finish(0);
            });
        pipe->upstream->start(
            [this, pipe](std::string_view bytes) {
              relay(pipe, /*downstream=*/true, std::string(bytes));
            },
            [pipe]() {
              pipe->source_closed[1] = true;
              pipe->maybe_finish(1);
            });
      });
  port_ = listener_->port();
  thread_ = std::thread([this] { reactor_.run(); });
}

NetemProxy::~NetemProxy() {
  reactor_.stop();
  if (thread_.joinable()) thread_.join();
}

double NetemProxy::bandwidth_at(double now) const {
  if (profile_.bandwidth_trace.empty()) return profile_.bytes_per_second;
  double offset = std::max(0.0, now - started_at_);
  if (profile_.trace_period > 0.0) {
    offset = std::fmod(offset, profile_.trace_period);
  }
  double bw = profile_.bandwidth_trace.front().bytes_per_second;
  for (const sim::Link::BandwidthStep& step : profile_.bandwidth_trace) {
    if (step.at > offset) break;
    bw = step.bytes_per_second;
  }
  return bw;
}

void NetemProxy::relay(const std::shared_ptr<Pipe>& pipe, bool downstream,
                       std::string bytes) {
  int dir = downstream ? 1 : 0;
  bytes_relayed_.fetch_add(bytes.size(), std::memory_order_relaxed);
  chunks_relayed_.fetch_add(1, std::memory_order_relaxed);
  double now = reactor_.now();
  // Shared channel per direction: this chunk transmits after everything
  // already on the wire, at whatever the trace grants at that moment.
  double tx_end = std::max(now, tx_free_at_[dir]);
  double bw = bandwidth_at(tx_end);
  if (bw > 0) tx_end += static_cast<double>(bytes.size()) / bw;
  tx_free_at_[dir] = tx_end;
  double tail = profile_.latency;
  if (profile_.jitter > 0) tail += rng_.uniform_real(0.0, profile_.jitter);
  double deliver_at = tx_end + tail;
  // FIFO clamp per connection direction: TCP never reorders, so neither may
  // the shim when jitter draws cross.
  if (deliver_at < pipe->last_delivery[dir]) {
    deliver_at = pipe->last_delivery[dir];
  }
  pipe->last_delivery[dir] = deliver_at;
  double delay = deliver_at - now;
  uint64_t delay_ns = static_cast<uint64_t>(std::max(0.0, delay) * 1e9);
  uint64_t prev = max_delay_ns_.load(std::memory_order_relaxed);
  while (delay_ns > prev &&
         !max_delay_ns_.compare_exchange_weak(prev, delay_ns,
                                              std::memory_order_relaxed)) {
  }
  std::shared_ptr<TcpConn> dst = pipe->dest(dir);
  if (delay <= 0.0) {
    if (!dst->closed()) dst->send(bytes);
    return;
  }
  ++pipe->in_flight[dir];
  reactor_.add_timer(delay, [pipe, dir, dst, bytes = std::move(bytes)]() {
    if (!dst->closed()) dst->send(bytes);
    --pipe->in_flight[dir];
    pipe->maybe_finish(dir);
  });
}

}  // namespace sbroker::net
