// Userspace link-degradation shim (tc/netem in a process).
//
// A `NetemProxy` is a TCP relay that sits between the real broker daemon and
// a backend: it accepts connections on its own port, opens one upstream
// connection per accepted one, and forwards bytes in both directions after
// applying a link profile — fixed propagation latency, uniform jitter, and a
// step-trace of bandwidth over time (the cellular-uplink shape `sim::Link`
// models in virtual time, here in wall-clock time). All connections through
// one proxy share the bandwidth cursor per direction, so a sag queues every
// channel behind it — the congested backend channel of the paper's §I,
// finally applied to the daemon's deadline/retry/SWR/overload machinery over
// real sockets.
//
// Byte order per connection direction is preserved: delayed chunks are
// clamped monotone exactly like sim::Link's FIFO delivery (TCP cannot
// reorder; neither may the shim).
//
// The proxy runs its own reactor thread; construct, read `port()`, point a
// backend channel at it, destroy to tear down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "net/tcp.h"
#include "sim/link.h"
#include "util/rng.h"

namespace sbroker::net {

class NetemProxy {
 public:
  /// Reuses sim::Link::Params as the profile: latency/jitter in seconds,
  /// bandwidth_trace in bytes/second over wall-clock seconds since proxy
  /// start (trace_period loops it). An all-zero profile relays unshaped.
  NetemProxy(uint16_t upstream_port, sim::Link::Params profile,
             uint64_t seed = 1);
  ~NetemProxy();
  NetemProxy(const NetemProxy&) = delete;
  NetemProxy& operator=(const NetemProxy&) = delete;

  uint16_t port() const { return port_; }

  uint64_t bytes_relayed() const { return bytes_relayed_.load(); }
  uint64_t chunks_relayed() const { return chunks_relayed_.load(); }
  /// Worst single-chunk delay applied so far, seconds.
  double max_delay() const { return max_delay_ns_.load() * 1e-9; }

 private:
  struct Pipe;

  void relay(const std::shared_ptr<Pipe>& pipe, bool downstream,
             std::string bytes);
  double bandwidth_at(double now) const;

  Reactor reactor_;
  sim::Link::Params profile_;
  util::Rng rng_;  // reactor thread only
  double started_at_ = 0.0;
  // Shared channel cursors (reactor thread only): when each direction's
  // transmission pipe frees up.
  double tx_free_at_[2] = {0.0, 0.0};
  std::unique_ptr<TcpListener> listener_;
  uint16_t port_ = 0;
  std::atomic<uint64_t> bytes_relayed_{0};
  std::atomic<uint64_t> chunks_relayed_{0};
  std::atomic<uint64_t> max_delay_ns_{0};
  std::thread thread_;
};

}  // namespace sbroker::net
