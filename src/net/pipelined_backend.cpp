#include "net/pipelined_backend.h"

#include <algorithm>

#include "core/cluster.h"
#include "http/mget.h"
#include "util/log.h"

namespace sbroker::net {

PipelinedBackend::PipelinedBackend(Reactor& reactor, uint16_t port)
    : PipelinedBackend(reactor, port, Config()) {}

PipelinedBackend::PipelinedBackend(Reactor& reactor, uint16_t port, Config config)
    : reactor_(reactor), port_(port), config_(config) {
  if (config_.max_connections == 0) config_.max_connections = 1;
  if (config_.pipeline_depth == 0) config_.pipeline_depth = 1;
  if (config_.max_attempts == 0) config_.max_attempts = 1;
}

size_t PipelinedBackend::in_flight() const {
  size_t total = 0;
  for (const auto& ch : channels_) total += ch->pipeline.size();
  return total;
}

core::ChannelStats PipelinedBackend::channel_stats() const {
  core::ChannelStats s = stats_;
  s.open_connections = channels_.size();
  return s;
}

void PipelinedBackend::invoke(const Call& call, Completion done) {
  invoke(call, nullptr, std::move(done));
}

void PipelinedBackend::invoke(const Call& call, const core::CancelTokenPtr& token,
                              Completion done) {
  ++stats_.calls;
  auto records = core::ClusterEngine::split_records(call.payload);
  http::Request request;
  if (records.size() == 1) {
    request.method = "GET";
    request.target = records[0];
  } else {
    request = http::make_mget_request(records);
  }
  request.headers.set("Host", "127.0.0.1");

  // The broker's remaining deadline bounds the exchange; without one the
  // channel's own response_timeout still caps a half-stalled connection.
  double timeout = call.timeout > 0.0 ? call.timeout : config_.response_timeout;
  if (timeout > 0.0) {
    request.headers.set(std::string(http::kDeadlineHeader),
                        std::to_string(static_cast<long>(timeout * 1000.0)));
  }

  // Backpressure: the broker's ConnectionPool enforces the same bound ahead
  // of us when configured via Config::from_pool; this is the wire-side
  // safety net (prefetch or a mismatched pool config can still overrun).
  if (in_flight() >= config_.max_connections * config_.pipeline_depth) {
    ++stats_.rejections;
    fail_later(std::move(done), "backend channel saturated");
    return;
  }

  auto exchange = std::make_shared<Exchange>();
  exchange->wire = request.serialize();
  exchange->parts_expected = records.size();
  exchange->done = std::move(done);
  if (timeout > 0.0) exchange->deadline_at = reactor_.now() + timeout;

  if (token) {
    std::weak_ptr<PipelinedBackend> weak_self = weak_from_this();
    std::weak_ptr<Exchange> weak_exchange = exchange;
    token->set_callback([weak_self, weak_exchange]() {
      auto self = weak_self.lock();
      auto ex = weak_exchange.lock();
      if (self && ex) self->abandon(ex, "exchange cancelled", /*is_timeout=*/false);
    });
    if (exchange->completed) return;  // token was already cancelled
  }

  double deadline_at = exchange->deadline_at;
  enqueue(std::move(exchange), /*allow_overflow=*/false);
  if (deadline_at > 0.0) arm_sweep(deadline_at);
  (void)call.needs_connection_setup;  // real connections open on demand
}

void PipelinedBackend::enqueue(ExchangePtr exchange, bool allow_overflow) {
  Channel* ch = pick_channel(allow_overflow);
  if (!ch) {
    complete(exchange, false,
             connect_error_.empty()
                 ? "backend channel saturated"
                 : "backend connect failed: " + connect_error_);
    return;
  }
  ++exchange->attempts;
  exchange->channel = ch->id;
  ch->outbox.append(exchange->wire);
  ++ch->unflushed;
  ch->pipeline.push_back(std::move(exchange));
  stats_.peak_in_flight =
      std::max<uint64_t>(stats_.peak_in_flight, ch->pipeline.size());
  schedule_flush();
}

PipelinedBackend::Channel* PipelinedBackend::pick_channel(bool allow_overflow) {
  Channel* best = nullptr;
  for (const auto& ch : channels_) {
    if (ch->conn->closed()) continue;
    if (!best || ch->pipeline.size() < best->pipeline.size()) best = ch.get();
  }
  // Mirror ConnectionPool::acquire: least-loaded existing connection wins;
  // a new one opens only when every open connection is at depth.
  if (best && best->pipeline.size() < config_.pipeline_depth) return best;
  if (channels_.size() < config_.max_connections) {
    if (Channel* fresh = open_channel()) return fresh;
  }
  return allow_overflow ? best : nullptr;
}

PipelinedBackend::Channel* PipelinedBackend::open_channel() {
  int fd;
  try {
    fd = connect_tcp(port_);
  } catch (const std::exception& e) {
    connect_error_ = e.what();
    return nullptr;
  }
  connect_error_.clear();
  auto ch = std::make_shared<Channel>();
  ch->id = next_channel_id_++;
  ch->conn = TcpConn::adopt(reactor_, fd);
  ++stats_.connections_opened;
  uint64_t id = ch->id;
  std::weak_ptr<PipelinedBackend> weak = weak_from_this();
  ch->conn->start(
      [weak, id](std::string_view bytes) {
        if (auto self = weak.lock()) self->on_data(id, bytes);
      },
      [weak, id]() {
        if (auto self = weak.lock()) self->handle_close(id);
      });
  channels_.push_back(ch);
  return ch.get();
}

std::shared_ptr<PipelinedBackend::Channel> PipelinedBackend::find_channel(
    uint64_t id) {
  for (const auto& ch : channels_) {
    if (ch->id == id) return ch;
  }
  return nullptr;
}

void PipelinedBackend::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  std::weak_ptr<PipelinedBackend> weak = weak_from_this();
  reactor_.add_timer(0.0, [weak]() {
    if (auto self = weak.lock()) self->flush_all();
  });
}

void PipelinedBackend::flush_all() {
  flush_scheduled_ = false;
  // Snapshot: a failed send closes its connection re-entrantly, which
  // mutates channels_ (handle_close erases and may re-enqueue elsewhere).
  std::vector<std::shared_ptr<Channel>> snapshot = channels_;
  for (const auto& ch : snapshot) {
    if (ch->outbox.empty() || ch->conn->closed()) continue;
    ++stats_.flushes;
    stats_.requests_written += ch->unflushed;
    ch->unflushed = 0;
    std::string bytes;
    bytes.swap(ch->outbox);
    ch->conn->send(bytes);
  }
}

void PipelinedBackend::on_data(uint64_t channel_id, std::string_view bytes) {
  std::shared_ptr<Channel> ch = find_channel(channel_id);
  if (!ch) return;
  ch->parser.feed(bytes);
  while (true) {
    http::Response resp;
    auto result = ch->parser.next(resp);
    if (result == http::ParseResult::kNeedMore) return;
    if (result == http::ParseResult::kError) {
      // handle_close fails the head (parser in error) and re-issues the rest.
      ch->conn->abort();
      return;
    }
    if (ch->pipeline.empty()) {
      SBROKER_WARN("pipelined-backend") << "unsolicited backend response; closing";
      ch->conn->abort();
      return;
    }
    ExchangePtr exchange = ch->pipeline.front();
    ch->pipeline.pop_front();
    if (exchange->parts_expected > 1) {
      auto parts = http::split_mget_response(resp);
      if (!parts || parts->size() != exchange->parts_expected) {
        complete(exchange, false, "bad MGET framing from backend");
      } else {
        std::vector<std::string> bodies;
        bodies.reserve(parts->size());
        for (auto& part : *parts) bodies.push_back(std::move(part.body));
        complete(exchange, true, core::ClusterEngine::join_payloads(bodies));
      }
    } else {
      complete(exchange, resp.status == 200, std::move(resp.body));
    }
    if (ch->conn->closed()) return;  // a completion may have torn things down
  }
}

void PipelinedBackend::handle_close(uint64_t channel_id) {
  auto it = std::find_if(
      channels_.begin(), channels_.end(),
      [channel_id](const std::shared_ptr<Channel>& c) { return c->id == channel_id; });
  if (it == channels_.end()) return;
  std::shared_ptr<Channel> ch = *it;
  channels_.erase(it);

  // The head exchange is mid-response iff the parser holds partial bytes (or
  // went sticky-error): re-issuing it could double-execute, so it fails.
  // Everything behind it was written (or queued) but not yet answered at
  // all — those re-issue on a surviving or fresh connection, depth cap
  // relaxed because their in-flight slots were already accounted for.
  bool malformed = ch->parser.in_error();
  bool partial = malformed || ch->parser.buffered() > 0;
  bool head = true;
  for (ExchangePtr& exchange : ch->pipeline) {
    bool was_head = head;
    head = false;
    if (exchange->completed) continue;
    if (was_head && partial) {
      complete(exchange, false,
               malformed ? "backend sent malformed response"
                         : "backend connection closed mid-response");
      continue;
    }
    if (exchange->attempts >= config_.max_attempts) {
      complete(exchange, false, "backend connection closed");
      continue;
    }
    ++stats_.retries;
    enqueue(std::move(exchange), /*allow_overflow=*/true);
  }
  ch->pipeline.clear();
}

void PipelinedBackend::complete(const ExchangePtr& exchange, bool ok,
                                std::string payload) {
  if (exchange->completed) return;
  exchange->completed = true;
  if (ok) {
    exchange->done(reactor_.now(), true, std::move(payload));
    return;
  }
  fail_later(std::move(exchange->done), std::move(payload));
}

void PipelinedBackend::fail_later(Completion done, std::string reason) {
  // Failures can surface re-entrantly inside invoke() (connect refused,
  // saturation); deferring them keeps the broker's dispatch loop from
  // recursing through an entire queue of doomed batches.
  reactor_.add_timer(0.0, [&reactor = reactor_, done = std::move(done),
                           reason = std::move(reason)]() {
    done(reactor.now(), false, reason);
  });
}

void PipelinedBackend::abandon(const ExchangePtr& exchange, std::string reason,
                               bool is_timeout) {
  if (exchange->completed) return;
  if (is_timeout) {
    ++stats_.timeouts;
  } else {
    ++stats_.cancels;
  }
  complete(exchange, false, std::move(reason));
  // FIFO matching past an abandoned exchange would mis-pair every later
  // response on this connection, so the connection dies with it; the close
  // path re-issues the other queued exchanges exactly like connection loss.
  if (auto ch = find_channel(exchange->channel); ch && !ch->conn->closed()) {
    ch->conn->abort();
  }
}

void PipelinedBackend::arm_sweep(double deadline_at) {
  if (sweep_armed_ && deadline_at >= next_sweep_at_ - 1e-9) return;
  if (sweep_armed_) reactor_.cancel_timer(sweep_timer_);
  sweep_armed_ = true;
  next_sweep_at_ = deadline_at;
  std::weak_ptr<PipelinedBackend> weak = weak_from_this();
  sweep_timer_ =
      reactor_.add_timer(std::max(0.0, deadline_at - reactor_.now()), [weak]() {
        if (auto self = weak.lock()) self->sweep_timeouts();
      });
}

void PipelinedBackend::sweep_timeouts() {
  sweep_armed_ = false;
  double now = reactor_.now();
  // Collect first: abandoning kills connections, which mutates channels_
  // (handle_close erases the channel and re-enqueues its survivors).
  std::vector<ExchangePtr> overdue;
  for (const auto& ch : channels_) {
    for (const auto& exchange : ch->pipeline) {
      if (exchange->completed || exchange->deadline_at <= 0.0) continue;
      if (exchange->deadline_at <= now + 1e-9) overdue.push_back(exchange);
    }
  }
  for (const ExchangePtr& exchange : overdue) {
    abandon(exchange, "backend response timeout", /*is_timeout=*/true);
  }
  // Re-arm for the earliest exchange still pending (survivors keep their
  // original deadlines across re-issues).
  double next = 0.0;
  for (const auto& ch : channels_) {
    for (const auto& exchange : ch->pipeline) {
      if (exchange->completed || exchange->deadline_at <= 0.0) continue;
      if (next == 0.0 || exchange->deadline_at < next) next = exchange->deadline_at;
    }
  }
  if (next > 0.0) arm_sweep(next);
}

}  // namespace sbroker::net
