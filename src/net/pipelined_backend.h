// Pipelined, multiplexed backend channel.
//
// The paper's Section III claims "a single connection between the service
// broker and the backend server can be multiplexed to serve multiple
// applications". core::ConnectionPool models that accounting; this class
// makes the real wire honor it: a small fixed set of persistent TCP
// connections to one HTTP backend, each carrying many in-flight requests at
// once (HTTP/1.1 pipelining — responses come back in request order, so a
// per-connection FIFO of pending exchanges matches them exactly).
//
// Compared to the stop-and-wait HttpBackend (one outstanding request per
// connection, ~one socket per in-flight request under load), this channel:
//
//   * caps physical connections at Config::max_connections and pipelines up
//     to Config::pipeline_depth exchanges per connection — at concurrency C
//     the daemon keeps min(C, max_connections) hot sockets instead of ~C;
//   * coalesces writes: invoke() appends to a per-connection outbox and one
//     zero-delay reactor timer flushes every outbox once per wakeup, so a
//     burst of dispatches becomes one send() per connection, not one per
//     request;
//   * applies backpressure: past max_connections * pipeline_depth total
//     in-flight, invoke() fails fast (ok=false, "channel saturated").
//     Construct with Config::from_pool(broker.pool) and the broker's own
//     ConnectionPool accounting enforces the identical bound first, so sim
//     and real substrates agree and the channel cap is a safety net;
//   * recovers from mid-pipeline connection loss: the head exchange is
//     failed only if its response was partially received (re-issuing it
//     could double-execute); every other queued exchange is re-issued on a
//     surviving or fresh connection, each completing exactly once, with at
//     most Config::max_attempts assignments before it fails;
//   * bounds half-stalled connections: an exchange that has not produced a
//     full response within its deadline (Call::timeout when the broker set
//     one, else Config::response_timeout) fails with a timeout, its
//     connection is killed — FIFO matching past an abandoned exchange would
//     mis-pair — and the other queued exchanges re-issue via the loss path.
//     A broker cancel token (deadline harvest) triggers the same teardown.
//
// Single-threaded: everything runs on the owning shard's reactor thread.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/pool.h"
#include "http/parser.h"
#include "net/tcp.h"

namespace sbroker::net {

class PipelinedBackend : public core::Backend,
                         public std::enable_shared_from_this<PipelinedBackend> {
 public:
  struct Config {
    size_t max_connections = 4;  ///< physical connections to the backend
    size_t pipeline_depth = 64;  ///< in-flight exchanges per connection
    size_t max_attempts = 2;     ///< connection assignments per exchange
    /// Fallback bound on how long one exchange may wait for its full
    /// response when the broker set no Call::timeout; 0 = wait forever
    /// (pre-lifecycle behaviour).
    double response_timeout = 30.0;

    /// Mirrors the broker's connection-pool accounting so the wire enforces
    /// exactly the bounds core::ConnectionPool already promised.
    static Config from_pool(const core::PoolConfig& pool) {
      Config c;
      c.max_connections = pool.max_connections;
      c.pipeline_depth = pool.multiplex_capacity;
      return c;
    }
  };

  PipelinedBackend(Reactor& reactor, uint16_t port);  ///< default Config
  PipelinedBackend(Reactor& reactor, uint16_t port, Config config);

  void invoke(const Call& call, Completion done) override;
  void invoke(const Call& call, const core::CancelTokenPtr& token,
              Completion done) override;
  core::ChannelStats channel_stats() const override;

  uint64_t connections_opened() const { return stats_.connections_opened; }
  uint64_t calls() const { return stats_.calls; }
  uint64_t flushes() const { return stats_.flushes; }
  uint64_t rejections() const { return stats_.rejections; }
  uint64_t retries() const { return stats_.retries; }
  uint64_t timeouts() const { return stats_.timeouts; }
  uint64_t cancels() const { return stats_.cancels; }
  size_t open_connections() const { return channels_.size(); }
  size_t in_flight() const;
  const Config& config() const { return config_; }

 private:
  struct Exchange {
    std::string wire;           ///< serialized request, kept for re-issue
    size_t parts_expected = 1;  ///< MGET part count
    Completion done;
    size_t attempts = 0;  ///< connection assignments so far
    bool completed = false;
    double deadline_at = 0.0;  ///< reactor time the exchange gives up; 0 = never
    uint64_t channel = 0;      ///< id of the carrying connection; 0 = none
  };
  using ExchangePtr = std::shared_ptr<Exchange>;

  struct Channel {
    uint64_t id = 0;
    std::shared_ptr<TcpConn> conn;
    std::deque<ExchangePtr> pipeline;  ///< FIFO awaiting responses
    std::string outbox;                ///< bytes not yet handed to the socket
    size_t unflushed = 0;              ///< requests currently in outbox
    http::ResponseParser parser;
  };

  /// Assigns the exchange to the least-loaded connection with pipeline room,
  /// opening a new connection when allowed. With `allow_overflow` (re-issue
  /// after a connection death) the per-connection depth may be exceeded —
  /// the global cap still holds because the exchange was already in flight.
  void enqueue(ExchangePtr exchange, bool allow_overflow);
  Channel* pick_channel(bool allow_overflow);
  Channel* open_channel();
  std::shared_ptr<Channel> find_channel(uint64_t id);
  void schedule_flush();
  void flush_all();
  void on_data(uint64_t channel_id, std::string_view bytes);
  void handle_close(uint64_t channel_id);
  void complete(const ExchangePtr& exchange, bool ok, std::string payload);
  void fail_later(Completion done, std::string reason);
  /// Fails `exchange` (timeout or broker cancel) and kills its carrying
  /// connection — the loss path then re-issues the other queued exchanges.
  void abandon(const ExchangePtr& exchange, std::string reason, bool is_timeout);
  void arm_sweep(double deadline_at);
  void sweep_timeouts();

  Reactor& reactor_;
  uint16_t port_;
  Config config_;
  std::vector<std::shared_ptr<Channel>> channels_;
  uint64_t next_channel_id_ = 1;
  bool flush_scheduled_ = false;
  bool sweep_armed_ = false;
  double next_sweep_at_ = 0.0;
  Reactor::TimerId sweep_timer_ = 0;
  std::string connect_error_;  ///< last connect_tcp failure, for diagnostics
  core::ChannelStats stats_;
};

}  // namespace sbroker::net
