#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "net/tcp.h"
#include "util/log.h"

namespace sbroker::net {

Reactor::Reactor() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    close(epoll_fd_);
    throw std::runtime_error("eventfd failed");
  }
  add_fd(wake_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t value;
    while (read(wake_fd_, &value, sizeof(value)) > 0) {
    }
  });
}

Reactor::~Reactor() {
  // Connections still registered when the reactor dies hold conn<->owner
  // shared_ptr cycles that nothing else will ever break (their fds will
  // never fire again). Run their teardown hooks first, while every object
  // involved is still fully alive; the hooks close sockets and park the
  // cycle-carrying callbacks in the graveyard.
  std::unordered_map<int, std::function<void()>> teardowns;
  teardowns.swap(teardowns_);
  for (auto& [fd, fn] : teardowns) fn();
  teardowns.clear();
  // An fd callback may own the object it serves (TcpConn::start registers a
  // closure holding the connection's shared_ptr), and that object's
  // destructor calls del_fd(). Detach the maps before destroying the
  // callbacks so those re-entrant erases hit an empty member map instead of
  // the hashtable node currently being torn down. Same for timers: the
  // heads parked by defer-style users may own objects whose destructors
  // call cancel_timer().
  std::unordered_map<int, IoCallback> callbacks;
  callbacks.swap(io_callbacks_);
  callbacks.clear();
  std::unordered_map<TimerId, TimerCallback> timer_callbacks;
  timer_callbacks.swap(timer_callbacks_);
  timer_callbacks.clear();
  std::vector<std::function<void()>> posted;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted.swap(posted_);
  }
  posted.clear();
  // Cycle-end hooks are destroyed, never invoked: they capture connections
  // whose owners are mid-teardown.
  std::vector<std::function<void()>> cycle_end;
  cycle_end.swap(cycle_end_);
  cycle_end.clear();
  // Destroying the callbacks above may have parked more state; drain last.
  drain_graveyard();
  // Close the ring before freeing the buffers its in-flight writes point at.
  uring_.reset();
  uring_ops_.clear();
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void Reactor::add_fd(int fd, uint32_t events, IoCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("epoll_ctl ADD failed: ") + strerror(errno));
  }
  io_callbacks_[fd] = std::move(cb);
}

void Reactor::mod_fd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("epoll_ctl MOD failed: ") + strerror(errno));
  }
}

void Reactor::del_fd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  io_callbacks_.erase(fd);
}

Reactor::TimerId Reactor::add_timer(double delay, TimerCallback cb) {
  TimerId id = next_timer_id_++;
  timers_.push(Timer{now() + (delay < 0 ? 0 : delay), id});
  timer_callbacks_[id] = std::move(cb);
  return id;
}

void Reactor::cancel_timer(TimerId id) { timer_callbacks_.erase(id); }

double Reactor::now() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void Reactor::fire_due_timers() {
  double t = now();
  while (!timers_.empty() && timers_.top().deadline <= t) {
    Timer timer = timers_.top();
    timers_.pop();
    auto it = timer_callbacks_.find(timer.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    TimerCallback cb = std::move(it->second);
    timer_callbacks_.erase(it);
    cb();
  }
}

int Reactor::next_timeout_ms(int default_ms) const {
  // Skip over cancelled heads conservatively: the heap may hold cancelled
  // entries, waking early for one costs a no-op loop iteration.
  if (timers_.empty()) return default_ms;
  double delta = timers_.top().deadline - now();
  if (delta <= 0) return 0;
  int ms = static_cast<int>(delta * 1000.0) + 1;
  if (default_ms >= 0 && ms > default_ms) return default_ms;
  return ms;
}

void Reactor::defer_destroy(std::function<void()> fn) {
  graveyard_.push_back(std::move(fn));
}

void Reactor::set_teardown(int fd, std::function<void()> fn) {
  teardowns_[fd] = std::move(fn);
}

void Reactor::clear_teardown(int fd) { teardowns_.erase(fd); }

void Reactor::drain_graveyard() {
  // A parked closure's destructor may park more (an owner dying can close
  // further connections); loop until quiescent.
  while (!graveyard_.empty()) {
    std::vector<std::function<void()>> dead;
    dead.swap(graveyard_);
    dead.clear();
  }
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

bool Reactor::poll_once(int timeout_ms) {
  if (stopped_) return false;
  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, next_timeout_ms(timeout_ms));
  if (n < 0 && errno != EINTR) {
    SBROKER_ERROR("reactor") << "epoll_wait failed: " << strerror(errno);
    return false;
  }
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    auto it = io_callbacks_.find(fd);
    if (it == io_callbacks_.end()) continue;  // removed by a prior callback
    // Copy: the callback may del_fd(fd) and invalidate the map entry.
    IoCallback cb = it->second;
    cb(events[i].events);
  }
  drain_posted();
  fire_due_timers();
  drain_cycle_end();
  // All SQEs staged this cycle (from fd callbacks, timers, or cycle-end
  // flushes) go to the kernel in one syscall.
  if (uring_ != nullptr && uring_->pending() > 0) uring_->flush();
  drain_graveyard();
  return !stopped_;
}

void Reactor::run() {
  while (poll_once(-1)) {
  }
}

void Reactor::stop() {
  stopped_ = true;
  uint64_t one = 1;
  // Best effort: wake the epoll_wait.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void Reactor::at_cycle_end(std::function<void()> fn) {
  cycle_end_.push_back(std::move(fn));
}

void Reactor::drain_cycle_end() {
  // A hook may arm another (a flush submitting work that wants a follow-up);
  // loop until quiescent.
  while (!cycle_end_.empty()) {
    std::vector<std::function<void()>> hooks;
    hooks.swap(cycle_end_);
    for (auto& hook : hooks) hook();
  }
}

bool Reactor::enable_io_uring() {
  if (uring_ != nullptr) return true;
  uring_ = UringQueue::create();
  if (uring_ == nullptr) return false;
  add_fd(uring_->ring_fd(), EPOLLIN, [this](uint32_t) { handle_uring_completions(); });
  return true;
}

bool Reactor::uring_submit(const std::shared_ptr<TcpConn>& conn,
                           std::deque<std::string>& segments, size_t head,
                           size_t total) {
  if (uring_ == nullptr || segments.empty() || total == 0) return false;
  // writev caps iovcnt at IOV_MAX (1024); an absurdly fragmented queue goes
  // through the synchronous path instead.
  if (segments.size() > 1024) return false;
  auto op = std::make_unique<UringWrite>();
  op->conn = conn;
  op->segments = std::move(segments);
  op->head = head;
  op->total = total;
  op->iov.reserve(op->segments.size());
  size_t offset = head;
  for (auto& segment : op->segments) {
    if (segment.size() > offset) {
      op->iov.push_back(iovec{segment.data() + offset, segment.size() - offset});
    }
    offset = 0;
  }
  uint64_t id = next_uring_id_++;
  bool queued = uring_->submit_writev(conn->fd(), op->iov.data(),
                                      static_cast<unsigned>(op->iov.size()), id);
  if (!queued) {
    // SQ full: push what is staged to the kernel and retry once.
    uring_->flush();
    queued = uring_->submit_writev(conn->fd(), op->iov.data(),
                                   static_cast<unsigned>(op->iov.size()), id);
  }
  if (!queued) {
    segments = std::move(op->segments);  // hand the buffers back untouched
    return false;
  }
  uring_ops_[id] = std::move(op);
  return true;
}

void Reactor::handle_uring_completions() {
  if (uring_ == nullptr) return;
  uring_->drain_completions([this](uint64_t id, int32_t result) {
    auto it = uring_ops_.find(id);
    if (it == uring_ops_.end()) return;
    std::unique_ptr<UringWrite> op = std::move(it->second);
    uring_ops_.erase(it);
    ++uring_completions_;
    if (std::shared_ptr<TcpConn> conn = op->conn.lock()) {
      conn->uring_complete(result, *op);
    }
  });
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

}  // namespace sbroker::net
