// Single-threaded epoll reactor.
//
// All socket I/O for the real broker daemon runs on one reactor thread:
// callbacks for fd readiness plus a monotonic-clock timer heap. Everything
// registered with the reactor is called from run(), so handlers need no
// locking. stop() is safe to call from another thread (it writes an
// eventfd).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sbroker::net {

class Reactor {
 public:
  using IoCallback = std::function<void(uint32_t epoll_events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = uint64_t;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback fires
  /// with the ready event mask. The reactor does not own the fd.
  void add_fd(int fd, uint32_t events, IoCallback cb);

  /// Changes the interest mask of a registered fd.
  void mod_fd(int fd, uint32_t events);

  /// Unregisters. Safe to call from inside the fd's own callback.
  void del_fd(int fd);

  /// One-shot timer `delay` seconds from now.
  TimerId add_timer(double delay, TimerCallback cb);
  void cancel_timer(TimerId id);

  /// Monotonic seconds (CLOCK_MONOTONIC).
  double now() const;

  /// Processes events until stop(). Must be called from one thread only.
  void run();

  /// Runs at most one epoll wait + dispatch cycle; `timeout_ms` -1 blocks.
  /// Returns false after stop() was requested.
  bool poll_once(int timeout_ms);

  /// Thread-safe shutdown request.
  void stop();

  /// Thread-safe task handoff: `fn` runs on the reactor thread during its
  /// next dispatch cycle. This is the only way for another thread to touch
  /// state owned by this reactor (the sharded daemon uses it for metric
  /// snapshots and for the round-robin accept fallback).
  void post(std::function<void()> fn);

  /// Parks a closure (typically one owning objects that must not die while
  /// their own callback frame is still on the stack) until the current
  /// dispatch cycle ends; the closure is destroyed, never invoked. ~Reactor
  /// drains the graveyard too, so parked state cannot outlive the reactor —
  /// unlike the old zero-delay-timer trick, which silently leaked whatever
  /// was parked when the reactor stopped before the timer fired.
  void defer_destroy(std::function<void()> fn);

  /// Registers a hook ~Reactor runs for an fd still registered when the
  /// reactor dies (e.g. clients still connected at daemon shutdown). TcpConn
  /// uses it to close its socket and break the conn<->owner shared_ptr cycle
  /// its data callback embodies. Unregister with clear_teardown once the fd
  /// is closed through the normal path.
  void set_teardown(int fd, std::function<void()> fn);
  void clear_teardown(int fd);

 private:
  struct Timer {
    double deadline;
    TimerId id;
    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  void fire_due_timers();
  void drain_posted();
  void drain_graveyard();
  int next_timeout_ms(int default_ms) const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd for stop()
  std::atomic<bool> stopped_{false};
  std::unordered_map<int, IoCallback> io_callbacks_;
  TimerId next_timer_id_ = 1;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<TimerId, TimerCallback> timer_callbacks_;
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  std::vector<std::function<void()>> graveyard_;  ///< deferred destructions
  std::unordered_map<int, std::function<void()>> teardowns_;
};

}  // namespace sbroker::net
