// Single-threaded epoll reactor.
//
// All socket I/O for the real broker daemon runs on one reactor thread:
// callbacks for fd readiness plus a monotonic-clock timer heap. Everything
// registered with the reactor is called from run(), so handlers need no
// locking. stop() is safe to call from another thread (it writes an
// eventfd).
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/uring.h"

namespace sbroker::net {

class TcpConn;

/// A batched write pinned in flight on the io_uring backend: the segments
/// moved out of a connection's queue plus the iovecs pointing into them.
/// Owned by the reactor until the completion arrives (the buffers must
/// outlive kernel-side processing even if the connection dies first).
struct UringWrite {
  std::weak_ptr<TcpConn> conn;
  std::deque<std::string> segments;
  size_t head = 0;   ///< consumed prefix of the first segment
  size_t total = 0;  ///< bytes covered by the submission
  std::vector<iovec> iov;
};

class Reactor {
 public:
  using IoCallback = std::function<void(uint32_t epoll_events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = uint64_t;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback fires
  /// with the ready event mask. The reactor does not own the fd.
  void add_fd(int fd, uint32_t events, IoCallback cb);

  /// Changes the interest mask of a registered fd.
  void mod_fd(int fd, uint32_t events);

  /// Unregisters. Safe to call from inside the fd's own callback.
  void del_fd(int fd);

  /// One-shot timer `delay` seconds from now.
  TimerId add_timer(double delay, TimerCallback cb);
  void cancel_timer(TimerId id);

  /// Monotonic seconds (CLOCK_MONOTONIC).
  double now() const;

  /// Processes events until stop(). Must be called from one thread only.
  void run();

  /// Runs at most one epoll wait + dispatch cycle; `timeout_ms` -1 blocks.
  /// Returns false after stop() was requested.
  bool poll_once(int timeout_ms);

  /// Thread-safe shutdown request.
  void stop();

  /// Thread-safe task handoff: `fn` runs on the reactor thread during its
  /// next dispatch cycle. This is the only way for another thread to touch
  /// state owned by this reactor (the sharded daemon uses it for metric
  /// snapshots and for the round-robin accept fallback).
  void post(std::function<void()> fn);

  /// Parks a closure (typically one owning objects that must not die while
  /// their own callback frame is still on the stack) until the current
  /// dispatch cycle ends; the closure is destroyed, never invoked. ~Reactor
  /// drains the graveyard too, so parked state cannot outlive the reactor —
  /// unlike the old zero-delay-timer trick, which silently leaked whatever
  /// was parked when the reactor stopped before the timer fired.
  void defer_destroy(std::function<void()> fn);

  /// Registers a hook ~Reactor runs for an fd still registered when the
  /// reactor dies (e.g. clients still connected at daemon shutdown). TcpConn
  /// uses it to close its socket and break the conn<->owner shared_ptr cycle
  /// its data callback embodies. Unregister with clear_teardown once the fd
  /// is closed through the normal path.
  void set_teardown(int fd, std::function<void()> fn);
  void clear_teardown(int fd);

  /// Registers a ONE-SHOT hook that runs at the end of the current dispatch
  /// cycle (after fd callbacks, posted tasks, and timers; before the
  /// graveyard drains). The daemon uses this to flush every connection that
  /// accumulated responses during the wakeup with one writev each, instead
  /// of one write per response.
  void at_cycle_end(std::function<void()> fn);

  /// Switches batched writes to io_uring submission: TcpConn::flush hands
  /// its queued segments to the reactor, SQEs accumulate during the cycle,
  /// and ONE io_uring_enter at cycle end submits them all. False when the
  /// backend is compiled out or the kernel refuses (epoll path keeps
  /// working unchanged).
  bool enable_io_uring();
  bool io_uring_enabled() const { return uring_ != nullptr; }

  /// Takes ownership of `segments` (pinning them until completion) and
  /// queues a writev SQE for `conn`. On failure `segments` is left
  /// untouched and the caller should write synchronously instead.
  bool uring_submit(const std::shared_ptr<TcpConn>& conn,
                    std::deque<std::string>& segments, size_t head, size_t total);

  /// Completed io_uring submissions since enable_io_uring() (diagnostics).
  uint64_t uring_completions() const { return uring_completions_; }

 private:
  struct Timer {
    double deadline;
    TimerId id;
    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  void fire_due_timers();
  void drain_posted();
  void drain_graveyard();
  void drain_cycle_end();
  void handle_uring_completions();
  int next_timeout_ms(int default_ms) const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd for stop()
  std::atomic<bool> stopped_{false};
  std::unordered_map<int, IoCallback> io_callbacks_;
  TimerId next_timer_id_ = 1;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<TimerId, TimerCallback> timer_callbacks_;
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  std::vector<std::function<void()>> graveyard_;  ///< deferred destructions
  std::unordered_map<int, std::function<void()>> teardowns_;
  std::vector<std::function<void()>> cycle_end_;  ///< one-shot end-of-cycle hooks
  std::unique_ptr<UringQueue> uring_;
  uint64_t next_uring_id_ = 1;
  uint64_t uring_completions_ = 0;
  std::unordered_map<uint64_t, std::unique_ptr<UringWrite>> uring_ops_;
};

}  // namespace sbroker::net
