#include "net/sharded_daemon.h"

#include <unistd.h>

#include <algorithm>
#include <future>
#include <utility>

#include "util/log.h"
#include "util/rng.h"

namespace sbroker::net {
namespace {

/// One-shot probe: can this kernel bind two sockets to one port?
bool reuseport_supported() {
  try {
    auto [fd, port] = listen_tcp(0, /*reuse_port=*/true);
    auto [fd2, port2] = listen_tcp(port, /*reuse_port=*/true);
    close(fd2);
    close(fd);
    (void)port2;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

ShardedBrokerDaemon::ShardedBrokerDaemon(std::string name,
                                         ShardedBrokerDaemonConfig config)
    : name_(std::move(name)), config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  // Salt the shared cache's TTL jitter from this daemon's run seed: two
  // daemon instances (federation members) must not expire the same hot key
  // in lockstep. The salted tuning also flows into every shard broker below.
  if (config_.broker.cache_tuning.jitter_salt == 0) {
    config_.broker.cache_tuning.jitter_salt =
        util::derive_seed(config_.broker.rng_seed, 0x7711);
  }
  cache_ = std::make_shared<core::StripedResultCache>(
      config_.broker.cache_capacity, config_.broker.cache_ttl,
      config_.cache_stripes, config_.broker.cache_tuning);
  load_ = std::make_shared<core::LoadTracker>();
  flights_ = std::make_shared<core::FlightTable>(config_.cache_stripes);

  bool kernel_sharding =
      !config_.force_acceptor_fallback && reuseport_supported();
  if (!kernel_sharding && !config_.force_acceptor_fallback) {
    SBROKER_WARN(name_) << "SO_REUSEPORT unavailable; using acceptor fallback";
  }

  shards_.reserve(config_.shards);
  for (size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->reactor = std::make_unique<Reactor>();

    BrokerDaemonConfig cfg;
    cfg.broker = config_.broker;
    // De-correlate the shards' random balancer choices. derive_seed, not
    // seed+i: adjacent offsets collide across sibling instances (shard i's
    // seed+1 IS shard i+1's seed), replaying identical streams.
    cfg.broker.rng_seed = util::derive_seed(config_.broker.rng_seed, i);
    cfg.tick_interval = config_.tick_interval;
    cfg.io_uring = config_.io_uring;
    if (kernel_sharding) {
      cfg.reuse_port = true;
      cfg.listen_port = i == 0 ? config_.listen_port : port_;
      cfg.enable_udp = config_.enable_udp;
      cfg.udp_port = i == 0 ? config_.udp_port : udp_port_;
    } else {
      // Private ephemeral listener (unused); the shared acceptor feeds fds
      // in via adopt_client. UDP cannot be shared without SO_REUSEPORT, so
      // shard 0 owns the datagram channel alone.
      cfg.reuse_port = false;
      cfg.listen_port = 0;
      cfg.enable_udp = config_.enable_udp && i == 0;
      cfg.udp_port = config_.udp_port;
    }

    shard->daemon = std::make_unique<BrokerDaemon>(
        *shard->reactor, name_ + "#" + std::to_string(i), cfg);
    shard->daemon->broker().share_cache(cache_);
    shard->daemon->broker().share_load(load_);
    shard->daemon->broker().share_flights(flights_);
    // A flight resolved on another shard wakes this shard's parked waiters:
    // the notify (which may run on the resolving shard's thread) posts a
    // housekeeping poke onto this shard's own reactor.
    shard->daemon->broker().set_flight_notifier(
        [reactor = shard->reactor.get(), daemon = shard->daemon.get()]() {
          reactor->post([daemon]() { daemon->poke(); });
        });

    if (i == 0) {
      if (kernel_sharding) port_ = shard->daemon->port();
      udp_port_ = shard->daemon->udp_port();
    }
    shards_.push_back(std::move(shard));
  }

  if (!kernel_sharding) {
    acceptor_ = std::make_unique<TcpListener>(
        *shards_[0]->reactor, config_.listen_port,
        [this](int fd) { dispatch_accepted(fd); });
    port_ = acceptor_->port();
  }

  if (config_.admin.enabled) {
    admin_ = std::make_unique<AdminServer>(
        config_.admin.port, [this]() { return shard_status(); },
        [this]() { return dump_trace(); });
  }
}

ShardedBrokerDaemon::~ShardedBrokerDaemon() { stop(); }

void ShardedBrokerDaemon::dispatch_accepted(int fd) {
  // Runs on shard 0's reactor thread; next_shard_ is only touched here.
  Shard& target = *shards_[next_shard_++ % shards_.size()];
  target.reactor->post(
      [daemon = target.daemon.get(), fd]() { daemon->adopt_client(fd); });
}

void ShardedBrokerDaemon::add_backend(const BackendFactory& factory,
                                      double weight) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->daemon->add_backend(factory(*shards_[i]->reactor, i), weight);
  }
}

void ShardedBrokerDaemon::start() {
  if (running_) return;
  running_ = true;
  for (auto& shard : shards_) {
    shard->thread = std::thread([reactor = shard->reactor.get()]() {
      reactor->run();
    });
  }
}

void ShardedBrokerDaemon::stop() {
  // The admin thread snapshots shards through their reactors; kill it first
  // (its destructor joins any in-flight handler) so no snapshot can be left
  // parked in a reactor's post queue when the shard threads exit. Before the
  // early-return: even a never-started daemon owns a live admin thread.
  admin_.reset();
  if (!running_) return;
  for (auto& shard : shards_) shard->reactor->stop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  running_ = false;
}

WireStats ShardedBrokerDaemon::aggregate_wire_stats() {
  WireStats total;
  if (!running_) {
    for (auto& shard : shards_) total.merge(shard->daemon->wire_stats());
    return total;
  }
  for (auto& shard : shards_) {
    std::promise<WireStats> snapshot;
    auto done = snapshot.get_future();
    shard->reactor->post([&snapshot, daemon = shard->daemon.get()]() {
      snapshot.set_value(daemon->wire_stats());
    });
    total.merge(done.get());
  }
  return total;
}

core::BrokerMetrics ShardedBrokerDaemon::aggregate_metrics() {
  core::BrokerMetrics total(config_.broker.rules.num_levels);
  // Each snapshot folds the shard's wire-level ChannelStats (connections
  // opened, coalesced flushes, pipeline depth) into metrics.transport.
  if (!running_) {
    for (auto& shard : shards_) {
      core::BrokerMetrics m = shard->daemon->broker().metrics();
      m.transport.merge(shard->daemon->broker().channel_stats());
      total.merge(m);
    }
    return total;
  }
  for (auto& shard : shards_) {
    std::promise<core::BrokerMetrics> snapshot;
    auto done = snapshot.get_future();
    shard->reactor->post([&snapshot, daemon = shard->daemon.get()]() {
      core::BrokerMetrics m = daemon->broker().metrics();
      m.transport.merge(daemon->broker().channel_stats());
      snapshot.set_value(std::move(m));
    });
    total.merge(done.get());
  }
  return total;
}

std::vector<ShardStatus> ShardedBrokerDaemon::shard_status() {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  if (!running_) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      out.push_back(snapshot_shard(shards_[i]->daemon->broker(), i));
    }
    return out;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::promise<ShardStatus> snapshot;
    auto done = snapshot.get_future();
    shards_[i]->reactor->post([&snapshot, daemon = shards_[i]->daemon.get(), i]() {
      snapshot.set_value(snapshot_shard(daemon->broker(), i));
    });
    out.push_back(done.get());
  }
  return out;
}

std::vector<obs::TraceEvent> ShardedBrokerDaemon::dump_trace() {
  std::vector<obs::TraceEvent> all;
  if (!running_) {
    for (auto& shard : shards_) {
      auto events = shard->daemon->broker().observer().recorder().dump();
      all.insert(all.end(), events.begin(), events.end());
    }
  } else {
    for (auto& shard : shards_) {
      std::promise<std::vector<obs::TraceEvent>> snapshot;
      auto done = snapshot.get_future();
      shard->reactor->post([&snapshot, daemon = shard->daemon.get()]() {
        snapshot.set_value(daemon->broker().observer().recorder().dump());
      });
      auto events = done.get();
      all.insert(all.end(), events.begin(), events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.seq < b.seq;
            });
  return all;
}

}  // namespace sbroker::net
