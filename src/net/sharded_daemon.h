// Multi-threaded sharded broker daemon.
//
// One BrokerDaemon per reactor thread ("shard"), all serving the same
// TCP/UDP port. Each shard keeps the single-threaded core::ServiceBroker
// invariant — no locks anywhere on a shard's data path — and two pieces of
// state are deliberately global so the paper's semantics survive sharding:
//
//   * the result cache is a StripedResultCache shared by every shard, so a
//     result fetched through shard A serves the identical request arriving
//     at shard B (otherwise sharding divides the hit rate by N);
//   * the outstanding-request count is a shared atomic LoadTracker, so each
//     shard's AdmissionController enforces the QoS thresholds against the
//     *global* load rather than 1/N of it.
//
// Connection distribution: every shard opens its own listening socket on
// the shared port with SO_REUSEPORT and the kernel spreads incoming
// connections across them (the HAProxy multi-worker pattern). Where
// SO_REUSEPORT is unavailable — or when the config forces it — a fallback
// acceptor on shard 0 accepts everything and hands fds round-robin to the
// shard reactors via Reactor::post().
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/broker.h"
#include "core/flight.h"
#include "core/load.h"
#include "core/striped_cache.h"
#include "net/admin.h"
#include "net/broker_daemon.h"
#include "net/reactor.h"
#include "net/tcp.h"

namespace sbroker::net {

struct ShardedBrokerDaemonConfig {
  core::BrokerConfig broker;     ///< per-shard broker configuration
  size_t shards = 1;             ///< reactor threads; clamped to >= 1
  uint16_t listen_port = 0;      ///< shared TCP port; 0 = ephemeral
  bool enable_udp = true;        ///< shared UDP port (shard 0 only in fallback)
  uint16_t udp_port = 0;         ///< 0 = ephemeral
  double tick_interval = 0.02;   ///< per-shard housekeeping tick, seconds
  size_t cache_stripes = 8;      ///< lock stripes of the shared result cache
  /// Skip SO_REUSEPORT and use the single-acceptor round-robin path even
  /// when the kernel supports accept sharding (used by tests).
  bool force_acceptor_fallback = false;
  /// Admin plane (/healthz /metrics /statusz /tracez) on its own reactor
  /// thread; enabled by default on an ephemeral port.
  AdminConfig admin;
  /// Opt every shard reactor into the io_uring write backend (see
  /// BrokerDaemonConfig::io_uring; epoll/writev fallback when unavailable).
  bool io_uring = false;
};

class ShardedBrokerDaemon {
 public:
  /// Builds one backend instance per shard, bound to that shard's reactor.
  /// Backends are per-shard because they (like everything else a shard owns)
  /// are only ever touched from that shard's thread.
  using BackendFactory =
      std::function<std::shared_ptr<core::Backend>(Reactor& reactor, size_t shard)>;

  /// Binds all listeners; call add_backend() then start().
  ShardedBrokerDaemon(std::string name, ShardedBrokerDaemonConfig config);
  ~ShardedBrokerDaemon();  ///< stops and joins if still running
  ShardedBrokerDaemon(const ShardedBrokerDaemon&) = delete;
  ShardedBrokerDaemon& operator=(const ShardedBrokerDaemon&) = delete;

  /// Registers a backend replica (one instance per shard). Before start().
  void add_backend(const BackendFactory& factory, double weight = 1.0);

  /// Launches the shard reactor threads.
  void start();

  /// Stops every shard reactor and joins the threads. Idempotent. In-flight
  /// requests are abandoned (their connections close with the reactors).
  void stop();

  bool running() const { return running_; }
  size_t shards() const { return shards_.size(); }
  uint16_t port() const { return port_; }
  /// Shared UDP datagram port; 0 when UDP is disabled.
  uint16_t udp_port() const { return udp_port_; }
  /// Admin-plane HTTP port; 0 when the admin plane is disabled.
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  /// True when kernel accept sharding (SO_REUSEPORT) is active, false when
  /// the round-robin acceptor fallback is in use.
  bool kernel_accept_sharding() const { return !acceptor_; }

  core::StripedResultCache& shared_cache() { return *cache_; }
  const core::StripedResultCache& shared_cache() const { return *cache_; }
  core::LoadTracker& shared_load() { return *load_; }
  /// Cross-shard single-flight registry: identical misses arriving at
  /// different shards collapse to one backend fetch.
  core::FlightTable& shared_flights() { return *flights_; }

  /// Direct access to one shard (its broker, its counters). Only safe while
  /// stopped, or from that shard's own reactor thread.
  BrokerDaemon& shard(size_t i) { return *shards_.at(i)->daemon; }

  /// One shard's reactor. The object reference is valid for the daemon's
  /// lifetime; the usual rules apply to what may be called on it from other
  /// threads (post()/stop() only while running). The federation layer hangs
  /// its peer channels and gossip timer off these.
  Reactor& shard_reactor(size_t i) { return *shards_.at(i)->reactor; }

  /// Installs the admin plane's federation snapshot source (no-op when the
  /// admin plane is disabled). /metrics and /statusz then carry the
  /// federation families/block.
  void set_federation_status(AdminServer::FederationFn federation) {
    if (admin_) admin_->set_federation(std::move(federation));
  }

  /// Per-class metrics folded across all shards. Safe from any non-shard
  /// thread: while running it snapshots each shard via Reactor::post(),
  /// when stopped it reads directly.
  core::BrokerMetrics aggregate_metrics();

  /// Main-port protocol mix / write-coalescing counters folded across all
  /// shards. Same threading contract as aggregate_metrics().
  WireStats aggregate_wire_stats();

  /// Per-shard status snapshots (metrics + latency histograms + replica
  /// health). Same threading contract as aggregate_metrics(); the admin
  /// plane's /metrics and /statusz are rendered from this.
  std::vector<ShardStatus> shard_status();

  /// Flight-recorder events from every shard, merged and sorted by time.
  std::vector<obs::TraceEvent> dump_trace();

 private:
  struct Shard {
    std::unique_ptr<Reactor> reactor;
    std::unique_ptr<BrokerDaemon> daemon;
    std::thread thread;
  };

  void dispatch_accepted(int fd);

  std::string name_;
  ShardedBrokerDaemonConfig config_;
  std::shared_ptr<core::StripedResultCache> cache_;
  std::shared_ptr<core::LoadTracker> load_;
  std::shared_ptr<core::FlightTable> flights_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<TcpListener> acceptor_;  ///< fallback mode only
  std::unique_ptr<AdminServer> admin_;
  size_t next_shard_ = 0;                  ///< fallback round-robin cursor
  uint16_t port_ = 0;
  uint16_t udp_port_ = 0;
  /// Read by the admin thread (snapshot path decision), written by
  /// start()/stop().
  std::atomic<bool> running_{false};
};

}  // namespace sbroker::net
