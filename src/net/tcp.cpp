#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/log.h"

namespace sbroker::net {
namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("fcntl O_NONBLOCK failed");
  }
}

sockaddr_in loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

std::pair<int, uint16_t> listen_tcp(uint16_t port, bool reuse_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket failed");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    close(fd);
    throw std::runtime_error(std::string("SO_REUSEPORT failed: ") +
                             strerror(errno));
  }
  sockaddr_in addr = loopback(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    throw std::runtime_error(std::string("bind failed: ") + strerror(errno));
  }
  if (listen(fd, 128) != 0) {
    close(fd);
    throw std::runtime_error("listen failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    throw std::runtime_error("getsockname failed");
  }
  set_nonblocking(fd);
  return {fd, ntohs(addr.sin_port)};
}

int connect_tcp(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket failed");
  set_nonblocking(fd);
  // Broker->backend traffic is many small pipelined writes; without this
  // they would sit out Nagle delays (accepted sockets already set it).
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    throw std::runtime_error(std::string("connect failed: ") + strerror(errno));
  }
  return fd;
}

std::shared_ptr<TcpConn> TcpConn::adopt(Reactor& reactor, int fd) {
  return std::shared_ptr<TcpConn>(new TcpConn(reactor, fd));
}

TcpConn::TcpConn(Reactor& reactor, int fd) : reactor_(reactor), fd_(fd) {}

TcpConn::~TcpConn() {
  if (fd_ >= 0) {
    reactor_.del_fd(fd_);
    reactor_.clear_teardown(fd_);
    close(fd_);
  }
}

void TcpConn::start(DataFn on_data, CloseFn on_close) {
  // Callbacks may be re-armed from inside the currently-running data
  // callback (e.g. a backend parking a finished connection); destroying
  // that closure mid-invocation would free captures its frame still uses.
  if (on_data_) {
    reactor_.defer_destroy([keep = std::move(on_data_)]() {});
  }
  on_data_ = std::move(on_data);
  on_close_ = std::move(on_close);
  if (registered_ || fd_ < 0) return;
  registered_ = true;
  auto self = shared_from_this();
  reactor_.add_fd(fd_, EPOLLIN, [self](uint32_t events) { self->on_events(events); });
  // If the reactor dies with this connection still open, break the
  // conn<->owner cycle its callbacks embody instead of leaking it.
  reactor_.set_teardown(fd_, [this]() { reactor_teardown(); });
}

void TcpConn::on_events(uint32_t events) {
  if (fd_ < 0) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_now();
    return;
  }
  if (events & EPOLLOUT) {
    flush();
    if (fd_ < 0) return;
  }
  if (events & EPOLLIN) handle_readable();
}

void TcpConn::handle_readable() {
  char buf[16384];
  while (fd_ >= 0) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      if (on_data_) on_data_(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      close_now();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_now();
    return;
  }
}

void TcpConn::send(std::string_view bytes) {
  queue(bytes);
  flush();
}

namespace {
// Appends below this coalesce into the tail segment; at or above it a moved
// string becomes its own segment (adopt, don't copy).
constexpr size_t kCoalesceLimit = 64 * 1024;
// iovecs per writev call; longer queues just loop.
constexpr int kMaxIov = 64;
}  // namespace

void TcpConn::queue(std::string_view bytes) {
  if (fd_ < 0 || bytes.empty()) return;
  if (segments_.empty() || segments_.back().size() + bytes.size() > kCoalesceLimit) {
    segments_.emplace_back(bytes);
  } else {
    segments_.back().append(bytes);
  }
  queued_bytes_ += bytes.size();
}

void TcpConn::queue(std::string&& bytes) {
  if (fd_ < 0 || bytes.empty()) return;
  if (!segments_.empty() && segments_.back().size() + bytes.size() <= kCoalesceLimit) {
    queued_bytes_ += bytes.size();
    segments_.back().append(bytes);
    return;
  }
  queued_bytes_ += bytes.size();
  segments_.push_back(std::move(bytes));
}

void TcpConn::flush() {
  // While an io_uring batch is in flight nothing else may write: the
  // completion handler continues (ordering would break otherwise).
  if (fd_ < 0 || uring_inflight_) return;
  if (queued_bytes_ == 0) {
    if (shutdown_after_flush_) {
      close_now();
      return;
    }
    update_interest();
    return;
  }
  if (!uring_backoff_ && reactor_.io_uring_enabled()) {
    if (reactor_.uring_submit(shared_from_this(), segments_, head_, queued_bytes_)) {
      uring_inflight_ = true;
      uring_inflight_bytes_ = queued_bytes_;
      segments_.clear();
      head_ = 0;
      queued_bytes_ = 0;
      update_interest();  // completion, not EPOLLOUT, drives progress
      return;
    }
    // Ring unavailable for this batch (SQ exhausted / too fragmented):
    // write synchronously below.
  }
  flush_writev();
}

void TcpConn::flush_writev() {
  while (fd_ >= 0 && queued_bytes_ > 0) {
    iovec iov[kMaxIov];
    int count = 0;
    size_t offset = head_;
    for (auto& segment : segments_) {
      if (count == kMaxIov) break;
      if (segment.size() > offset) {
        iov[count].iov_base = segment.data() + offset;
        iov[count].iov_len = segment.size() - offset;
        ++count;
      }
      offset = 0;
    }
    ssize_t n = ::writev(fd_, iov, count);
    if (n > 0) {
      consume_queued(static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_now();
    return;
  }
  if (fd_ >= 0 && queued_bytes_ == 0) {
    uring_backoff_ = false;  // drained; the ring may be used again
    if (shutdown_after_flush_) {
      close_now();
      return;
    }
  }
  update_interest();
}

void TcpConn::consume_queued(size_t n) {
  queued_bytes_ -= n;
  while (n > 0) {
    size_t front_left = segments_.front().size() - head_;
    if (n >= front_left) {
      n -= front_left;
      segments_.pop_front();
      head_ = 0;
    } else {
      head_ += n;
      n = 0;
    }
  }
}

void TcpConn::uring_complete(int32_t result, UringWrite& op) {
  uring_inflight_ = false;
  uring_inflight_bytes_ = 0;
  if (fd_ < 0) return;  // closed while in flight; op's buffers just die
  if (result < 0 && result != -EAGAIN && result != -EINTR) {
    close_now();
    return;
  }
  size_t written = result > 0 ? static_cast<size_t>(result) : 0;
  if (written < op.total) {
    // Socket buffer filled mid-batch. Re-queue the unwritten tail AT THE
    // FRONT (bytes queued while we were in flight come after it) and drain
    // via EPOLLOUT before touching the ring again.
    size_t skip = written;
    while (skip > 0) {
      size_t front_left = op.segments.front().size() - op.head;
      if (skip >= front_left) {
        skip -= front_left;
        op.segments.pop_front();
        op.head = 0;
      } else {
        op.head += skip;
        skip = 0;
      }
    }
    queued_bytes_ += op.total - written;
    head_ = op.head;
    while (!op.segments.empty()) {
      segments_.push_front(std::move(op.segments.back()));
      op.segments.pop_back();
    }
    uring_backoff_ = true;
    update_interest();
    return;
  }
  if (queued_bytes_ > 0) {
    flush();  // bytes queued during the flight: next batch
  } else if (shutdown_after_flush_) {
    close_now();
  }
}

void TcpConn::update_interest() {
  if (fd_ < 0) return;
  bool need_write = queued_bytes_ > 0 && !uring_inflight_;
  if (need_write == want_write_) return;
  want_write_ = need_write;
  reactor_.mod_fd(fd_, EPOLLIN | (need_write ? static_cast<uint32_t>(EPOLLOUT) : 0u));
}

void TcpConn::shutdown() {
  if (fd_ < 0) return;
  if (pending_bytes() == 0) {
    close_now();
  } else {
    shutdown_after_flush_ = true;
  }
}

void TcpConn::abort() { close_now(); }

void TcpConn::close_now() {
  if (fd_ < 0) return;
  reactor_.del_fd(fd_);
  reactor_.clear_teardown(fd_);
  close(fd_);
  fd_ = -1;
  // Drop the data callback: it commonly captures this connection's owner
  // (which holds the connection right back), so keeping it past close would
  // pin the whole cycle in memory for the reactor's lifetime. close_now()
  // is often reached from inside that very callback, so its destruction is
  // parked in the reactor's graveyard until the current stack unwinds.
  if (on_data_) {
    reactor_.defer_destroy([keep = std::move(on_data_)]() {});
    on_data_ = nullptr;
  }
  if (on_close_) {
    CloseFn cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
}

void TcpConn::reactor_teardown() {
  // ~Reactor path only: the daemon is dying wholesale, with this connection
  // still open. Close the socket and park both callbacks — on_data_ is the
  // usual owner-cycle carrier, and on_close_ often captures the owner too.
  // on_close_ is deliberately NOT invoked: the owner is being destroyed, not
  // notified of a peer close, and firing it would mutate owner state (conn
  // maps, retry timers) mid-teardown.
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  if (on_data_ || on_close_) {
    reactor_.defer_destroy(
        [d = std::move(on_data_), c = std::move(on_close_)]() {});
  }
  on_data_ = nullptr;
  on_close_ = nullptr;
}

TcpListener::TcpListener(Reactor& reactor, uint16_t port, AcceptFn on_accept,
                         bool reuse_port)
    : reactor_(reactor), on_accept_(std::move(on_accept)) {
  auto [fd, actual_port] = listen_tcp(port, reuse_port);
  fd_ = fd;
  port_ = actual_port;
  reactor_.add_fd(fd_, EPOLLIN, [this](uint32_t) {
    while (true) {
      int client = accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        SBROKER_WARN("tcp") << "accept failed: " << strerror(errno);
        return;
      }
      int one = 1;
      setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      on_accept_(client);
    }
  });
}

TcpListener::~TcpListener() {
  reactor_.del_fd(fd_);
  close(fd_);
}

}  // namespace sbroker::net
