// Non-blocking TCP primitives on the reactor.
//
// `TcpConn` owns a connected socket: reads are pushed to `on_data`, writes
// are buffered and flushed as EPOLLOUT allows, close/error reaches
// `on_close` exactly once. `TcpListener` accepts and hands raw fds to its
// callback. IPv4 loopback is all the testbeds need; addresses are
// "host:port" with numeric hosts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/reactor.h"

namespace sbroker::net {

/// Creates a non-blocking listening socket on 127.0.0.1:`port` (0 picks a
/// free port). Returns {fd, actual port}; throws std::runtime_error.
/// With `reuse_port`, SO_REUSEPORT is set before bind so several sockets
/// (one per broker shard) can listen on the same port and let the kernel
/// spread incoming connections across them.
std::pair<int, uint16_t> listen_tcp(uint16_t port, bool reuse_port = false);

/// Non-blocking connect to 127.0.0.1:`port`. Returns the fd (connection may
/// still be in progress); throws std::runtime_error on immediate failure.
int connect_tcp(uint16_t port);

class TcpConn : public std::enable_shared_from_this<TcpConn> {
 public:
  using DataFn = std::function<void(std::string_view)>;
  using CloseFn = std::function<void()>;

  /// Takes ownership of `fd` (must be non-blocking) and registers with the
  /// reactor. Use through shared_ptr (enable_shared_from_this).
  static std::shared_ptr<TcpConn> adopt(Reactor& reactor, int fd);

  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Must be set before data can arrive; call right after adopt(). Calling
  /// start() again replaces both callbacks (connection reuse by a new owner).
  void start(DataFn on_data, CloseFn on_close);

  /// Buffers and flushes opportunistically (queue + flush).
  void send(std::string_view bytes);

  /// Buffers WITHOUT flushing. Responses produced during one reactor wakeup
  /// queue here and go out in a single writev when flush() runs (the daemon
  /// arms a cycle-end flush). Small appends coalesce into the tail segment;
  /// use the rvalue overload to adopt a large buffer without copying.
  void queue(std::string_view bytes);
  void queue(std::string&& bytes);

  /// Writes everything queued: one writev on the epoll path, or one SQE
  /// handed to the reactor's io_uring backend when enabled.
  void flush();

  /// Graceful close: flushes buffered writes, then closes.
  void shutdown();

  /// Immediate close.
  void abort();

  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }
  /// Bytes accepted but not yet written (including an in-flight io_uring
  /// batch).
  size_t pending_bytes() const { return queued_bytes_ + uring_inflight_bytes_; }

  /// Reactor-internal: completion of an io_uring batch. `result` is bytes
  /// written or a negative errno; unwritten bytes in `op` are re-queued.
  void uring_complete(int32_t result, UringWrite& op);

 private:
  TcpConn(Reactor& reactor, int fd);

  void on_events(uint32_t events);
  void handle_readable();
  void flush_writev();
  void consume_queued(size_t n);
  void close_now();
  void reactor_teardown();
  void update_interest();

  Reactor& reactor_;
  int fd_;
  DataFn on_data_;
  CloseFn on_close_;
  /// Outgoing bytes as a segment list: head_ bytes of the front segment are
  /// already written. Segments are what writev's iovecs point at.
  std::deque<std::string> segments_;
  size_t head_ = 0;
  size_t queued_bytes_ = 0;
  size_t uring_inflight_bytes_ = 0;
  bool uring_inflight_ = false;
  /// After a short io_uring write the socket buffer is full; drain the
  /// remainder through EPOLLOUT + writev before submitting to the ring
  /// again (keeps byte order without overlapping submissions).
  bool uring_backoff_ = false;
  bool shutdown_after_flush_ = false;
  bool want_write_ = false;
  bool registered_ = false;
};

class TcpListener {
 public:
  /// Called with each accepted (already non-blocking) fd.
  using AcceptFn = std::function<void(int fd)>;

  /// Listens on 127.0.0.1:`port` (0 = ephemeral). `reuse_port` enables
  /// SO_REUSEPORT kernel accept-sharding (see listen_tcp).
  TcpListener(Reactor& reactor, uint16_t port, AcceptFn on_accept,
              bool reuse_port = false);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

 private:
  Reactor& reactor_;
  int fd_;
  uint16_t port_;
  AcceptFn on_accept_;
};

}  // namespace sbroker::net
