#include "net/udp.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/log.h"

namespace sbroker::net {
namespace {

sockaddr_in loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

constexpr size_t kMaxDatagram = 64 * 1024;

}  // namespace

UdpSocket::UdpSocket(Reactor& reactor, uint16_t port, DatagramFn on_datagram,
                     bool reuse_port)
    : reactor_(reactor), on_datagram_(std::move(on_datagram)) {
  fd_ = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("udp socket failed");
  if (reuse_port) {
    int one = 1;
    if (setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      close(fd_);
      throw std::runtime_error(std::string("udp SO_REUSEPORT failed: ") +
                               strerror(errno));
    }
  }
  sockaddr_in addr = loopback(port);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd_);
    throw std::runtime_error(std::string("udp bind failed: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd_);
    throw std::runtime_error("udp getsockname failed");
  }
  port_ = ntohs(addr.sin_port);

  reactor_.add_fd(fd_, EPOLLIN, [this](uint32_t) {
    char buf[kMaxDatagram];
    while (true) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      ssize_t n = recvfrom(fd_, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        SBROKER_WARN("udp") << "recvfrom failed: " << strerror(errno);
        return;
      }
      ++received_;
      on_datagram_(std::string_view(buf, static_cast<size_t>(n)), from);
    }
  });
}

UdpSocket::~UdpSocket() {
  reactor_.del_fd(fd_);
  close(fd_);
}

void UdpSocket::send_to(const sockaddr_in& dest, std::string_view payload) {
  ssize_t n = sendto(fd_, payload.data(), payload.size(), 0,
                     reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (n == static_cast<ssize_t>(payload.size())) {
    ++sent_;
  } else {
    SBROKER_DEBUG("udp") << "sendto dropped " << payload.size() << " bytes";
  }
}

std::optional<std::string> udp_exchange(uint16_t port, std::string_view payload,
                                        int timeout_ms) {
  int fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in dest = loopback(port);
  if (sendto(fd, payload.data(), payload.size(), 0,
             reinterpret_cast<sockaddr*>(&dest),
             sizeof(dest)) != static_cast<ssize_t>(payload.size())) {
    close(fd);
    return std::nullopt;
  }
  char buf[kMaxDatagram];
  ssize_t n = recv(fd, buf, sizeof(buf), 0);
  close(fd);
  if (n < 0) return std::nullopt;
  return std::string(buf, static_cast<size_t>(n));
}

}  // namespace sbroker::net
