// Non-blocking UDP on the reactor, plus a blocking client for tests.
//
// The paper's distributed-model prototype exchanges broker messages "through
// lightweight UDP"; BrokerDaemon uses this socket for its datagram listener.
// One wire message per datagram — the binary codec is self-delimiting, so a
// datagram either decodes or is dropped.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/net_config.h"
#include "net/reactor.h"

namespace sbroker::net {

class UdpSocket {
 public:
  /// (payload, sender). Reply with send_to(sender, ...).
  using DatagramFn = std::function<void(std::string_view, const sockaddr_in&)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and registers with the reactor.
  /// `reuse_port` enables SO_REUSEPORT so the shards of a sharded daemon can
  /// share one datagram port (the kernel picks a socket per sender).
  UdpSocket(Reactor& reactor, uint16_t port, DatagramFn on_datagram,
            bool reuse_port = false);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Fire-and-forget send; silently drops on transient errors (UDP).
  void send_to(const sockaddr_in& dest, std::string_view payload);

  uint16_t port() const { return port_; }
  uint64_t received() const { return received_; }
  uint64_t sent() const { return sent_; }

 private:
  Reactor& reactor_;
  int fd_;
  uint16_t port_;
  DatagramFn on_datagram_;
  uint64_t received_ = 0;
  uint64_t sent_ = 0;
};

/// Blocking UDP exchange helper for tests/examples: sends `payload` to
/// 127.0.0.1:`port` and waits up to `timeout_ms` for one reply datagram.
std::optional<std::string> udp_exchange(uint16_t port, std::string_view payload,
                                        int timeout_ms = kDefaultClientTimeoutMs);

}  // namespace sbroker::net
