#include "net/uring.h"

#if defined(SBROKER_HAVE_IOURING) && __has_include(<linux/io_uring.h>)
#define SBROKER_URING_REAL 1
#endif

#ifdef SBROKER_URING_REAL

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

namespace sbroker::net {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

unsigned* ring_u32(void* base, unsigned off) {
  return reinterpret_cast<unsigned*>(static_cast<char*>(base) + off);
}

// The kernel updates SQ head / CQ tail concurrently with userspace; access
// the shared ring indices through atomic_ref with acquire/release ordering
// (the same protocol liburing implements with barrier macros).
unsigned load_acquire(unsigned* p) {
  return std::atomic_ref<unsigned>(*p).load(std::memory_order_acquire);
}

void store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

struct UringQueue::Impl {
  int fd = -1;
  void* sq_ring = MAP_FAILED;
  size_t sq_ring_bytes = 0;
  void* cq_ring = MAP_FAILED;
  size_t cq_ring_bytes = 0;
  io_uring_sqe* sqes = static_cast<io_uring_sqe*>(MAP_FAILED);
  size_t sqes_bytes = 0;
  bool single_mmap = false;

  unsigned sq_entries = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned local_tail = 0;  ///< our view of the tail; published at flush()
  unsigned queued = 0;      ///< SQEs staged since the last flush

  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  ~Impl() {
    if (sqes != MAP_FAILED) munmap(sqes, sqes_bytes);
    if (!single_mmap && cq_ring != MAP_FAILED) munmap(cq_ring, cq_ring_bytes);
    if (sq_ring != MAP_FAILED) munmap(sq_ring, sq_ring_bytes);
    if (fd >= 0) close(fd);
  }
};

bool UringQueue::compiled_in() { return true; }

std::unique_ptr<UringQueue> UringQueue::create(unsigned entries) {
  auto impl = std::make_unique<Impl>();
  io_uring_params params{};
  int fd = sys_io_uring_setup(entries, &params);
  if (fd < 0) return nullptr;
  impl->fd = fd;
  impl->sq_entries = params.sq_entries;

  size_t sq_bytes = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_bytes = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  impl->single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (impl->single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

  impl->sq_ring_bytes = sq_bytes;
  impl->sq_ring = mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (impl->sq_ring == MAP_FAILED) return nullptr;
  impl->cq_ring_bytes = cq_bytes;
  if (impl->single_mmap) {
    impl->cq_ring = impl->sq_ring;
  } else {
    impl->cq_ring = mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (impl->cq_ring == MAP_FAILED) return nullptr;
  }
  impl->sqes_bytes = params.sq_entries * sizeof(io_uring_sqe);
  impl->sqes = static_cast<io_uring_sqe*>(mmap(nullptr, impl->sqes_bytes,
                                               PROT_READ | PROT_WRITE,
                                               MAP_SHARED | MAP_POPULATE, fd,
                                               IORING_OFF_SQES));
  if (impl->sqes == MAP_FAILED) return nullptr;

  impl->sq_head = ring_u32(impl->sq_ring, params.sq_off.head);
  impl->sq_tail = ring_u32(impl->sq_ring, params.sq_off.tail);
  impl->sq_mask = ring_u32(impl->sq_ring, params.sq_off.ring_mask);
  impl->sq_array = ring_u32(impl->sq_ring, params.sq_off.array);
  impl->cq_head = ring_u32(impl->cq_ring, params.cq_off.head);
  impl->cq_tail = ring_u32(impl->cq_ring, params.cq_off.tail);
  impl->cq_mask = ring_u32(impl->cq_ring, params.cq_off.ring_mask);
  impl->cqes = reinterpret_cast<io_uring_cqe*>(
      static_cast<char*>(impl->cq_ring) + params.cq_off.cqes);
  impl->local_tail = *impl->sq_tail;
  return std::unique_ptr<UringQueue>(new UringQueue(std::move(impl)));
}

int UringQueue::ring_fd() const { return impl_->fd; }

bool UringQueue::submit_writev(int fd, const iovec* iov, unsigned iovcnt,
                               uint64_t user_data) {
  Impl& im = *impl_;
  unsigned head = load_acquire(im.sq_head);
  if (im.local_tail - head >= im.sq_entries) return false;
  unsigned idx = im.local_tail & *im.sq_mask;
  io_uring_sqe& sqe = im.sqes[idx];
  std::memset(&sqe, 0, sizeof(sqe));
  sqe.opcode = IORING_OP_WRITEV;
  sqe.fd = fd;
  sqe.addr = reinterpret_cast<uint64_t>(iov);
  sqe.len = iovcnt;
  sqe.user_data = user_data;
  im.sq_array[idx] = idx;
  ++im.local_tail;
  ++im.queued;
  return true;
}

int UringQueue::flush() {
  Impl& im = *impl_;
  if (im.queued == 0) return 0;
  store_release(im.sq_tail, im.local_tail);
  unsigned to_submit = im.queued;
  im.queued = 0;
  int ret = sys_io_uring_enter(im.fd, to_submit, 0, 0);
  if (ret < 0) return -errno;
  return ret;
}

unsigned UringQueue::drain_completions(const CompletionFn& fn) {
  Impl& im = *impl_;
  unsigned head = load_acquire(im.cq_head);
  unsigned count = 0;
  while (true) {
    unsigned tail = load_acquire(im.cq_tail);
    if (head == tail) break;
    io_uring_cqe& cqe = im.cqes[head & *im.cq_mask];
    uint64_t user_data = cqe.user_data;
    int32_t result = cqe.res;
    ++head;
    // Release the slot before the callback: it may submit more work.
    store_release(im.cq_head, head);
    ++count;
    fn(user_data, result);
  }
  return count;
}

unsigned UringQueue::pending() const { return impl_->queued; }

#else  // !SBROKER_URING_REAL

namespace sbroker::net {

// Stub build (SBROKER_IOURING=OFF or header missing): everything reports
// unsupported and the reactor stays on the epoll/writev path.
struct UringQueue::Impl {};

bool UringQueue::compiled_in() { return false; }
std::unique_ptr<UringQueue> UringQueue::create(unsigned) { return nullptr; }
int UringQueue::ring_fd() const { return -1; }
bool UringQueue::submit_writev(int, const iovec*, unsigned, uint64_t) { return false; }
int UringQueue::flush() { return 0; }
unsigned UringQueue::drain_completions(const CompletionFn&) { return 0; }
unsigned UringQueue::pending() const { return 0; }

#endif  // SBROKER_URING_REAL

UringQueue::UringQueue(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
UringQueue::~UringQueue() = default;

}  // namespace sbroker::net
