// Minimal io_uring submission queue for batched socket writes.
//
// The reactor's syscall-batching backend: writev SQEs are queued during a
// dispatch cycle and submitted with ONE io_uring_enter at cycle end, so N
// connections flushed in one wakeup cost one syscall instead of N.
//
// Completion model is fully asynchronous: the ring fd is registered with the
// reactor's epoll (readable when CQEs are pending) and completions are
// reaped with drain_completions. Never wait in io_uring_enter — the kernel
// polls non-blocking sockets internally rather than failing with EAGAIN, so
// a synchronous min_complete wait could park the reactor thread.
//
// Implemented with raw syscalls (no liburing dependency); compiled to a
// stub that reports unsupported unless the build sets SBROKER_HAVE_IOURING
// (CMake -DSBROKER_IOURING=ON) and <linux/io_uring.h> exists. create() also
// returns null when the running kernel rejects io_uring_setup, so callers
// get graceful epoll fallback in every environment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

struct iovec;

namespace sbroker::net {

class UringQueue {
 public:
  /// True when the io_uring backend was compiled in (build-time capability;
  /// the kernel may still refuse at create()).
  static bool compiled_in();

  /// Sets up a ring with `entries` SQ slots. Null when compiled out or the
  /// kernel refuses.
  static std::unique_ptr<UringQueue> create(unsigned entries = 256);

  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Pollable ring fd (EPOLLIN = completions pending).
  int ring_fd() const;

  /// Queues one writev without submitting. `iov` (and the buffers it points
  /// at) must stay valid until the matching completion is drained. False
  /// when the SQ is full — flush() and retry, or fall back to plain writev.
  bool submit_writev(int fd, const iovec* iov, unsigned iovcnt, uint64_t user_data);

  /// Submits everything queued since the last flush in one io_uring_enter.
  /// Returns the kernel's submitted count, or a negative errno.
  int flush();

  using CompletionFn = std::function<void(uint64_t user_data, int32_t result)>;

  /// Reaps all pending CQEs, invoking `fn(user_data, result)` per entry
  /// (result is bytes written or a negative errno). Returns the count.
  unsigned drain_completions(const CompletionFn& fn);

  /// SQEs queued but not yet flushed.
  unsigned pending() const;

 private:
  struct Impl;
  explicit UringQueue(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace sbroker::net
