#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sbroker::obs {

size_t LatencyHistogram::index_for(uint64_t us) {
  if (us < kSubCount) return static_cast<size_t>(us);
  if (us >= kMaxTrackableUs) return kOverflowBucket;
  int msb = 63 - std::countl_zero(us);                      // [kSubBits, 29]
  int octave = msb - kSubBits;                              // [0, kOctaves-1]
  uint64_t sub = (us >> (msb - kSubBits)) - kSubCount;      // [0, kSubCount)
  return kSubCount + static_cast<size_t>(octave) * kSubCount +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::lower_bound_us(size_t index) {
  if (index < kSubCount) return index;
  if (index >= kOverflowBucket) return kMaxTrackableUs;
  size_t octave = (index - kSubCount) / kSubCount;
  uint64_t sub = (index - kSubCount) % kSubCount;
  return (kSubCount + sub) << octave;
}

uint64_t LatencyHistogram::bucket_width_us(size_t index) {
  if (index < kSubCount) return 1;
  if (index >= kOverflowBucket) return 0;  // unbounded above
  return 1ull << ((index - kSubCount) / kSubCount);
}

void LatencyHistogram::record_seconds(double seconds) {
  if (!(seconds > 0.0)) {  // also catches NaN
    record_us(0);
    return;
  }
  record_us(static_cast<uint64_t>(std::llround(seconds * 1e6)));
}

void LatencyHistogram::record_us(uint64_t us) {
  buckets_[index_for(us)] += 1;
  count_ += 1;
  sum_us_ += us;
  if (us > max_us_) max_us_ = us;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_us_ = std::max(max_us_, other.max_us_);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      if (i >= kOverflowBucket) return static_cast<double>(max_us_) * 1e-6;
      double mid = static_cast<double>(lower_bound_us(i)) +
                   static_cast<double>(bucket_width_us(i)) / 2.0;
      // The recorded maximum caps the estimate: a p99 landing in the top
      // occupied bucket must not report past the largest real sample.
      return std::min(mid, static_cast<double>(max_us_)) * 1e-6;
    }
  }
  return static_cast<double>(max_us_) * 1e-6;  // unreachable
}

namespace {

/// First bucket whose upper edge exceeds `min_seconds` (buckets at or below
/// it carry no information for an interval signal).
size_t first_eligible_bucket(double min_seconds) {
  size_t first = 0;
  while (first + 1 < LatencyHistogram::num_buckets() &&
         LatencyHistogram::bucket_upper_seconds(first) <= min_seconds) {
    ++first;
  }
  return first;
}

/// Bucket-wise saturating delta (a genuine earlier snapshot never exceeds
/// the current counts; saturation just makes a misuse harmless).
uint64_t bucket_delta(uint64_t current, uint64_t base) {
  return current > base ? current - base : 0;
}

}  // namespace

uint64_t LatencyHistogram::count_since(const LatencyHistogram& baseline,
                                       double min_seconds) const {
  uint64_t total = 0;
  for (size_t i = first_eligible_bucket(min_seconds); i < kNumBuckets; ++i) {
    total += bucket_delta(buckets_[i], baseline.buckets_[i]);
  }
  return total;
}

double LatencyHistogram::quantile_since(const LatencyHistogram& baseline,
                                        double q, double min_seconds) const {
  size_t first = first_eligible_bucket(min_seconds);
  uint64_t total = 0;
  for (size_t i = first; i < kNumBuckets; ++i) {
    total += bucket_delta(buckets_[i], baseline.buckets_[i]);
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = first; i < kNumBuckets; ++i) {
    seen += bucket_delta(buckets_[i], baseline.buckets_[i]);
    if (seen >= rank) {
      if (i >= kOverflowBucket) return static_cast<double>(max_us_) * 1e-6;
      double mid = static_cast<double>(lower_bound_us(i)) +
                   static_cast<double>(bucket_width_us(i)) / 2.0;
      return std::min(mid, static_cast<double>(max_us_)) * 1e-6;
    }
  }
  return static_cast<double>(max_us_) * 1e-6;  // unreachable
}

uint64_t LatencyHistogram::count_le(double bound_seconds) const {
  if (bound_seconds < 0.0) return 0;
  double bound_us = bound_seconds * 1e6;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    double upper = i >= kOverflowBucket
                       ? static_cast<double>(max_us_)
                       : static_cast<double>(lower_bound_us(i) + bucket_width_us(i));
    if (upper <= bound_us) total += buckets_[i];
  }
  return total;
}

double LatencyHistogram::bucket_lower_seconds(size_t index) {
  return static_cast<double>(lower_bound_us(index)) * 1e-6;
}

double LatencyHistogram::bucket_upper_seconds(size_t index) {
  if (index >= kOverflowBucket) return static_cast<double>(kMaxTrackableUs) * 1e-6;
  return static_cast<double>(lower_bound_us(index) + bucket_width_us(index)) * 1e-6;
}

}  // namespace sbroker::obs
