// Fixed-bucket log-linear latency histogram.
//
// The evaluation gap this closes: BrokerMetrics can say *how many* requests
// each class completed, but not *where* their time went. LatencyHistogram
// records one latency sample in O(1) with three integer writes (bucket
// increment, count, sum) and answers p50/p95/p99 with a bounded relative
// error, so the broker can report per-class, per-stage percentiles without
// keeping samples.
//
// Bucket layout (HdrHistogram-style, microsecond domain):
//   * values 0..31 us get one bucket each (exact);
//   * every power-of-two range [2^k, 2^(k+1)) above that is split into 32
//     equal sub-buckets, so bucket width is value/32 and the midpoint
//     estimate is within 1/64 ≈ 1.6% of any sample in the bucket;
//   * values at or above kMaxTrackableUs (2^30 us ≈ 18 min) land in a
//     dedicated overflow bucket whose quantile reports the recorded maximum.
//
// Threading: single writer. Each broker shard owns its histograms and only
// touches them from its own reactor (or sim) thread — recording is plain
// stores, no atomics, no locks. Cross-shard visibility goes through
// snapshot-and-merge on the owning thread (Reactor::post), the same pattern
// the sharded daemon already uses for BrokerMetrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbroker::obs {

class LatencyHistogram {
 public:
  /// Sub-buckets per power-of-two range; drives the error bound.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubCount = 1ull << kSubBits;  // 32
  /// Values at or above this many microseconds overflow.
  static constexpr uint64_t kMaxTrackableUs = 1ull << 30;
  /// Midpoint estimate error for in-range values: half a bucket width.
  static constexpr double kRelativeError = 1.0 / (2.0 * static_cast<double>(kSubCount));

  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  /// Records one latency. Negative values clamp to zero.
  void record_seconds(double seconds);
  void record_us(uint64_t us);

  /// Bucket-wise sum; the shard-merge primitive.
  void merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double sum_seconds() const { return static_cast<double>(sum_us_) * 1e-6; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : sum_seconds() / static_cast<double>(count_);
  }
  double max_seconds() const { return static_cast<double>(max_us_) * 1e-6; }

  /// Nearest-rank quantile, q in [0,1]; 0 when empty. Returns the midpoint
  /// of the bucket holding the rank (the recorded maximum for the overflow
  /// bucket), so the estimate is within kRelativeError of the true sample
  /// for values below kMaxTrackableUs (plus 0.5us quantization).
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Samples recorded at or above kMaxTrackableUs.
  uint64_t overflow_count() const { return buckets_[kOverflowBucket]; }

  /// Interval view against an earlier snapshot of this same histogram: the
  /// histograms are cumulative, so a feedback controller that wants "what
  /// happened since the last evaluation" subtracts bucket-wise. Buckets
  /// whose upper edge is <= `min_seconds` are excluded — the broker records
  /// admission drops and cache hits as 0.0 into kTotal, and those must not
  /// drag an overload signal's quantile toward zero (min_seconds = 1e-6
  /// excludes exactly the [0,1us) bucket).
  uint64_t count_since(const LatencyHistogram& baseline,
                       double min_seconds = 0.0) const;
  /// Nearest-rank quantile over the since-`baseline` delta; 0 when the
  /// interval holds no (eligible) samples.
  double quantile_since(const LatencyHistogram& baseline, double q,
                        double min_seconds = 0.0) const;

  /// Observations whose bucket upper edge is <= `bound_seconds` — the
  /// cumulative count behind a Prometheus `le` bucket. Conservative for
  /// bounds that cut a bucket in half; monotone in the bound, and equal to
  /// count() once the bound clears the largest recorded value.
  uint64_t count_le(double bound_seconds) const;

  /// Exposition/introspection access.
  static constexpr size_t num_buckets() { return kNumBuckets; }
  uint64_t bucket_count(size_t index) const { return buckets_[index]; }
  /// Inclusive lower / exclusive upper value edges of a bucket, seconds.
  static double bucket_lower_seconds(size_t index);
  static double bucket_upper_seconds(size_t index);

 private:
  // 32 linear buckets + 25 octaves ([2^5,2^30)) of 32 + 1 overflow.
  static constexpr size_t kOctaves = 30 - kSubBits;  // 25
  static constexpr size_t kOverflowBucket = kSubCount + kOctaves * kSubCount;
  static constexpr size_t kNumBuckets = kOverflowBucket + 1;

  static size_t index_for(uint64_t us);
  static uint64_t lower_bound_us(size_t index);
  static uint64_t bucket_width_us(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_us_ = 0;
  uint64_t max_us_ = 0;
};

}  // namespace sbroker::obs
