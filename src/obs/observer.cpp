#include "obs/observer.h"

namespace sbroker::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kBatchWait: return "batch_wait";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kChannelRtt: return "channel_rtt";
    case Stage::kTotal: return "total";
  }
  return "unknown";
}

BrokerObserver::BrokerObserver(const ObsConfig& config, int num_levels)
    : config_(config),
      num_levels_(num_levels < 1 ? 1 : num_levels),
      histograms_(static_cast<size_t>(num_levels_) * kNumStages),
      recorder_(config.trace ? config.trace_capacity : 0) {}

LatencyHistogram BrokerObserver::merged_histogram(Stage stage) const {
  LatencyHistogram out;
  for (int level = 1; level <= num_levels_; ++level) {
    out.merge(histograms_[slot(level, stage)]);
  }
  return out;
}

void BrokerObserver::merge(const BrokerObserver& other) {
  int levels = other.num_levels_ < num_levels_ ? other.num_levels_ : num_levels_;
  for (int level = 1; level <= levels; ++level) {
    for (size_t s = 0; s < kNumStages; ++s) {
      histograms_[slot(level, static_cast<Stage>(s))].merge(
          other.histograms_[other.slot(level, static_cast<Stage>(s))]);
    }
  }
}

}  // namespace sbroker::obs
