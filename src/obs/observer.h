// BrokerObserver: per-broker observability bundle.
//
// One observer lives inside every core::ServiceBroker (one per shard in the
// real daemon, one per host in the simulation) and carries the two new
// instruments: a LatencyHistogram per (QoS class, lifecycle stage) and a
// FlightRecorder of request events. The broker records into it from its
// timing marks (RequestContext submitted/batched/dispatched); everything is
// single-writer on the broker's own thread. Snapshots cross threads by
// copying the whole observer (a dozen small vectors) on the owning thread
// and merging the copies — the BrokerMetrics pattern.
//
// Both instruments can be disabled in config; a disabled instrument keeps
// its memory footprint but turns record calls into an early return, which is
// the "compiled in but idle" baseline the overhead experiment compares
// against.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace sbroker::obs {

/// Request-lifecycle stages with their own latency distributions.
enum class Stage : uint8_t {
  kBatchWait = 0,  ///< submit -> cluster batch formed
  kQueueWait,      ///< batch formed -> first dispatch (QoS queue residency)
  kChannelRtt,     ///< dispatch -> backend exchange resolved
  kTotal,          ///< submit -> reply (all outcomes)
};
inline constexpr size_t kNumStages = 4;

const char* stage_name(Stage stage);

struct ObsConfig {
  bool histograms = true;       ///< latency distributions per class x stage
  bool trace = true;            ///< request-event flight recorder
  size_t trace_capacity = 4096; ///< ring slots (rounded up to a power of 2)
};

class BrokerObserver {
 public:
  BrokerObserver() : BrokerObserver(ObsConfig{}, 3) {}
  BrokerObserver(const ObsConfig& config, int num_levels);

  void record(int level, Stage stage, double seconds) {
    if (!config_.histograms) return;
    histograms_[slot(level, stage)].record_seconds(seconds);
  }

  void trace(double t, uint64_t request_id, TraceEventKind kind, uint8_t level,
             uint16_t detail = 0) {
    if (!config_.trace) return;
    recorder_.record(t, request_id, kind, level, detail);
  }

  const LatencyHistogram& histogram(int level, Stage stage) const {
    return histograms_[slot(level, stage)];
  }

  /// One distribution across all classes for `stage`.
  LatencyHistogram merged_histogram(Stage stage) const;

  /// Folds another observer's histograms in (cross-shard aggregation). The
  /// flight recorder is deliberately not merged: traces stay per-shard and
  /// are concatenated/sorted by the dump path instead.
  void merge(const BrokerObserver& other);

  int num_levels() const { return num_levels_; }
  const ObsConfig& config() const { return config_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

 private:
  size_t slot(int level, Stage stage) const {
    if (level < 1) level = 1;
    if (level > num_levels_) level = num_levels_;
    return static_cast<size_t>(level - 1) * kNumStages +
           static_cast<size_t>(stage);
  }

  ObsConfig config_;
  int num_levels_;
  std::vector<LatencyHistogram> histograms_;  // level-major
  FlightRecorder recorder_;
};

}  // namespace sbroker::obs
