#include "obs/trace.h"

#include <bit>

namespace sbroker::obs {

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAdmit: return "admit";
    case TraceEventKind::kCacheHit: return "cache_hit";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kCluster: return "cluster";
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kDeadline: return "deadline";
    case TraceEventKind::kComplete: return "complete";
    case TraceEventKind::kCoalesce: return "coalesce";
    case TraceEventKind::kSwr: return "swr";
    case TraceEventKind::kOverload: return "overload";
  }
  return "unknown";
}

bool trace_event_terminal(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCacheHit:
    case TraceEventKind::kDrop:
    case TraceEventKind::kDeadline:
    case TraceEventKind::kComplete:
      return true;
    default:
      return false;
  }
}

FlightRecorder::FlightRecorder(size_t capacity) {
  if (capacity == 0) return;
  size_t rounded = std::bit_ceil(capacity);
  events_.resize(rounded);
  mask_ = rounded - 1;
}

std::vector<TraceEvent> FlightRecorder::dump() const {
  std::vector<TraceEvent> out;
  if (events_.empty() || head_ == 0) return out;
  uint64_t retained = head_ < events_.size() ? head_ : events_.size();
  out.reserve(retained);
  for (uint64_t i = head_ - retained; i < head_; ++i) {
    out.push_back(events_[i & mask_]);
  }
  return out;
}

}  // namespace sbroker::obs
