// Request-event flight recorder.
//
// A per-shard ring buffer of fixed-size trace events, written on the broker
// hot path for one array store plus a counter bump. It answers the question
// metrics cannot: *what happened to request N* — when it was admitted, which
// batch it joined, which replica carried it, how many times it retried, and
// how it terminated. The buffer holds the most recent `capacity` events;
// older ones are overwritten (flight-recorder semantics: on failure, dump
// the tail). Like the histograms, a recorder has a single writer (its shard)
// and is dumped from that same thread (Reactor::post for the admin plane).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbroker::obs {

enum class TraceEventKind : uint8_t {
  kAdmit = 0,    ///< context opened; detail = effective QoS level
  kCacheHit,     ///< terminal: served from the result cache (no context)
  kDrop,         ///< terminal: shed; detail 1 = admission, 2 = pool saturated
  kCluster,      ///< joined a dispatched batch; detail = batch size
  kDispatch,     ///< handed to a backend exchange; detail = replica index
  kRetry,        ///< re-dispatch scheduled; detail = attempts consumed
  kDeadline,     ///< terminal: shed on deadline expiry; detail = attempts
  kComplete,     ///< terminal: answered; detail = http::Fidelity
  kCoalesce,     ///< attached as waiter to an in-flight identical fetch;
                 ///< detail = waiters on the flight after attaching
  kSwr,          ///< stale value served within the revalidation grace
                 ///< window; detail 1 = this request claimed the refresh
  kOverload,     ///< overload-mode flip (request_id 0: a broker-level
                 ///< event); detail 1 = entered, 0 = exited; level carries
                 ///< the effective threshold, saturated at 255
};

const char* trace_event_name(TraceEventKind kind);

/// True for the kinds that end a request's story (exactly one per request).
bool trace_event_terminal(TraceEventKind kind);

struct TraceEvent {
  double t = 0.0;           ///< owner's clock (reactor or sim seconds)
  uint64_t request_id = 0;
  uint64_t seq = 0;         ///< recorder-local monotone sequence
  TraceEventKind kind = TraceEventKind::kAdmit;
  uint8_t level = 0;        ///< base QoS class
  uint16_t detail = 0;      ///< kind-specific (see TraceEventKind)
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; 0 disables recording.
  explicit FlightRecorder(size_t capacity);

  void record(double t, uint64_t request_id, TraceEventKind kind,
              uint8_t level, uint16_t detail = 0) {
    if (events_.empty()) return;  // disabled
    TraceEvent& slot = events_[head_ & mask_];
    slot.t = t;
    slot.request_id = request_id;
    slot.seq = head_;
    slot.kind = kind;
    slot.level = level;
    slot.detail = detail;
    ++head_;
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> dump() const;

  /// Events ever recorded (including overwritten ones).
  uint64_t recorded() const { return head_; }
  /// Events lost to wraparound.
  uint64_t dropped() const {
    return head_ > events_.size() ? head_ - events_.size() : 0;
  }
  size_t capacity() const { return events_.size(); }
  void clear() { head_ = 0; }

 private:
  std::vector<TraceEvent> events_;
  uint64_t head_ = 0;  ///< total records; head_ & mask_ = next slot
  uint64_t mask_ = 0;
};

}  // namespace sbroker::obs
