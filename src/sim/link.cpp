#include "sim/link.h"

#include <algorithm>
#include <cmath>

namespace sbroker::sim {

Link::Link(Simulation& sim, Params params, util::Rng rng)
    : sim_(sim), params_(std::move(params)), rng_(rng), created_at_(sim.now()) {}

double Link::bandwidth_at(Time t) const {
  if (params_.bandwidth_trace.empty()) return params_.bytes_per_second;
  Duration offset = std::max(0.0, t - created_at_);
  if (params_.trace_period > 0.0) offset = std::fmod(offset, params_.trace_period);
  // Last step with at <= offset; the trace is sorted and starts at 0.
  double bw = params_.bandwidth_trace.front().bytes_per_second;
  for (const BandwidthStep& step : params_.bandwidth_trace) {
    if (step.at > offset) break;
    bw = step.bytes_per_second;
  }
  return bw;
}

bool Link::deliver(std::function<void()> on_arrival, size_t bytes) {
  if (down_) {
    ++dropped_;
    return false;
  }
  Time now = sim_.now();
  // One channel: this message's transmission starts when the previous one's
  // finished, at whatever bandwidth the trace grants at that moment.
  Time tx_end = std::max(now, tx_free_at_);
  if (bytes > 0) {
    double bw = bandwidth_at(tx_end);
    if (bw > 0) tx_end += static_cast<double>(bytes) / bw;
  }
  tx_free_at_ = tx_end;
  Duration tail = params_.latency;
  if (params_.jitter > 0) tail += rng_.uniform_real(0.0, params_.jitter);
  Time arrival = tx_end + tail;
  // FIFO: a small jitter draw must not let this message overtake an earlier
  // one still in flight (pipelined channels downstream match replies by
  // arrival order).
  if (arrival < last_arrival_) {
    arrival = last_arrival_;
    ++fifo_holds_;
  }
  last_arrival_ = arrival;
  ++delivered_;
  sim_.at(arrival, std::move(on_arrival));
  return true;
}

Link::Params lan_profile() { return Link::Params{0.0002, 0.0, 0.0, {}, 0.0}; }

Link::Params wan_profile() { return Link::Params{0.040, 0.020, 0.0, {}, 0.0}; }

Link::Params ipc_profile() { return Link::Params{0.00002, 0.0, 0.0, {}, 0.0}; }

Link::Params cellular_profile() {
  // Shaped after the cellular uplink traces the ns3 congestion-control
  // harnesses replay: a few seconds of decent throughput, a deep sag (handoff
  // / congested cell), partial recovery, repeating. Values in bytes/second.
  Link::Params p;
  p.latency = 0.050;
  p.jitter = 0.030;
  p.bandwidth_trace = {
      {0.0, 1'250'000.0},   // ~10 Mbit/s
      {2.0, 500'000.0},     // ~4 Mbit/s
      {3.5, 60'000.0},      // sag: ~0.5 Mbit/s
      {5.0, 250'000.0},     // ~2 Mbit/s
      {7.0, 900'000.0},     // recovery: ~7 Mbit/s
  };
  p.trace_period = 9.0;
  return p;
}

}  // namespace sbroker::sim
