#include "sim/link.h"

namespace sbroker::sim {

Link::Link(Simulation& sim, Params params, util::Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

bool Link::deliver(std::function<void()> on_arrival, size_t bytes) {
  if (down_) {
    ++dropped_;
    return false;
  }
  Duration delay = params_.latency;
  if (params_.jitter > 0) delay += rng_.uniform_real(0.0, params_.jitter);
  if (params_.bytes_per_second > 0 && bytes > 0) {
    delay += static_cast<double>(bytes) / params_.bytes_per_second;
  }
  ++delivered_;
  sim_.after(delay, std::move(on_arrival));
  return true;
}

Link::Params lan_profile() { return Link::Params{0.0002, 0.0, 0.0}; }

Link::Params wan_profile() { return Link::Params{0.040, 0.020, 0.0}; }

Link::Params ipc_profile() { return Link::Params{0.00002, 0.0, 0.0}; }

}  // namespace sbroker::sim
