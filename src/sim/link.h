// Network links for the simulated testbed.
//
// A `Link` delivers messages after a propagation latency plus optional
// uniform jitter, and charges a per-byte transmission cost. LAN links are
// sub-millisecond and jitter-free; WAN links (loosely coupled backends,
// Section I of the paper) are tens of milliseconds with jitter. A link can
// be taken down to inject failures: messages sent while down are dropped
// (with an optional notification), matching the paper's congested-channel
// transaction-abort scenario.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulation.h"
#include "util/rng.h"

namespace sbroker::sim {

class Link {
 public:
  struct Params {
    Duration latency = 0.0002;        ///< one-way propagation delay (s)
    Duration jitter = 0.0;            ///< max extra uniform delay (s)
    double bytes_per_second = 0.0;    ///< 0 disables transmission delay
  };

  Link(Simulation& sim, Params params, util::Rng rng = util::Rng(1));

  /// Delivers `on_arrival` after latency (+ jitter + size/bandwidth).
  /// Returns false and drops the message when the link is down.
  bool deliver(std::function<void()> on_arrival, size_t bytes = 0);

  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return dropped_; }
  const Params& params() const { return params_; }

 private:
  Simulation& sim_;
  Params params_;
  util::Rng rng_;
  bool down_ = false;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

/// Canonical link profiles for the testbeds in this repo.
Link::Params lan_profile();   ///< ~0.2 ms, no jitter — tightly coupled
Link::Params wan_profile();   ///< ~40 ms ± 20 ms jitter — loosely coupled
Link::Params ipc_profile();   ///< ~20 µs — web app process <-> local broker

}  // namespace sbroker::sim
