// Network links for the simulated testbed.
//
// A `Link` delivers messages after a propagation latency plus optional
// uniform jitter, and charges a per-byte transmission cost. LAN links are
// sub-millisecond and jitter-free; WAN links (loosely coupled backends,
// Section I of the paper) are tens of milliseconds with jitter. A link can
// be taken down to inject failures: messages sent while down are dropped
// (with an optional notification), matching the paper's congested-channel
// transaction-abort scenario.
//
// Degraded-link modelling (the ROADMAP's trace-shaped workloads item):
//   * Bandwidth variation — `Params::bandwidth_trace` is a step function of
//     bytes/second over time since link creation (optionally looping every
//     `trace_period` seconds), the shape cellular uplink traces take in the
//     ns3 congestion-control harnesses. When set it overrides the constant
//     `bytes_per_second`.
//   * Transmission serialization — a link is one channel: a message's
//     transmission starts only when the previous one's finished, so a
//     bandwidth sag queues traffic behind it instead of delaying each
//     message independently.
//   * FIFO delivery — two `deliver()` calls on one link arrive in send
//     order even when independent jitter draws cross; the pipelined
//     backend channels downstream assume FIFO and would mis-match replies
//     otherwise. Delivery times are clamped monotone per link.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace sbroker::sim {

class Link {
 public:
  /// One step of a bandwidth trace: from `at` seconds (since link creation)
  /// onward the link serves `bytes_per_second`, until the next step.
  struct BandwidthStep {
    Duration at = 0.0;
    double bytes_per_second = 0.0;  ///< 0 = no transmission delay this step
  };

  struct Params {
    Duration latency = 0.0002;        ///< one-way propagation delay (s)
    Duration jitter = 0.0;            ///< max extra uniform delay (s)
    double bytes_per_second = 0.0;    ///< 0 disables transmission delay
    /// Step-function bandwidth over time; overrides bytes_per_second when
    /// non-empty. Steps must be sorted by `at`, first step at 0.
    std::vector<BandwidthStep> bandwidth_trace;
    /// Loop the trace every this many seconds; 0 holds the last step.
    Duration trace_period = 0.0;
  };

  Link(Simulation& sim, Params params, util::Rng rng = util::Rng(1));

  /// Delivers `on_arrival` after latency (+ jitter + transmission time at
  /// the current bandwidth). Returns false and drops the message when the
  /// link is down. Delivery order always matches call order (FIFO).
  bool deliver(std::function<void()> on_arrival, size_t bytes = 0);

  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Bandwidth in effect at simulation time `t` (absolute, like sim.now()).
  double bandwidth_at(Time t) const;

  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return dropped_; }
  /// Deliveries whose raw latency+jitter draw would have overtaken an
  /// earlier message and were clamped behind it instead.
  uint64_t fifo_holds() const { return fifo_holds_; }
  const Params& params() const { return params_; }

 private:
  Simulation& sim_;
  Params params_;
  util::Rng rng_;
  bool down_ = false;
  Time created_at_ = 0.0;
  Time tx_free_at_ = 0.0;     ///< when the channel finishes its current send
  Time last_arrival_ = 0.0;   ///< monotone-delivery clamp
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t fifo_holds_ = 0;
};

/// Canonical link profiles for the testbeds in this repo.
Link::Params lan_profile();   ///< ~0.2 ms, no jitter — tightly coupled
Link::Params wan_profile();   ///< ~40 ms ± 20 ms jitter — loosely coupled
Link::Params ipc_profile();   ///< ~20 µs — web app process <-> local broker
/// ~50 ms ± 30 ms with a looping cellular-style bandwidth trace (sags to
/// dial-up-class throughput mid-cycle) — the congested channel of §I.
Link::Params cellular_profile();

}  // namespace sbroker::sim
