#include "sim/simulation.h"

#include <cassert>

namespace sbroker::sim {

EventId Simulation::at(Time t, Callback cb) {
  if (t < now_) t = now_;
  EventId id = next_id_++;
  queue_.push(Event{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulation::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already fired or never existed
  callbacks_.erase(it);
  cancelled_.insert(id);
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(ev.id);
    assert(cb_it != callbacks_.end());
    Callback cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    assert(ev.t >= now_);
    now_ = ev.t;
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulation::run_until(Time t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.t > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace sbroker::sim
