// Discrete-event simulation core.
//
// A `Simulation` owns a virtual clock and an event queue. Actors (stations,
// links, servers, clients) schedule callbacks at absolute or relative virtual
// times. Event ordering is deterministic: ties on timestamp break by
// insertion sequence, so a run is a pure function of (model, seed).
//
// Time is in seconds as `double`; the experiments in this repo span minutes
// of virtual time with sub-millisecond resolution, comfortably inside double
// precision.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sbroker::sim {

using Time = double;
using Duration = double;

/// Identifies a scheduled event for cancellation.
using EventId = uint64_t;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time (seconds).
  Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now()).
  EventId at(Time t, Callback cb);

  /// Schedules `cb` after `delay` seconds (clamped to 0).
  EventId after(Duration delay, Callback cb) { return at(now_ + delay, std::move(cb)); }

  /// Cancels a scheduled event. Cancelling an already-fired or unknown id is
  /// a no-op (timers race with completions; both sides may try to cancel).
  void cancel(EventId id);

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains or `max_events` fire.
  void run(uint64_t max_events = UINT64_MAX);

  /// Runs all events with timestamp <= t, then sets the clock to exactly t.
  void run_until(Time t);

  /// Number of events still scheduled (including cancelled-but-unpopped).
  size_t pending() const { return queue_.size() - cancelled_.size(); }

  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time t;
    uint64_t seq;  // FIFO tie-break
    EventId id;
    // Ordered as a min-heap via operator> in the comparator below.
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  // Callbacks stored separately so Event stays trivially copyable in the heap.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace sbroker::sim
