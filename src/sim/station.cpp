#include "sim/station.h"

#include <cassert>
#include <utility>

namespace sbroker::sim {

BoundedStation::BoundedStation(Simulation& sim, size_t capacity, size_t queue_limit)
    : sim_(sim), capacity_(capacity), queue_limit_(queue_limit) {
  assert(capacity > 0);
}

bool BoundedStation::submit(Duration service_time, Completion on_complete) {
  Pending job{service_time, std::move(on_complete), sim_.now()};
  if (busy_ < capacity_) {
    start(std::move(job));
    return true;
  }
  if (queue_.size() >= queue_limit_) {
    ++rejections_;
    return false;
  }
  queue_.push_back(std::move(job));
  return true;
}

void BoundedStation::start(Pending job) {
  ++busy_;
  queue_wait_.add(sim_.now() - job.enqueued_at);
  Completion on_complete = std::move(job.on_complete);
  sim_.after(job.service_time, [this, cb = std::move(on_complete)]() mutable {
    finish();
    if (cb) cb();
  });
}

void BoundedStation::finish() {
  assert(busy_ > 0);
  --busy_;
  ++completions_;
  if (!queue_.empty() && busy_ < capacity_) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

PriorityStation::PriorityStation(Simulation& sim, size_t capacity, size_t queue_limit)
    : sim_(sim), capacity_(capacity), queue_limit_(queue_limit) {
  assert(capacity > 0);
}

bool PriorityStation::submit(int priority, Duration service_time, Completion on_complete) {
  Pending job{service_time, std::move(on_complete)};
  if (busy_ < capacity_) {
    start(std::move(job));
    return true;
  }
  if (queued_ >= queue_limit_) {
    ++rejections_;
    return false;
  }
  queues_[-priority].push_back(std::move(job));
  ++queued_;
  return true;
}

void PriorityStation::start(Pending job) {
  ++busy_;
  Completion on_complete = std::move(job.on_complete);
  sim_.after(job.service_time, [this, cb = std::move(on_complete)]() mutable {
    finish();
    if (cb) cb();
  });
}

void PriorityStation::finish() {
  assert(busy_ > 0);
  --busy_;
  ++completions_;
  if (queued_ > 0 && busy_ < capacity_) {
    auto it = queues_.begin();
    assert(it != queues_.end() && !it->second.empty());
    Pending next = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    --queued_;
    start(std::move(next));
  }
}

}  // namespace sbroker::sim
