// Bounded service stations: the queueing building block for every server
// model in this repo.
//
// `BoundedStation` models a pool of `capacity` identical workers in front of
// a FIFO queue with an optional length limit — exactly the shape of an
// Apache-style process pool (`MaxClients` workers) or a database server's
// connection/thread cap. `PriorityStation` orders the queue by priority
// (higher first, FIFO within a class), which the broker scheduler uses to
// avoid priority inversion.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>

#include "sim/simulation.h"
#include "util/stats.h"

namespace sbroker::sim {

/// A worker pool + FIFO queue. Jobs carry their own service time.
class BoundedStation {
 public:
  using Completion = std::function<void()>;

  /// `capacity` simultaneous jobs; queue holds up to `queue_limit` more.
  BoundedStation(Simulation& sim, size_t capacity,
                 size_t queue_limit = std::numeric_limits<size_t>::max());

  /// Submits a job. Returns false (and drops the job) when the queue is
  /// full; `on_complete` is then never invoked. Callers holding one-shot
  /// resources in the completion should check would_accept() first.
  bool submit(Duration service_time, Completion on_complete);

  /// True when a submit() right now would be admitted.
  bool would_accept() const { return busy_ < capacity_ || queue_.size() < queue_limit_; }

  size_t busy() const { return busy_; }
  size_t queued() const { return queue_.size(); }
  /// Jobs admitted but not yet completed (in service + queued).
  size_t outstanding() const { return busy_ + queue_.size(); }
  size_t capacity() const { return capacity_; }

  uint64_t completions() const { return completions_; }
  uint64_t rejections() const { return rejections_; }

  /// Time each completed job spent waiting in the queue (not in service).
  const util::Summary& queue_wait() const { return queue_wait_; }

 private:
  struct Pending {
    Duration service_time;
    Completion on_complete;
    Time enqueued_at;
  };

  void start(Pending job);
  void finish();

  Simulation& sim_;
  size_t capacity_;
  size_t queue_limit_;
  size_t busy_ = 0;
  std::deque<Pending> queue_;
  uint64_t completions_ = 0;
  uint64_t rejections_ = 0;
  util::Summary queue_wait_;
};

/// A worker pool with a priority queue: higher `priority` is served first,
/// FIFO within equal priorities.
class PriorityStation {
 public:
  using Completion = std::function<void()>;

  PriorityStation(Simulation& sim, size_t capacity,
                  size_t queue_limit = std::numeric_limits<size_t>::max());

  bool submit(int priority, Duration service_time, Completion on_complete);

  size_t busy() const { return busy_; }
  size_t queued() const { return queued_; }
  size_t outstanding() const { return busy_ + queued_; }
  uint64_t completions() const { return completions_; }
  uint64_t rejections() const { return rejections_; }

 private:
  struct Pending {
    Duration service_time;
    Completion on_complete;
  };

  void start(Pending job);
  void finish();

  Simulation& sim_;
  size_t capacity_;
  size_t queue_limit_;
  size_t busy_ = 0;
  size_t queued_ = 0;
  // Key: -priority so begin() is the highest priority; FIFO via deque.
  std::map<int, std::deque<Pending>> queues_;
  uint64_t completions_ = 0;
  uint64_t rejections_ = 0;
};

}  // namespace sbroker::sim
