#include "srv/broker_host.h"
#include "util/rng.h"

namespace sbroker::srv {

BrokerHost::BrokerHost(sim::Simulation& sim, std::string name,
                       core::BrokerConfig config, sim::Link::Params ipc,
                       uint64_t link_seed)
    : sim_(sim),
      broker_(std::move(name), config),
      inbound_(sim, ipc, util::Rng(util::derive_seed(link_seed, 0))),
      outbound_(sim, ipc, util::Rng(util::derive_seed(link_seed, 1))) {
  // A retry scheduled from inside a backend completion can move the next
  // due time earlier than the armed timer; the broker tells us to re-arm.
  broker_.set_wakeup([this]() { arm_timer(); });
}

void BrokerHost::submit(const http::BrokerRequest& request, ReplyFn reply) {
  if (inbound_.is_down()) return;  // UDP: a lost request is simply lost
  inbound_.deliver([this, request, reply = std::move(reply)]() mutable {
    broker_.submit(sim_.now(), request,
                   [this, reply = std::move(reply)](const http::BrokerReply& br) {
                     if (outbound_.is_down()) return;
                     outbound_.deliver([reply, br]() { reply(br); });
                   });
    arm_timer();
  });
}

void BrokerHost::kick() {
  broker_.tick(sim_.now());
  arm_timer();
}

void BrokerHost::arm_timer() {
  auto deadline = broker_.next_deadline();
  if (!deadline) return;
  if (timer_armed_) sim_.cancel(timer_);
  timer_armed_ = true;
  timer_ = sim_.at(*deadline, [this]() {
    timer_armed_ = false;
    broker_.tick(sim_.now());
    arm_timer();
  });
}

}  // namespace sbroker::srv
