// Hosts a core::ServiceBroker inside the discrete-event simulation.
//
// Web application processes and brokers "exchange request and response
// messages through lightweight UDP" (Section V-B-1); the host models that
// hop with an IPC-grade link in each direction and keeps the broker's
// time-based machinery honest by scheduling tick() at the broker's
// next_deadline() (cluster flush deadlines, prefetch refresh).
#pragma once

#include <functional>
#include <memory>

#include "core/broker.h"
#include "sim/link.h"
#include "sim/simulation.h"

namespace sbroker::srv {

class BrokerHost {
 public:
  using ReplyFn = core::ServiceBroker::ReplyFn;

  BrokerHost(sim::Simulation& sim, std::string name, core::BrokerConfig config,
             sim::Link::Params ipc = sim::ipc_profile(), uint64_t link_seed = 31);

  /// Sends a request message to the broker; `reply` is delivered back over
  /// the IPC link when the broker answers.
  void submit(const http::BrokerRequest& request, ReplyFn reply);

  /// Runs a tick now and (re)arms the deadline timer. Call after registering
  /// prefetch entries so their schedule starts without waiting for traffic.
  void kick();

  core::ServiceBroker& broker() { return broker_; }
  const core::ServiceBroker& broker() const { return broker_; }
  /// The broker's latency histograms + flight recorder (sim hosts record
  /// into the same obs types as the real daemon shards).
  obs::BrokerObserver& observer() { return broker_.observer(); }
  const obs::BrokerObserver& observer() const { return broker_.observer(); }
  sim::Link& inbound_link() { return inbound_; }
  sim::Link& outbound_link() { return outbound_; }

 private:
  void arm_timer();

  sim::Simulation& sim_;
  core::ServiceBroker broker_;
  sim::Link inbound_;
  sim::Link outbound_;
  sim::EventId timer_ = 0;
  bool timer_armed_ = false;
};

}  // namespace sbroker::srv
