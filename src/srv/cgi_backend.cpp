#include "srv/cgi_backend.h"

#include "core/cluster.h"
#include "util/rng.h"

namespace sbroker::srv {

SimCgiBackend::SimCgiBackend(sim::Simulation& sim, std::string name,
                             CgiBackendConfig config)
    : sim_(sim),
      name_(std::move(name)),
      config_(config),
      station_(sim, config.capacity, config.queue_limit),
      request_link_(sim, config.link,
                    util::Rng(util::derive_seed(config.link_seed, 0))),
      response_link_(sim, config.link,
                     util::Rng(util::derive_seed(config.link_seed, 1))) {}

void SimCgiBackend::invoke(const Call& call, Completion done) {
  ++calls_;
  double setup = call.needs_connection_setup ? config_.connection_setup : 0.0;
  std::string payload = call.payload;

  if (request_link_.is_down()) {
    ++failures_;
    sim_.after(0.0,
               [this, done = std::move(done)]() { done(sim_.now(), false, "link down"); });
    return;
  }

  request_link_.deliver([this, payload = std::move(payload), setup,
                         done = std::move(done)]() mutable {
    auto records = core::ClusterEngine::split_records(payload);
    // One worker runs every record of the batch back to back.
    double service_time = setup + config_.processing_time * static_cast<double>(records.size());

    std::string reply;
    for (size_t i = 0; i < records.size(); ++i) {
      if (i) reply += core::kRecordSep;
      reply += "<html>" + name_ + " served " + records[i] + "</html>";
    }

    auto respond = [this](bool ok, std::string body, Completion cb) {
      if (response_link_.is_down()) {
        sim_.after(0.0, [this, cb = std::move(cb)]() {
          cb(sim_.now(), false, "response link down");
        });
        return;
      }
      response_link_.deliver(
          [this, ok, body = std::move(body), cb = std::move(cb)]() mutable {
            cb(sim_.now(), ok, body);
          });
    };

    if (!station_.would_accept()) {
      ++failures_;
      respond(false, "backend queue full", std::move(done));
      return;
    }
    station_.submit(service_time,
                    [respond, reply = std::move(reply), done = std::move(done)]() mutable {
                      respond(true, std::move(reply), std::move(done));
                    });
  });
}

}  // namespace sbroker::srv
