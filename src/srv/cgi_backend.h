// Simulated CGI backend server with bounded processing time.
//
// The differentiation testbed (paper Figure 8): "The backend services
// provided by each backend servers are CGI requests with bounded processing
// time. The processing time of each of the services is 1, 2 and 3 seconds at
// the backend servers 1, 2 and 3. ... The maximum number of server processes
// in each of the backend Web servers is set to be 5, therefore only 5
// requests can be processed simultaneously and the rests are queued."
//
// The reply body is a canned page derived from the payload. Batched payloads
// (record-separated) cost `processing_time` per record, serialized in one
// worker, mirroring the clustered-script behaviour.
#pragma once

#include <string>

#include "core/backend.h"
#include "sim/link.h"
#include "sim/simulation.h"
#include "sim/station.h"

namespace sbroker::srv {

struct CgiBackendConfig {
  double processing_time = 1.0;  ///< seconds per CGI request
  size_t capacity = 5;           ///< MaxClients
  size_t queue_limit = SIZE_MAX;
  sim::Link::Params link = sim::lan_profile();
  double connection_setup = 0.010;
  uint64_t link_seed = 21;
};

class SimCgiBackend : public core::Backend {
 public:
  SimCgiBackend(sim::Simulation& sim, std::string name, CgiBackendConfig config);

  void invoke(const Call& call, Completion done) override;

  const sim::BoundedStation& station() const { return station_; }
  uint64_t calls() const { return calls_; }
  uint64_t failures() const { return failures_; }
  const std::string& name() const { return name_; }

  /// Failure injection: take the network paths up or down mid-run.
  sim::Link& request_link() { return request_link_; }
  sim::Link& response_link() { return response_link_; }

 private:
  sim::Simulation& sim_;
  std::string name_;
  CgiBackendConfig config_;
  sim::BoundedStation station_;
  sim::Link request_link_;
  sim::Link response_link_;
  uint64_t calls_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace sbroker::srv
