#include "srv/db_backend.h"

#include "core/cluster.h"
#include "db/executor.h"
#include "db/parser.h"
#include "util/rng.h"

namespace sbroker::srv {

SimDbBackend::SimDbBackend(sim::Simulation& sim, db::Database& db,
                           DbBackendConfig config)
    : sim_(sim),
      db_(db),
      config_(config),
      station_(sim, config.capacity, config.queue_limit),
      request_link_(sim, config.link,
                    util::Rng(util::derive_seed(config.link_seed, 0))),
      response_link_(sim, config.link,
                     util::Rng(util::derive_seed(config.link_seed, 1))),
      profile_rng_(util::derive_seed(config.link_seed, 2)) {}

SimDbBackend::Execution SimDbBackend::execute_payload(const std::string& payload) const {
  Execution result;
  db::ExecStats total;
  total.repeats = 0;
  std::string reply;
  bool first_chunk = true;

  auto append_chunk = [&](std::string chunk) {
    if (!first_chunk) reply += core::kRecordSep;
    reply += chunk;
    first_chunk = false;
  };

  try {
    for (const std::string& record : core::ClusterEngine::split_records(payload)) {
      db::SelectQuery query = db::parse_select(record);
      uint64_t repeats = query.repeat;
      query.repeat = 1;
      for (uint64_t i = 0; i < repeats; ++i) {
        db::ResultSet rs = db::execute(db_, query);
        total.rows_examined += rs.stats.rows_examined;
        total.rows_returned += rs.stats.rows_returned;
        total.repeats += 1;
        append_chunk(rs.to_text());
      }
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.reply = std::string("query error: ") + e.what();
    // Even a failed query consumed the fixed overhead.
    result.service_time = config_.cost.fixed_seconds;
    return result;
  }

  result.ok = true;
  result.reply = std::move(reply);
  result.service_time = config_.cost.service_time(total);
  return result;
}

void SimDbBackend::invoke(const Call& call, const core::CancelTokenPtr& token,
                          Completion done) {
  if (!token) {
    invoke(call, std::move(done));
    return;
  }
  // Exactly-once arbitration between the normal completion path and the
  // broker's cancel token (fired when every member of the exchange expired).
  struct State {
    bool completed = false;
    Completion done;
  };
  auto state = std::make_shared<State>();
  state->done = std::move(done);
  token->set_callback([this, state]() {
    if (state->completed) return;
    state->completed = true;
    ++cancels_;
    sim_.after(0.0, [this, done = std::move(state->done)]() {
      done(sim_.now(), false, "exchange cancelled");
    });
  });
  if (state->completed) return;  // token was already cancelled
  invoke(call, [state](double t, bool ok, std::string payload) {
    if (state->completed) return;
    state->completed = true;
    state->done(t, ok, std::move(payload));
  });
}

void SimDbBackend::invoke(const Call& call, Completion done) {
  ++calls_;
  if (stalled_) {
    // Half-open failure: the request is consumed and no reply ever comes.
    // Only a deadline (and its cancel token) resolves the caller.
    ++stalls_;
    return;
  }
  double setup = call.needs_connection_setup ? config_.connection_setup : 0.0;
  std::string payload = call.payload;

  // A downed link loses the request; surface it as a failure so the broker
  // can answer the client instead of leaking the pending entry.
  if (request_link_.is_down()) {
    ++failures_;
    sim_.after(0.0, [this, done = std::move(done)]() { done(sim_.now(), false, "link down"); });
    return;
  }

  request_link_.deliver([this, payload = std::move(payload), setup,
                                     done = std::move(done)]() mutable {
    Execution exec = execute_payload(payload);
    auto respond = [this](bool ok, std::string reply, Completion cb) {
      if (response_link_.is_down()) {
        // The reply is lost on the wire; fail the call so the caller's
        // pending state resolves instead of hanging forever.
        sim_.after(0.0, [this, cb = std::move(cb)]() {
          cb(sim_.now(), false, "response link down");
        });
        return;
      }
      response_link_.deliver([this, ok, reply = std::move(reply),
                              cb = std::move(cb)]() mutable {
        cb(sim_.now(), ok, reply);
      });
    };
    if (!station_.would_accept()) {
      ++failures_;
      respond(false, "backend queue full", std::move(done));
      return;
    }
    double service_time =
        setup + config_.profile.sample(exec.service_time, sim_.now(),
                                       profile_rng_);
    bool exec_ok = exec.ok;
    std::string reply = std::move(exec.reply);
    station_.submit(service_time,
                    [this, exec_ok, reply = std::move(reply), respond,
                     done = std::move(done)]() mutable {
                      if (!exec_ok) ++failures_;
                      respond(exec_ok, std::move(reply), std::move(done));
                    });
  });
}

}  // namespace sbroker::srv
