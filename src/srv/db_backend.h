// Simulated database backend server.
//
// Models the clustering-experiment backend (paper Figure 6): an Apache-like
// bounded worker pool in front of a MySQL-like database. A call travels the
// link, waits for one of `capacity` workers, executes its payload against
// the in-memory engine (service time from the cost model), and the reply
// travels the link back.
//
// Payload format: one or more SQL statements joined by the cluster record
// separator (core::kRecordSep). A `... REPEAT n` statement is executed as n
// single-shot runs whose result texts are joined with the record separator,
// so the broker can split per-member results exactly. Parse/execution errors
// fail the whole call (ok=false) with a diagnostic payload.
#pragma once

#include <memory>
#include <string>

#include "core/backend.h"
#include "db/cost_model.h"
#include "db/database.h"
#include "sim/link.h"
#include "sim/simulation.h"
#include "sim/station.h"
#include "srv/service_profile.h"

namespace sbroker::srv {

struct DbBackendConfig {
  size_t capacity = 5;          ///< simultaneous requests (paper: "at most 5")
  size_t queue_limit = SIZE_MAX;
  sim::Link::Params link = sim::lan_profile();
  double connection_setup = 0.010;  ///< TCP+auth handshake when not pooled
  db::CostModel cost;
  uint64_t link_seed = 11;
  /// Heterogeneity: shapes this replica's service times (identity default).
  ServiceProfile profile;
};

class SimDbBackend : public core::Backend {
 public:
  /// `db` must outlive the backend.
  SimDbBackend(sim::Simulation& sim, db::Database& db, DbBackendConfig config);

  void invoke(const Call& call, Completion done) override;
  void invoke(const Call& call, const core::CancelTokenPtr& token,
              Completion done) override;

  const sim::BoundedStation& station() const { return station_; }
  uint64_t calls() const { return calls_; }
  uint64_t failures() const { return failures_; }
  uint64_t stalls() const { return stalls_; }
  uint64_t cancels() const { return cancels_; }

  /// Failure injection: take the network paths up or down mid-run.
  sim::Link& request_link() { return request_link_; }
  sim::Link& response_link() { return response_link_; }
  /// Failure injection: a stalled backend consumes requests and never
  /// replies — the half-open failure mode deadlines and cancel tokens
  /// exist for (a downed link at least fails fast).
  void set_stalled(bool stalled) { stalled_ = stalled; }

 private:
  struct Execution {
    bool ok = false;
    std::string reply;
    double service_time = 0.0;
  };

  /// Runs the payload against the engine, returning reply + service time.
  Execution execute_payload(const std::string& payload) const;

  sim::Simulation& sim_;
  db::Database& db_;
  DbBackendConfig config_;
  sim::BoundedStation station_;
  sim::Link request_link_;
  sim::Link response_link_;
  util::Rng profile_rng_;
  uint64_t calls_ = 0;
  uint64_t failures_ = 0;
  uint64_t stalls_ = 0;
  uint64_t cancels_ = 0;
  bool stalled_ = false;
};

}  // namespace sbroker::srv
