// In-process database backend (wall-clock, synchronous).
//
// For the real-socket daemon and the quickstart example: executes the SQL
// payload against an embedded db::Database on the calling thread and
// completes immediately. Batched (record-separated) and REPEAT payloads
// behave exactly like srv::SimDbBackend, minus the simulated time.
#pragma once

#include <functional>

#include "core/backend.h"
#include "core/cluster.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"

namespace sbroker::srv {

class InprocDbBackend : public core::Backend {
 public:
  using NowFn = std::function<double()>;

  /// `now` supplies completion timestamps (e.g. the reactor clock, or a
  /// monotonically increasing fake for unit tests).
  InprocDbBackend(db::Database& db, NowFn now) : db_(db), now_(std::move(now)) {}

  void invoke(const Call& call, Completion done) override {
    std::string reply;
    bool ok = true;
    bool first = true;
    auto append = [&](std::string chunk) {
      if (!first) reply += core::kRecordSep;
      reply += chunk;
      first = false;
    };
    try {
      for (const std::string& record : core::ClusterEngine::split_records(call.payload)) {
        db::SelectQuery query = db::parse_select(record);
        uint64_t repeats = query.repeat;
        query.repeat = 1;
        for (uint64_t i = 0; i < repeats; ++i) {
          append(db::execute(db_, query).to_text());
        }
      }
    } catch (const std::exception& e) {
      ok = false;
      reply = std::string("query error: ") + e.what();
    }
    done(now_(), ok, reply);
  }

 private:
  db::Database& db_;
  NowFn now_;
};

}  // namespace sbroker::srv
