// Per-replica service-time profile: makes backend replicas genuinely
// heterogeneous so latency-aware balancing has something to measure.
//
// A profile shapes a backend's nominal service time with a constant base
// cost, multiplicative jitter, and an optional slow phase: `multiplier`
// applies from `degrade_after` seconds of simulated/elapsed time onward
// (degrade_after = 0 means it applies from the start, modelling a replica
// that is simply slower hardware; > 0 models one that degrades mid-run, the
// case EWMA decay must notice and react to). The default profile is the
// identity — existing backends keep their exact service times.
#pragma once

#include <algorithm>

#include "util/rng.h"

namespace sbroker::srv {

struct ServiceProfile {
  double base = 0.0;          ///< seconds added to every request
  double jitter = 0.0;        ///< fractional uniform jitter, e.g. 0.1 = ±10%
  double multiplier = 1.0;    ///< slow-phase service-time factor
  double degrade_after = 0.0; ///< seconds of run time before the slow phase

  /// Shapes one request's service time. `nominal` is the backend's own cost
  /// model output, `elapsed` the time since the replica started serving.
  double sample(double nominal, double elapsed, util::Rng& rng) const {
    double m = elapsed >= degrade_after ? multiplier : 1.0;
    double t = (nominal + base) * m;
    if (jitter > 0.0) t *= 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
    return std::max(t, 0.0);
  }

  bool is_identity() const {
    return base == 0.0 && jitter == 0.0 && multiplier == 1.0;
  }
};

}  // namespace sbroker::srv
