#include "srv/worker_pool.h"

#include <cassert>

namespace sbroker::srv {

WorkerPool::WorkerPool(sim::Simulation& sim, size_t max_workers, size_t backlog_limit)
    : sim_(sim), max_workers_(max_workers), backlog_limit_(backlog_limit) {
  assert(max_workers > 0);
}

bool WorkerPool::submit(Handler handler) {
  if (busy_ < max_workers_) {
    run(std::move(handler));
    return true;
  }
  if (backlog_.size() >= backlog_limit_) {
    ++refused_;
    return false;
  }
  backlog_.push_back(Waiting{std::move(handler), sim_.now()});
  return true;
}

void WorkerPool::run(Handler handler) {
  ++busy_;
  // One release token per worker occupation; shared_ptr flag makes the
  // Release idempotent even if the handler copies it around.
  auto released = std::make_shared<bool>(false);
  Release release = [this, released]() {
    if (*released) return;
    *released = true;
    on_release();
  };
  handler(std::move(release));
}

void WorkerPool::on_release() {
  assert(busy_ > 0);
  --busy_;
  ++served_;
  if (!backlog_.empty() && busy_ < max_workers_) {
    Waiting next = std::move(backlog_.front());
    backlog_.pop_front();
    backlog_wait_.add(sim_.now() - next.enqueued_at);
    run(std::move(next.handler));
  }
}

}  // namespace sbroker::srv
