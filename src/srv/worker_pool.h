// Apache-style worker pool for the front-end Web server model.
//
// "In Apache Web server, each request is handled by a dedicated server
// process. ... processes trapped in accessing overloaded backend resources
// essentially exacerbate the overall performance" (Section II). Unlike
// sim::BoundedStation, whose jobs have a fixed service time, a WorkerPool
// worker is held across *asynchronous* work: the handler receives a release
// functor and the worker stays occupied — exactly like an Apache child
// blocked on a backend API call — until the handler releases it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "sim/simulation.h"
#include "util/stats.h"

namespace sbroker::srv {

class WorkerPool {
 public:
  /// Call exactly once when the request handling finishes. Idempotent
  /// (double release is ignored) so error paths can be sloppy safely.
  using Release = std::function<void()>;
  using Handler = std::function<void(Release)>;

  WorkerPool(sim::Simulation& sim, size_t max_workers,
             size_t backlog_limit = SIZE_MAX);

  /// Runs `handler` on a worker, or queues it. Returns false when the
  /// backlog is full (connection refused).
  bool submit(Handler handler);

  size_t busy() const { return busy_; }
  size_t backlog() const { return backlog_.size(); }
  size_t max_workers() const { return max_workers_; }
  uint64_t served() const { return served_; }
  uint64_t refused() const { return refused_; }
  /// Time requests waited in the backlog before getting a worker.
  const util::Summary& backlog_wait() const { return backlog_wait_; }

 private:
  struct Waiting {
    Handler handler;
    sim::Time enqueued_at;
  };

  void run(Handler handler);
  void on_release();

  sim::Simulation& sim_;
  size_t max_workers_;
  size_t backlog_limit_;
  size_t busy_ = 0;
  std::deque<Waiting> backlog_;
  uint64_t served_ = 0;
  uint64_t refused_ = 0;
  util::Summary backlog_wait_;
};

}  // namespace sbroker::srv
