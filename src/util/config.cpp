#include "util/config.h"

#include <stdexcept>

#include "util/strings.h"

namespace sbroker::util {

Config Config::from_args(int argc, const char* const* argv,
                         std::vector<std::string>* positional) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      if (positional) positional->emplace_back(arg);
      continue;
    }
    cfg.set(std::string(trim(arg.substr(0, eq))), std::string(trim(arg.substr(eq + 1))));
  }
  return cfg;
}

Config Config::from_string(std::string_view text) {
  Config cfg;
  for (auto line : split(text, '\n')) {
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("config line missing '=': " + std::string(line));
    }
    cfg.set(std::string(trim(line.substr(0, eq))), std::string(trim(line.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const { return entries_.count(key) > 0; }

std::string Config::get_string(const std::string& key, std::string def) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? def : it->second;
}

int64_t Config::get_int(const std::string& key, int64_t def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  auto parsed = parse_int(it->second);
  if (!parsed) throw std::invalid_argument("config key '" + key + "' is not an integer");
  return *parsed;
}

double Config::get_double(const std::string& key, double def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  auto parsed = parse_double(it->second);
  if (!parsed) throw std::invalid_argument("config key '" + key + "' is not a number");
  return *parsed;
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  std::string v = to_lower(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key '" + key + "' is not a boolean");
}

}  // namespace sbroker::util
