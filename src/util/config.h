// Tiny key=value configuration store.
//
// Experiments and example binaries take "key=value" pairs from argv (and
// optionally a file with one pair per line, '#' comments). Typed getters
// return defaults when a key is absent and throw std::invalid_argument when
// a present value fails to parse — silently ignoring a typo'd experiment
// parameter would invalidate a whole run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::util {

class Config {
 public:
  Config() = default;

  /// Parses argv-style "key=value" tokens; tokens without '=' are returned
  /// as positional arguments untouched.
  static Config from_args(int argc, const char* const* argv,
                          std::vector<std::string>* positional = nullptr);

  /// Parses file contents: one key=value per line, '#' starts a comment.
  static Config from_string(std::string_view text);

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, std::string def = "") const;
  int64_t get_int(const std::string& key, int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace sbroker::util
