#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sbroker::util {

namespace {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

}  // namespace

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    // The value completing a `"key":` never takes a separator.
    after_key_ = false;
    return;
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::string_view value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":\"";
  out_ += escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, const char* value) {
  return field(name, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view name, double value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += format_double(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, uint64_t value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, int64_t value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, int value) {
  return field(name, static_cast<int64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view name, bool value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

struct JsonValue::Parser {
  std::string_view text;
  size_t pos = 0;
  // Malformed nesting deeper than this is rejected rather than recursed
  // into (stack safety on hostile input).
  int depth_budget = 128;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (--depth_budget < 0) return false;
    skip_ws();
    if (pos >= text.size()) return false;
    bool ok = false;
    switch (text[pos]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.type_ = Type::kString;
        ok = parse_string(out.string_);
        break;
      case 't':
        out.type_ = Type::kBool;
        out.bool_ = true;
        ok = consume_literal("true");
        break;
      case 'f':
        out.type_ = Type::kBool;
        out.bool_ = false;
        ok = consume_literal("false");
        break;
      case 'n':
        out.type_ = Type::kNull;
        ok = consume_literal("null");
        break;
      default: ok = parse_number(out); break;
    }
    ++depth_budget;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.type_ = Type::kObject;
    ++pos;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos >= text.size() || text[pos] != '"' || !parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) return false;
      JsonValue member;
      if (!parse_value(member)) return false;
      out.object_.insert_or_assign(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.type_ = Type::kArray;
    ++pos;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array_.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    ++pos;  // opening quote
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return false;
        char esc = text[pos + 1];
        pos += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            pos += 4;
            // UTF-8 encode; surrogate pairs (beyond what JsonWriter emits)
            // come through as two unpaired code points.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      out += c;
      ++pos;
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    size_t start = pos;
    if (consume('-')) {
    }
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return false;
    std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.type_ = Type::kNumber;
    out.number_ = value;
    return true;
  }
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue root;
  if (!p.parse_value(root)) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return root;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue kNullValue;
  const JsonValue* member = find(key);
  return member ? *member : kNullValue;
}

}  // namespace sbroker::util
