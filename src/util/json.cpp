#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace sbroker::util {

namespace {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

}  // namespace

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    // The value completing a `"key":` never takes a separator.
    after_key_ = false;
    return;
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::string_view value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":\"";
  out_ += escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, const char* value) {
  return field(name, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view name, double value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += format_double(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, uint64_t value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, int64_t value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, int value) {
  return field(name, static_cast<int64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view name, bool value) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace sbroker::util
