// Minimal JSON writer for benchmark result files.
//
// The perf trajectory lives in BENCH_*.json files at the repo root so every
// PR can be compared against its predecessors. This is a write-only,
// streaming builder — push objects/arrays, set scalar fields, render once.
// It escapes strings, prints doubles round-trippably, and rejects nothing:
// malformed nesting is a programming error caught by assert.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object-member forms: emit `"key": value`.
  JsonWriter& key(std::string_view name);
  JsonWriter& field(std::string_view name, std::string_view value);
  JsonWriter& field(std::string_view name, const char* value);
  JsonWriter& field(std::string_view name, double value);
  JsonWriter& field(std::string_view name, uint64_t value);
  JsonWriter& field(std::string_view name, int64_t value);
  JsonWriter& field(std::string_view name, int value);
  JsonWriter& field(std::string_view name, bool value);

  /// Array-element scalar forms.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(bool v);

  /// The document accumulated so far.
  const std::string& str() const { return out_; }

  /// Writes str() to `path` (truncating) with a trailing newline; returns
  /// false on IO failure.
  bool write_file(const std::string& path) const;

  static std::string escape(std::string_view raw);

 private:
  void comma_if_needed();
  std::string out_;
  std::vector<bool> first_in_scope_;  // per open scope
  bool after_key_ = false;            // next value completes a "key":
};

}  // namespace sbroker::util
