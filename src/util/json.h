// Minimal JSON writer + parser for benchmark result files and the admin
// plane.
//
// The perf trajectory lives in BENCH_*.json files at the repo root so every
// PR can be compared against its predecessors. JsonWriter is a write-only,
// streaming builder — push objects/arrays, set scalar fields, render once.
// It escapes strings, prints doubles round-trippably, and rejects nothing:
// malformed nesting is a programming error caught by assert.
//
// JsonValue is the read half: a small recursive-descent parser producing an
// immutable tree, enough for the bench loadgen to scrape the daemon's
// /statusz document. It accepts exactly what JsonWriter emits (standard
// JSON; \uXXXX escapes decode the BMP only) and returns nullopt on any
// syntax error rather than throwing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object-member forms: emit `"key": value`.
  JsonWriter& key(std::string_view name);
  JsonWriter& field(std::string_view name, std::string_view value);
  JsonWriter& field(std::string_view name, const char* value);
  JsonWriter& field(std::string_view name, double value);
  JsonWriter& field(std::string_view name, uint64_t value);
  JsonWriter& field(std::string_view name, int64_t value);
  JsonWriter& field(std::string_view name, int value);
  JsonWriter& field(std::string_view name, bool value);

  /// Array-element scalar forms.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(bool v);

  /// The document accumulated so far.
  const std::string& str() const { return out_; }

  /// Writes str() to `path` (truncating) with a trailing newline; returns
  /// false on IO failure.
  bool write_file(const std::string& path) const;

  static std::string escape(std::string_view raw);

 private:
  void comma_if_needed();
  std::string out_;
  std::vector<bool> first_in_scope_;  // per open scope
  bool after_key_ = false;            // next value completes a "key":
};

/// Parsed JSON document node. Numbers are kept as double (the writer never
/// emits integers a double cannot hold exactly below 2^53, which covers
/// every counter the bench scrapes).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, trailing bytes
  /// rejected); nullopt on malformed input.
  static std::optional<JsonValue> parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Scalar accessors return the fallback when the node has another type.
  bool as_bool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  int64_t as_int(int64_t fallback = 0) const {
    return type_ == Type::kNumber ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& as_string() const { return string_; }

  /// Array access; empty/size-0 views for non-arrays.
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const { return array_.at(i); }
  const std::vector<JsonValue>& items() const { return array_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Chained lookup that never faults: returns a null-typed sentinel for
  /// missing members, so `doc["a"]["b"].as_double()` reads cleanly.
  const JsonValue& operator[](std::string_view key) const;

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

}  // namespace sbroker::util
