#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sbroker::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace sbroker::util
