// Minimal leveled logging.
//
// Thread-safe (a single mutex around the sink), cheap when disabled (level
// check before formatting), and silent by default at DEBUG so simulation
// inner loops stay fast. Not a general-purpose logging framework on purpose.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sbroker::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line: "[LEVEL] <component>: <message>\n" to stderr.
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(level >= log_level()) {}
  ~LogStream() {
    if (enabled_) log_line(level_, component_, stream_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

#define SBROKER_LOG(level, component) \
  ::sbroker::util::detail::LogStream(level, component)
#define SBROKER_DEBUG(component) SBROKER_LOG(::sbroker::util::LogLevel::kDebug, component)
#define SBROKER_INFO(component) SBROKER_LOG(::sbroker::util::LogLevel::kInfo, component)
#define SBROKER_WARN(component) SBROKER_LOG(::sbroker::util::LogLevel::kWarn, component)
#define SBROKER_ERROR(component) SBROKER_LOG(::sbroker::util::LogLevel::kError, component)

}  // namespace sbroker::util
