#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace sbroker::util {
namespace {

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t derive_seed(uint64_t run_seed, uint64_t index) {
  // Two SplitMix64 rounds with the index folded in between: a plain
  // `run_seed + index` would make (seed, i+1) and (seed+1, i) identical.
  uint64_t state = run_seed;
  uint64_t mixed = splitmix64(state);
  state = mixed ^ (index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return splitmix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  uint64_t result = rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 bits of mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::uniform_real(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::bounded_pareto(double min, double max, double alpha) {
  assert(alpha > 0 && min > 0 && max > min);
  double u = next_double();
  double x = min * std::pow(1.0 - u, -1.0 / alpha);
  return x > max ? max : x;
}

Rng Rng::fork() { return Rng(next_u64()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  cdf_.reserve(n);
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_.push_back(sum);
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfGenerator::next(Rng& rng) const {
  double u = rng.next_double();
  // Binary search first cdf >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace sbroker::util
