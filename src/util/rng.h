// Deterministic random number generation for workloads and simulation.
//
// All stochastic behaviour in this repo flows through `Rng` so that every
// experiment is reproducible from a single seed. The generator is a
// SplitMix64-seeded xoshiro256** — fast, high quality, and trivially
// copyable so actors can fork independent streams.
#pragma once

#include <cstdint>
#include <vector>

namespace sbroker::util {

/// Derives a decorrelated per-instance seed from a run-level seed and an
/// instance index (SplitMix64 over the mixed pair). Sibling actors — shard
/// brokers, backend replicas, the two directions of a link — must NOT build
/// their RNGs from `seed + k`: adjacent offsets collide across instances
/// (replica i's `seed+1` stream IS replica i+1's `seed+0` stream), so two
/// "independent" links end up replaying the same jitter trace. Deriving from
/// (run_seed, index) keeps runs reproducible from the single run seed while
/// giving every instance its own stream.
uint64_t derive_seed(uint64_t run_seed, uint64_t index);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponentially distributed with the given mean (= 1/rate). mean > 0.
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal via Box–Muller; mean/stddev parameters.
  double normal(double mean, double stddev);

  /// Bounded Pareto-ish heavy tail used for service-time jitter experiments:
  /// x = min * (1-u)^(-1/alpha), clipped at max. alpha > 0.
  double bounded_pareto(double min, double max, double alpha);

  /// Derives an independent stream (for per-actor RNGs).
  Rng fork();

 private:
  uint64_t s_[4];
};

/// Zipf(1..n, theta) sampler using the standard inverse-CDF-over-precomputed-
/// weights method. theta=0 is uniform; larger theta means more skew. Ranks
/// are 1-based: rank 1 is the most popular item.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Returns a rank in [1, n].
  uint64_t next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cumulative, normalized
};

}  // namespace sbroker::util
