#include "util/stats.h"

#include <cmath>

namespace sbroker::util {

double Summary::stddev() const { return std::sqrt(variance()); }

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

std::vector<uint64_t> Histogram::bucketize(size_t buckets) const {
  std::vector<uint64_t> out(buckets, 0);
  if (samples_.empty() || buckets == 0) return out;
  double lo = summary_.min();
  double hi = summary_.max();
  double width = (hi - lo) / static_cast<double>(buckets);
  if (width <= 0) {
    out[0] = samples_.size();
    return out;
  }
  for (double x : samples_) {
    auto idx = static_cast<size_t>((x - lo) / width);
    if (idx >= buckets) idx = buckets - 1;
    ++out[idx];
  }
  return out;
}

}  // namespace sbroker::util
