// Online statistics used by the benchmark harness and broker metrics.
//
// `Summary` keeps O(1) moments (count/mean/variance/min/max) using Welford's
// algorithm. `Histogram` keeps a full sample reservoir when small, or fixed
// log-scale buckets otherwise, so percentiles stay cheap for million-sample
// runs. `Counter` is a trivially copyable monotonically increasing count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sbroker::util {

/// Running mean/variance/min/max without storing samples (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const Summary& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    uint64_t total = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / static_cast<double>(total);
    m2_ = m2_ + other.m2_ +
          delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) /
              static_cast<double>(total);
    mean_ = new_mean;
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile-capable sample collection.
///
/// Stores raw samples up to `kExactLimit`, after which it keeps them anyway —
/// the workloads in this repo produce at most a few hundred thousand samples
/// per run, and exact percentiles make experiment tables reproducible. The
/// vector is sorted lazily on first percentile query.
class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    summary_.add(x);
  }

  /// q in [0,1]; returns 0 when empty. Nearest-rank percentile.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }

  const Summary& summary() const { return summary_; }
  uint64_t count() const { return summary_.count(); }
  double mean() const { return summary_.mean(); }

  void clear() {
    samples_.clear();
    sorted_ = false;
    summary_ = Summary{};
  }

  /// Bucketized view for ASCII rendering: `buckets` equal-width bins between
  /// min and max. Returns counts per bin; empty when no samples.
  std::vector<uint64_t> bucketize(size_t buckets) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Summary summary_;
};

/// Simple named counter set used by broker metrics.
class Counter {
 public:
  void inc(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Ratio helper that tolerates a zero denominator.
inline double safe_ratio(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

}  // namespace sbroker::util
