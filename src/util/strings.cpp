#include "util/strings.h"

#include <cctype>
#include <charconv>

namespace sbroker::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_skip_empty(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (auto piece : split(s, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace sbroker::util
