// String helpers shared across the project.
//
// Small, allocation-conscious utilities: split/trim/case folding and
// string-to-number parsing with explicit error reporting. Kept deliberately
// minimal; anything fancier belongs in the module that needs it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sbroker::util {

/// Splits `s` on `sep`, returning views into `s` (no copies). Empty fields
/// are preserved: split(",a,", ',') -> {"", "a", ""}.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on `sep` but drops empty fields: split_skip_empty("a,,b", ',')
/// -> {"a", "b"}.
std::vector<std::string_view> split_skip_empty(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a signed integer; returns nullopt on any syntax error or overflow.
std::optional<int64_t> parse_int(std::string_view s);

/// Parses a floating point number; returns nullopt on any syntax error.
std::optional<double> parse_double(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace sbroker::util
