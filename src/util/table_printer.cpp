#include "util/table_printer.h"

#include <cstdio>
#include <stdexcept>

namespace sbroker::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TablePrinter: row has more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::render_csv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ',';
      if (c < row.size()) out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace sbroker::util
