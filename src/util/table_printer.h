// ASCII table rendering for the benchmark harness.
//
// Every experiment binary prints its result as a fixed-width table matching
// the paper's tables/figure series, so EXPERIMENTS.md entries can be pasted
// straight from tool output.
#pragma once

#include <string>
#include <vector>

namespace sbroker::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 2);

  /// Renders with a header rule, columns padded to the widest cell.
  std::string render() const;

  /// Renders as comma-separated values (for plotting pipelines).
  std::string render_csv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sbroker::util
