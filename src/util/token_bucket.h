// Token-bucket rate limiter used for broker-side traffic contracts.
//
// The paper envisions loosely coupled backends being "contract-based: the
// service availability is honored only when the incoming traffic are within
// the contracted specifications" (Section I). The broker enforces such a
// contract with this bucket before forwarding to a loosely coupled backend.
//
// Time is supplied by the caller (simulated seconds), so the same class
// works inside the discrete-event simulator and in wall-clock code.
#pragma once

#include <algorithm>
#include <cassert>

namespace sbroker::util {

class TokenBucket {
 public:
  /// `rate` tokens per second refill, capacity `burst` tokens, starts full.
  TokenBucket(double rate, double burst) : rate_(rate), burst_(burst), tokens_(burst) {
    assert(rate > 0 && burst > 0);
  }

  /// Attempts to take `cost` tokens at time `now` (seconds, monotone
  /// non-decreasing across calls). Returns true and debits on success.
  bool try_acquire(double now, double cost = 1.0) {
    refill(now);
    if (tokens_ + 1e-12 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Tokens currently available at time `now` (refills first).
  double available(double now) {
    refill(now);
    return tokens_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(double now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_));
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
};

}  // namespace sbroker::util
