#include "wl/ab_client.h"

#include <cassert>

namespace sbroker::wl {

AbClient::AbClient(sim::Simulation& sim, AbConfig config, IssueFn issue)
    : sim_(sim), config_(config), issue_(std::move(issue)) {
  assert(config_.concurrency > 0);
}

void AbClient::start() {
  size_t initial = config_.concurrency;
  if (initial > config_.total_requests) {
    initial = static_cast<size_t>(config_.total_requests);
  }
  for (size_t i = 0; i < initial; ++i) issue_next();
}

void AbClient::issue_next() {
  if (issued_ >= config_.total_requests) return;
  uint64_t seq = issued_++;
  double started = sim_.now();
  issue_(seq, [this, started]() {
    response_times_.add(sim_.now() - started);
    ++completed_;
    issue_next();
  });
}

}  // namespace sbroker::wl
