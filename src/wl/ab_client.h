// ab-style load generator (Apache benchmarking tool).
//
// The clustering experiment drives the front end with ab: a fixed number of
// simultaneous connections, each issuing its next request the moment the
// previous one completes, until a total request count is reached. Response
// times are recorded per request.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulation.h"
#include "util/stats.h"

namespace sbroker::wl {

struct AbConfig {
  size_t concurrency = 40;      ///< simultaneous in-flight requests
  uint64_t total_requests = 400;
};

class AbClient {
 public:
  /// `issue(seq, done)` performs request number `seq` and must call `done`
  /// exactly once when the response arrives.
  using IssueFn = std::function<void(uint64_t seq, std::function<void()> done)>;

  AbClient(sim::Simulation& sim, AbConfig config, IssueFn issue);

  /// Launches the initial `concurrency` requests.
  void start();

  bool finished() const { return completed_ == config_.total_requests; }
  uint64_t completed() const { return completed_; }
  const util::Histogram& response_times() const { return response_times_; }

 private:
  void issue_next();

  sim::Simulation& sim_;
  AbConfig config_;
  IssueFn issue_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  util::Histogram response_times_;
};

}  // namespace sbroker::wl
