#include "wl/arrival.h"

#include <cassert>
#include <cmath>

namespace sbroker::wl {

ArrivalSchedule::ArrivalSchedule(ArrivalConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  assert(config_.rate > 0.0);
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      peak_rate_ = config_.rate;
      break;
    case ArrivalKind::kBursty:
      assert(config_.period > 0.0 && config_.duty > 0.0 && config_.duty <= 1.0);
      peak_rate_ = config_.rate / config_.duty;
      break;
    case ArrivalKind::kDiurnal:
      assert(config_.period > 0.0);
      assert(config_.floor_frac >= 0.0 && config_.floor_frac <= 1.0);
      // Sinusoid between floor and peak has mean (floor+peak)/2 = rate.
      peak_rate_ = 2.0 * config_.rate / (1.0 + config_.floor_frac);
      break;
  }
}

double ArrivalSchedule::rate_at(double t) const {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      return config_.rate;
    case ArrivalKind::kBursty: {
      double phase = std::fmod(t, config_.period);
      return phase < config_.duty * config_.period ? peak_rate_ : 0.0;
    }
    case ArrivalKind::kDiurnal: {
      double floor = config_.floor_frac * peak_rate_;
      double phase = 2.0 * M_PI * t / config_.period;
      return floor + (peak_rate_ - floor) * 0.5 * (1.0 - std::cos(phase));
    }
  }
  return config_.rate;
}

double ArrivalSchedule::next() {
  // Lewis–Shedler thinning: candidate arrivals at the constant peak rate,
  // each accepted with probability rate(t)/peak. For poisson the acceptance
  // is always 1 and this reduces to plain exponential inter-arrivals.
  for (;;) {
    t_ += rng_.exponential(1.0 / peak_rate_);
    if (config_.kind == ArrivalKind::kPoisson) return t_;
    double accept = rate_at(t_) / peak_rate_;
    if (accept >= 1.0 || rng_.next_double() < accept) return t_;
  }
}

std::optional<ArrivalKind> ArrivalSchedule::parse_kind(std::string_view name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  return std::nullopt;
}

const char* ArrivalSchedule::kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

}  // namespace sbroker::wl
