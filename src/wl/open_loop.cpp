#include "wl/open_loop.h"

#include <algorithm>

namespace sbroker::wl {

OpenLoopClients::OpenLoopClients(sim::Simulation& sim, OpenLoopConfig config,
                                 IssueFn issue)
    : sim_(sim),
      config_(config),
      issue_(std::move(issue)),
      schedule_(config.arrivals, config.seed) {}

void OpenLoopClients::start() {
  start_time_ = sim_.now();
  schedule_next_arrival();
}

void OpenLoopClients::schedule_next_arrival() {
  double offset = schedule_.next();
  if (offset >= config_.duration) return;  // horizon reached; let work drain
  double at = start_time_ + offset;
  ++scheduled_;
  sim_.at(at, [this, at]() { on_arrival(at); });
}

void OpenLoopClients::on_arrival(double scheduled_at) {
  // Draw the next arrival first: the schedule never waits on the system.
  schedule_next_arrival();
  if (config_.max_outstanding > 0 && outstanding_ >= config_.max_outstanding) {
    ++queued_behind_;
    backlog_.push_back(scheduled_at);
    return;
  }
  send(scheduled_at);
}

void OpenLoopClients::send(double scheduled_at) {
  ++outstanding_;
  ++sent_;
  double sent_at = sim_.now();
  max_lag_ = std::max(max_lag_, sent_at - scheduled_at);
  issue_(config_.qos_level, [this, scheduled_at, sent_at]() {
    double now = sim_.now();
    response_times_.add(now - scheduled_at);  // from intended send time
    service_times_.add(now - sent_at);        // the biased view, for contrast
    ++completed_;
    --outstanding_;
    if (!backlog_.empty()) {
      double waiting = backlog_.front();
      backlog_.pop_front();
      send(waiting);
    }
  });
}

}  // namespace sbroker::wl
