// Open-loop client population with coordinated-omission-correct accounting.
//
// Consumes an ArrivalSchedule: requests are *due* at scheduled times
// regardless of how the system under test is doing. A bounded sender pool
// (`max_outstanding`) models the real constraint that a connection can carry
// only so many concurrent requests — when every sender is busy, an arrival
// queues behind instead of being dropped or (the closed-loop sin) never
// generated at all. Latency is measured from the request's *scheduled* time,
// so queue-behind waits land in the tail where they belong; the uncorrected
// from-actual-send view is kept alongside to show the omission gap.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulation.h"
#include "util/stats.h"
#include "wl/arrival.h"

namespace sbroker::wl {

struct OpenLoopConfig {
  ArrivalConfig arrivals;
  uint64_t seed = 1;
  double duration = 10.0;      ///< schedule horizon (virtual seconds)
  size_t max_outstanding = 0;  ///< concurrent sends; 0 = unbounded
  int qos_level = 1;
};

class OpenLoopClients {
 public:
  /// `issue(qos_level, done)` performs one request and calls `done` exactly
  /// once when the response (any fidelity) arrives.
  using IssueFn = std::function<void(int qos_level, std::function<void()> done)>;

  OpenLoopClients(sim::Simulation& sim, OpenLoopConfig config, IssueFn issue);

  void start();

  /// Arrivals the schedule produced inside the window. Every one of them is
  /// eventually sent (sent() == scheduled() once the sim drains) — open-loop
  /// load is never silently elided.
  uint64_t scheduled() const { return scheduled_; }
  uint64_t sent() const { return sent_; }
  uint64_t completed() const { return completed_; }
  /// Arrivals that found every sender busy and had to wait for a slot.
  uint64_t queued_behind() const { return queued_behind_; }
  /// Worst send lag: actual send time minus scheduled time.
  double max_lag() const { return max_lag_; }

  /// Latency measured from the scheduled time (omission-corrected).
  const util::Histogram& response_times() const { return response_times_; }
  /// Latency measured from the actual send (the biased, closed-loop-style
  /// view) — kept so the omission gap is observable in one run.
  const util::Histogram& service_times() const { return service_times_; }

 private:
  void schedule_next_arrival();
  void on_arrival(double scheduled_at);
  void send(double scheduled_at);

  sim::Simulation& sim_;
  OpenLoopConfig config_;
  IssueFn issue_;
  ArrivalSchedule schedule_;
  double start_time_ = 0.0;
  size_t outstanding_ = 0;
  std::deque<double> backlog_;  ///< scheduled times waiting for a sender
  uint64_t scheduled_ = 0;
  uint64_t sent_ = 0;
  uint64_t completed_ = 0;
  uint64_t queued_behind_ = 0;
  double max_lag_ = 0.0;
  util::Histogram response_times_;
  util::Histogram service_times_;
};

}  // namespace sbroker::wl
