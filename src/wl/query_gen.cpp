#include "wl/query_gen.h"

namespace sbroker::wl {

QueryGenerator::QueryGenerator(uint64_t key_space, Popularity popularity, double theta)
    : key_space_(key_space), popularity_(popularity), zipf_(key_space, theta) {}

uint64_t QueryGenerator::draw_key(util::Rng& rng) {
  if (popularity_ == Popularity::kZipf) {
    return zipf_.next(rng) - 1;  // ranks are 1-based
  }
  return static_cast<uint64_t>(rng.uniform_int(0, static_cast<int64_t>(key_space_) - 1));
}

std::string QueryGenerator::next_point_query(util::Rng& rng) {
  return "SELECT * FROM records WHERE id = " + std::to_string(draw_key(rng));
}

std::string QueryGenerator::next_category_query(util::Rng& rng, int64_t categories,
                                                uint64_t limit) {
  int64_t category = rng.uniform_int(0, categories - 1);
  return "SELECT id, score FROM records WHERE category = " + std::to_string(category) +
         " LIMIT " + std::to_string(limit);
}

std::string QueryGenerator::next_movie_query(util::Rng& rng, int64_t movies) {
  // Zipf over movie ids when configured: blockbusters dominate at peak time.
  uint64_t movie = draw_key(rng) % static_cast<uint64_t>(movies);
  return "SELECT title, theater, showtime FROM schedule WHERE movie_id = " +
         std::to_string(movie);
}

}  // namespace sbroker::wl
