// Query generators for the database workloads.
//
// The clustering experiment's backend script "was to generate a random query
// command and retrieve the corresponding results from the database"; here
// the generator produces those queries on the client side. Popularity is
// configurable: uniform (the clustering experiment) or Zipf (the caching
// ablation, where repeats make caching pay off).
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace sbroker::wl {

class QueryGenerator {
 public:
  enum class Popularity { kUniform, kZipf };

  /// Queries select by id over [0, key_space). theta applies to kZipf.
  QueryGenerator(uint64_t key_space, Popularity popularity = Popularity::kUniform,
                 double theta = 0.9);

  /// "SELECT * FROM records WHERE id = <k>" with k drawn per popularity.
  std::string next_point_query(util::Rng& rng);

  /// "SELECT id, score FROM records WHERE category = <c> LIMIT <n>".
  std::string next_category_query(util::Rng& rng, int64_t categories, uint64_t limit);

  /// Movie-schedule query for the caching example.
  std::string next_movie_query(util::Rng& rng, int64_t movies);

 private:
  uint64_t draw_key(util::Rng& rng);

  uint64_t key_space_;
  Popularity popularity_;
  util::ZipfGenerator zipf_;
};

}  // namespace sbroker::wl
