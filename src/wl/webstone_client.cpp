#include "wl/webstone_client.h"

namespace sbroker::wl {

WebStoneClients::WebStoneClients(sim::Simulation& sim, WebStoneConfig config,
                                 IssueFn issue)
    : sim_(sim), config_(config), issue_(std::move(issue)), rng_(config.rng_seed) {}

void WebStoneClients::start() {
  end_time_ = sim_.now() + config_.duration;
  for (size_t i = 0; i < config_.clients; ++i) client_loop();
}

void WebStoneClients::client_loop() {
  if (sim_.now() >= end_time_) return;
  double started = sim_.now();
  issue_(config_.qos_level, [this, started]() {
    // Count only requests that complete inside the window, like WebStone's
    // run summary.
    if (sim_.now() <= end_time_) {
      response_times_.add(sim_.now() - started);
      ++completed_;
    }
    if (config_.think_time > 0) {
      sim_.after(rng_.exponential(config_.think_time), [this]() { client_loop(); });
    } else {
      client_loop();
    }
  });
}

}  // namespace sbroker::wl
