// WebStone-style closed-loop client population.
//
// The differentiation experiment uses WebStone 2.5: best-effort clients that
// issue a request, wait for the full response, then immediately (or after a
// think time) issue the next, for a fixed measurement window. "Since
// WebStone clients were best-effort based, with shorter processing time,
// more number of requests were initiated" — so completion counts per class
// fall out of the loop naturally (paper Table I).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sbroker::wl {

struct WebStoneConfig {
  size_t clients = 10;        ///< population size for this class
  int qos_level = 1;
  double think_time = 0.0;    ///< mean exponential think time; 0 = none
  double duration = 120.0;    ///< measurement window (virtual seconds)
  uint64_t rng_seed = 101;
};

class WebStoneClients {
 public:
  /// `issue(qos_level, done)` performs one request for this class and calls
  /// `done` when the response (any fidelity) arrives.
  using IssueFn = std::function<void(int qos_level, std::function<void()> done)>;

  WebStoneClients(sim::Simulation& sim, WebStoneConfig config, IssueFn issue);

  void start();

  uint64_t completed() const { return completed_; }
  int qos_level() const { return config_.qos_level; }
  const util::Histogram& response_times() const { return response_times_; }

 private:
  void client_loop();

  sim::Simulation& sim_;
  WebStoneConfig config_;
  IssueFn issue_;
  util::Rng rng_;
  double end_time_ = 0.0;
  uint64_t completed_ = 0;
  util::Histogram response_times_;
};

}  // namespace sbroker::wl
