#include "core/admission.h"

#include <gtest/gtest.h>

namespace sbroker::core {
namespace {

TEST(Admission, ForwardsUnderBound) {
  AdmissionController ctl(QosRules{3, 20.0});
  EXPECT_EQ(ctl.decide(1, 0.0, 0.0), AdmissionDecision::kForward);
  EXPECT_EQ(ctl.forwarded(), 1u);
}

TEST(Admission, DropsOverBound) {
  AdmissionController ctl(QosRules{3, 20.0});
  EXPECT_EQ(ctl.decide(1, 7.0, 0.0), AdmissionDecision::kDropOverLimit);
  EXPECT_EQ(ctl.decide(3, 7.0, 0.0), AdmissionDecision::kForward);
  EXPECT_EQ(ctl.dropped_over_limit(), 1u);
}

TEST(Admission, ContractLimitsClassRate) {
  AdmissionController ctl(QosRules{3, 100.0});
  ctl.set_contract(2, /*rate=*/1.0, /*burst=*/2.0);
  // Burst of 2 passes, third is over the contract.
  EXPECT_EQ(ctl.decide(2, 0.0, 0.0), AdmissionDecision::kForward);
  EXPECT_EQ(ctl.decide(2, 0.0, 0.0), AdmissionDecision::kForward);
  EXPECT_EQ(ctl.decide(2, 0.0, 0.0), AdmissionDecision::kDropContract);
  EXPECT_EQ(ctl.dropped_contract(), 1u);
  // Refills with time.
  EXPECT_EQ(ctl.decide(2, 0.0, 1.5), AdmissionDecision::kForward);
}

TEST(Admission, ContractIsolatesOtherClasses) {
  AdmissionController ctl(QosRules{3, 100.0});
  ctl.set_contract(1, 1.0, 1.0);
  EXPECT_EQ(ctl.decide(1, 0.0, 0.0), AdmissionDecision::kForward);
  EXPECT_EQ(ctl.decide(1, 0.0, 0.0), AdmissionDecision::kDropContract);
  // Class 2 has no contract and is unaffected.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctl.decide(2, 0.0, 0.0), AdmissionDecision::kForward);
  }
}

TEST(Admission, ThresholdCheckedBeforeContract) {
  AdmissionController ctl(QosRules{3, 20.0});
  ctl.set_contract(1, 1000.0, 1000.0);
  EXPECT_EQ(ctl.decide(1, 19.0, 0.0), AdmissionDecision::kDropOverLimit);
}

TEST(Admission, LevelsOutsideRangeClamp) {
  AdmissionController ctl(QosRules{3, 20.0});
  EXPECT_EQ(ctl.decide(99, 19.0, 0.0), AdmissionDecision::kForward);   // clamps to 3
  EXPECT_EQ(ctl.decide(-1, 7.0, 0.0), AdmissionDecision::kDropOverLimit);  // clamps to 1
}

TEST(Admission, DecisionNames) {
  EXPECT_STREQ(admission_decision_name(AdmissionDecision::kForward), "forward");
  EXPECT_STREQ(admission_decision_name(AdmissionDecision::kDropOverLimit),
               "drop-over-limit");
  EXPECT_STREQ(admission_decision_name(AdmissionDecision::kDropContract),
               "drop-contract");
}

// Property sweep: drop ratio ordering across classes for rising load.
class AdmissionSweep : public ::testing::TestWithParam<double> {};

TEST_P(AdmissionSweep, HigherClassNeverDroppedMoreAtSameLoad) {
  double threshold = GetParam();
  AdmissionController ctl(QosRules{3, threshold});
  for (double load = 0; load < threshold + 5; load += 0.25) {
    bool admit1 = ctl.decide(1, load, 0.0) == AdmissionDecision::kForward;
    bool admit2 = ctl.decide(2, load, 0.0) == AdmissionDecision::kForward;
    bool admit3 = ctl.decide(3, load, 0.0) == AdmissionDecision::kForward;
    EXPECT_LE(admit1, admit2);
    EXPECT_LE(admit2, admit3);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AdmissionSweep,
                         ::testing::Values(5.0, 20.0, 100.0));

}  // namespace
}  // namespace sbroker::core
