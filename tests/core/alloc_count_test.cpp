// Allocation-count regression test for the cache-hit fast path.
//
// A global operator new hook counts heap allocations; the test primes the
// result cache, then drives try_submit_fast in a steady state and asserts
// the per-request allocation count stays at a small fixed bound (the whole
// point of the per-request arena + reply views). This binary carries its own
// allocator hook, so it is built only in plain trees — the sanitizers
// interpose their own allocators (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/broker.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace sbroker::core {
namespace {

class PrimeBackend : public Backend {
 public:
  void invoke(const Call& call, Completion done) override {
    done(0.0, true, "value for " + call.payload);
  }
};

/// Key long enough to defeat SSO: a hidden std::string copy anywhere on the
/// hot path shows up as an allocation, not as silent small-string reuse.
std::string long_key(int i) {
  return "/object-with-a-deliberately-long-cache-key-beyond-sso-" +
         std::to_string(i);
}

TEST(AllocCount, CacheHitFastPathStaysAllocationFree) {
  BrokerConfig cfg;
  cfg.rules = QosRules{3, 20.0};
  cfg.enable_cache = true;
  cfg.cache_ttl = 1e9;
  // The flight recorder appends per-event records; the perf-critical
  // deployment shape keeps it off, and so does this regression bound.
  cfg.obs.trace = false;
  ServiceBroker broker("alloc", cfg);
  broker.add_backend(std::make_shared<PrimeBackend>());

  constexpr int kKeys = 8;
  constexpr int kRounds = 1000;

  // Prime: one full-path submit per key fills the cache.
  for (int i = 0; i < kKeys; ++i) {
    http::BrokerRequest req;
    req.request_id = static_cast<uint64_t>(i + 1);
    req.qos_level = 3;
    req.payload = long_key(i);
    bool replied = false;
    broker.submit(0.0, req, [&](const http::BrokerReply& r) {
      replied = r.fidelity == http::Fidelity::kFull;
    });
    ASSERT_TRUE(replied) << i;
  }

  // Pre-build the request objects so the measured loop exercises only the
  // broker, not the test's own string construction.
  std::vector<http::BrokerRequest> requests;
  for (int i = 0; i < kKeys; ++i) {
    http::BrokerRequest req;
    req.request_id = 1000u + static_cast<uint64_t>(i);
    req.qos_level = static_cast<uint8_t>(1 + i % 3);
    req.payload = long_key(i);
    requests.push_back(std::move(req));
  }

  Arena scratch;
  size_t served = 0;
  size_t payload_bytes = 0;
  auto on_reply = [&](const ReplyView& r) {
    served += 1;
    payload_bytes += r.payload.size();
  };

  // Warm up: first touches may grow histograms buckets, arena blocks, hash
  // tables — one-time costs the steady state is measured without.
  for (int i = 0; i < kKeys; ++i) {
    scratch.reset();
    ASSERT_TRUE(broker.try_submit_fast(1.0, requests[i], scratch, on_reply));
  }

  served = 0;
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      scratch.reset();
      broker.try_submit_fast(2.0, requests[i], scratch, on_reply);
    }
  }
  uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(served, static_cast<size_t>(kKeys) * kRounds);
  EXPECT_GT(payload_bytes, 0u);

  // The regression bound: the dup=0 cache-hit path must average well under
  // one heap allocation per request (steady state is fully arena-served; a
  // stray periodic allocation is tolerated, a per-request one is not).
  uint64_t total = after - before;
  uint64_t served_total = static_cast<uint64_t>(kKeys) * kRounds;
  EXPECT_LT(total * 2, served_total)
      << total << " allocations across " << served_total << " cache hits";
}

TEST(AllocCount, ArenaStoreDoesNotAllocatePerRequest) {
  Arena arena;
  std::string value(512, 'x');
  // First store may grow the arena; afterwards reset() retains the block.
  arena.store(value);
  arena.reset();
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    std::string_view stored = arena.store(value);
    ASSERT_EQ(stored.size(), value.size());
    arena.reset();
  }
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace sbroker::core
