#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

namespace sbroker::core {
namespace {

TEST(ArenaTest, AllocatesAlignedMemory) {
  Arena arena;
  void* a = arena.allocate(13, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
}

TEST(ArenaTest, StoreCopiesBytes) {
  Arena arena;
  std::string original = "hello arena";
  std::string_view view = arena.store(original);
  original.assign(original.size(), 'x');  // mutate the source
  EXPECT_EQ(view, "hello arena");
}

TEST(ArenaTest, StoreEmptyIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.store("").empty());
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, ResetRetainsFirstBlockOnly) {
  Arena arena(256);
  // Force several overflow blocks.
  for (int i = 0; i < 20; ++i) arena.allocate(100, 1);
  EXPECT_GT(arena.block_count(), 1u);
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, SteadyStateReusesFirstBlock) {
  Arena arena(1024);
  arena.allocate(100, 1);
  arena.reset();
  void* first = arena.allocate(100, 1);
  arena.reset();
  void* second = arena.allocate(100, 1);
  // Same block, same offset: no new heap memory between requests.
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(256);
  char* small = arena.scratch(10);
  std::memset(small, 'a', 10);
  char* big = arena.scratch(10000);
  std::memset(big, 'b', 10000);
  // The small allocation's block stays active: the next small allocation
  // must not come out of the jumbo block.
  char* small2 = arena.scratch(10);
  EXPECT_EQ(small + 10, small2);
  EXPECT_EQ(small[0], 'a');
  EXPECT_EQ(big[9999], 'b');
  arena.reset();
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaTest, CreatePlacesObject) {
  struct Pair {
    uint64_t a;
    uint64_t b;
  };
  Arena arena;
  Pair* p = arena.create<Pair>(Pair{7, 9});
  EXPECT_EQ(p->a, 7u);
  EXPECT_EQ(p->b, 9u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(Pair), 0u);
}

TEST(ArenaPoolTest, RecyclesArenas) {
  ArenaPool pool(512);
  std::unique_ptr<Arena> a = pool.acquire();
  a->allocate(64, 1);
  Arena* raw = a.get();
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);
  std::unique_ptr<Arena> b = pool.acquire();
  EXPECT_EQ(b.get(), raw);          // same arena comes back
  EXPECT_EQ(b->bytes_used(), 0u);   // and it was reset
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(ArenaPoolTest, ReleaseNullIsNoop) {
  ArenaPool pool;
  pool.release(nullptr);
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace sbroker::core
